"""Retry with exponential backoff, full jitter, and deadline awareness.

The storage and stream layers see the transient-fault classes
(:class:`OSError`, :class:`TimeoutError`) that real meters, disks and
networks produce; a :class:`RetryPolicy` turns "crash on the first
hiccup" into "retry a bounded number of times, backing off".

Backoff follows the *full jitter* scheme (delay drawn uniformly from
``[0, min(max_delay, base_delay * multiplier**attempt)]``), which avoids
synchronised retry storms across clients while keeping the expected
delay half the capped exponential.  The randomness comes from a seeded
:class:`random.Random`, so a policy constructed with the same seed
produces the same delay sequence — chaos runs replay exactly.

A policy is deadline-aware: when the calling context carries a
:class:`~repro.core.deadline.Deadline` (see
:func:`~repro.core.deadline.bind_deadline`), the policy stops retrying —
and never sleeps past — the remaining budget, raising
:class:`~repro.core.deadline.DeadlineExceeded` instead of burning a
worker on work nobody is waiting for.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro import obs
from repro.core.deadline import DeadlineExceeded, current_deadline

T = TypeVar("T")

# The transient-fault classes retried by default: I/O hiccups and
# timeouts.  ValueError/KeyError and friends are *not* here — bad input
# stays bad however often you retry it.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (OSError, TimeoutError)


class RetryExhausted(Exception):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site}: gave up after {attempts} attempts; last error: {last!r}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


@dataclass(slots=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (so ``1`` disables retrying).
    base_delay:
        Backoff cap for the first retry, seconds.
    max_delay:
        Absolute cap on any single backoff, seconds.
    multiplier:
        Exponential growth factor of the cap per retry.
    retryable:
        Exception classes worth retrying; anything else propagates
        immediately.
    seed:
        Seed for the jitter stream (same seed → same delays).
    sleeper / clock:
        Injectable ``sleep``/monotonic-seconds callables for tests.
    metrics:
        Registry receiving ``retry_attempts_total{site}``; the process
        default when omitted.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE
    seed: int = 0
    sleeper: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    metrics: obs.MetricsRegistry | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        self._rng = random.Random(self.seed)

    def _registry(self) -> obs.MetricsRegistry:
        return self.metrics if self.metrics is not None else obs.get_registry()

    def backoff_cap(self, attempt: int) -> float:
        """The jitter upper bound before retry ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**attempt)

    def next_delay(self, attempt: int) -> float:
        """Draw the full-jitter delay before retry ``attempt`` (0-based)."""
        return self._rng.uniform(0.0, self.backoff_cap(attempt))

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def call(self, fn: Callable[[], T], site: str = "operation") -> T:
        """Run ``fn``, retrying transient failures under this policy.

        Raises
        ------
        RetryExhausted
            When every attempt failed with a retryable error.
        DeadlineExceeded
            When the bound request deadline ran out between attempts.
        BaseException
            A non-retryable error, immediately.
        """
        registry = self._registry()
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                registry.counter("retry_attempts_total", site=site).inc()
            try:
                return fn()
            except BaseException as exc:
                if not self.is_retryable(exc):
                    raise
                last = exc
                obs.log_event(
                    "retry.attempt_failed",
                    level="warning",
                    site=site,
                    attempt=attempt + 1,
                    max_attempts=self.max_attempts,
                    error=repr(exc),
                )
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.next_delay(attempt)
                deadline = current_deadline()
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= delay:
                        # Not enough budget left to back off and retry.
                        raise DeadlineExceeded(
                            f"request deadline exceeded while retrying {site} "
                            f"(attempt {attempt + 1}/{self.max_attempts})"
                        ) from exc
                if delay > 0:
                    self.sleeper(delay)
        assert last is not None
        raise RetryExhausted(site, self.max_attempts, last) from last


# The stack-wide default: a handful of quick attempts, capped well under
# interactive latency budgets.  Storage and stream call sites use this
# unless handed an explicit policy (or None to disable).
DEFAULT_POLICY = RetryPolicy()
