"""Deterministic fault injection for chaos testing the VAP stack.

The near-real-time mode (demo scenario S2) only earns the word
"production" if the storage, stream and kernel layers survive the faults
real infrastructure produces: transient I/O errors, latency spikes and
torn writes.  This module makes those faults *reproducible*: a
:class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` rules,
each naming an injection *site* (a string like ``"storage.load.meta"``),
a fault *kind*, and a probability.  Installing a plan arms every
:func:`fault_point` call in the code base; two runs with the same plan
inject the same faults at the same call sequence.

Sites are cheap when no plan is installed — a single module-global
``None`` check — so instrumented production paths pay nothing.

Kinds
-----
``error``
    Raise an :class:`OSError` (the transient class the retry layer
    handles) at the site.
``latency``
    Sleep ``seconds`` (through the injector's sleeper, patchable in
    tests) and continue.
``truncate``
    Only meaningful at byte-producing sites that route their payload
    through :func:`fault_bytes`: the payload is cut (and optionally
    corrupted) so readers see torn data.

Plans can be written as JSON documents or as compact command-line specs
(``site=kind:rate`` pairs, comma-separated)::

    storage.load.readings=error:0.2,stream.tick=latency:0.1:0.05

meaning: 20% of readings loads raise OSError; 10% of stream ticks sleep
50 ms.  ``repro serve --fault-plan`` accepts either form.
"""

from __future__ import annotations

import json
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro import obs

FAULT_KINDS = ("error", "latency", "truncate")


class InjectedFault(OSError):
    """The OSError subclass raised by ``error`` faults.

    Being an :class:`OSError` it is retryable under the default
    :class:`~repro.resilience.retry.RetryPolicy`; being a distinct type
    lets tests assert a failure was injected rather than organic.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One injection rule: where, what, how often.

    Parameters
    ----------
    site:
        Injection-point name the rule applies to (exact match).
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability in ``[0, 1]`` that an armed call triggers.
    seconds:
        Sleep duration for ``latency`` faults (ignored otherwise).
    max_faults:
        Stop triggering after this many injections (``None`` = no cap) —
        lets a test arrange "the first save dies, the retry succeeds".
    """

    site: str
    kind: str
    rate: float = 1.0
    seconds: float = 0.01
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.max_faults is not None and self.max_faults < 1:
            raise ValueError(f"max_faults must be >= 1, got {self.max_faults}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus the fault rules it drives — the unit of chaos replay."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact CLI form: ``site=kind:rate[:seconds]`` pairs.

        Pairs are comma-separated; ``rate`` and ``seconds`` are optional
        (default 1.0 and 0.01).  Raises :class:`ValueError` on malformed
        specs with the offending fragment named.
        """
        specs: list[FaultSpec] = []
        for fragment in filter(None, (p.strip() for p in text.split(","))):
            site, eq, rule = fragment.partition("=")
            if not eq or not site:
                raise ValueError(
                    f"bad fault spec {fragment!r}: expected site=kind:rate"
                )
            parts = rule.split(":")
            kind = parts[0]
            try:
                rate = float(parts[1]) if len(parts) > 1 else 1.0
                seconds = float(parts[2]) if len(parts) > 2 else 0.01
            except ValueError:
                raise ValueError(
                    f"bad fault spec {fragment!r}: rate/seconds must be numbers"
                ) from None
            if len(parts) > 3:
                raise ValueError(f"bad fault spec {fragment!r}: too many fields")
            specs.append(
                FaultSpec(site=site, kind=kind, rate=rate, seconds=seconds)
            )
        if not specs:
            raise ValueError(f"fault plan {text!r} contains no specs")
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def from_json(cls, document: str | dict) -> "FaultPlan":
        """Build a plan from a JSON document (text or parsed).

        Shape::

            {"seed": 7, "faults": [{"site": ..., "kind": ...,
                                    "rate": 0.1, "seconds": 0.01,
                                    "max_faults": 3}, ...]}
        """
        if isinstance(document, str):
            document = json.loads(document)
        if not isinstance(document, dict) or "faults" not in document:
            raise ValueError('fault plan JSON must be {"faults": [...], ...}')
        specs = tuple(
            FaultSpec(
                site=str(entry["site"]),
                kind=str(entry["kind"]),
                rate=float(entry.get("rate", 1.0)),
                seconds=float(entry.get("seconds", 0.01)),
                max_faults=entry.get("max_faults"),
            )
            for entry in document["faults"]
        )
        if not specs:
            raise ValueError("fault plan JSON lists no faults")
        return cls(specs=specs, seed=int(document.get("seed", 0)))

    @classmethod
    def load(cls, source: str, seed: int = 0) -> "FaultPlan":
        """Load a plan from a JSON file path, inline JSON, or compact spec."""
        path = Path(source)
        if path.suffix == ".json" or path.is_file():
            return cls.from_json(path.read_text())
        if source.lstrip().startswith("{"):
            return cls.from_json(source)
        return cls.parse(source, seed=seed)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {
                        "site": s.site,
                        "kind": s.kind,
                        "rate": s.rate,
                        "seconds": s.seconds,
                        "max_faults": s.max_faults,
                    }
                    for s in self.specs
                ],
            },
            indent=2,
        )


class FaultInjector:
    """Armed instance of a :class:`FaultPlan`.

    Per-site RNG streams are derived from ``(plan.seed, site)``, so the
    decision sequence at each site depends only on the plan and the
    site's own call order — not on how sites interleave across threads.

    Parameters
    ----------
    plan:
        The rules to arm.
    sleeper:
        Callable used by ``latency`` faults; ``time.sleep`` by default,
        injectable so tests assert latency without waiting.
    metrics:
        Registry for ``faults_injected_total{site, kind}``; the process
        default when omitted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleeper: Callable[[float], None] = time.sleep,
        metrics: obs.MetricsRegistry | None = None,
    ) -> None:
        self.plan = plan
        self.sleeper = sleeper
        self._metrics = metrics
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self._fired: dict[int, int] = {}  # spec index -> injections so far
        self.n_injected = 0

    @property
    def metrics(self) -> obs.MetricsRegistry:
        return self._metrics if self._metrics is not None else obs.get_registry()

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
        return rng

    def _trigger(self, site: str) -> FaultSpec | None:
        """Decide (under the lock) whether a fault fires at this call."""
        with self._lock:
            for index, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                fired = self._fired.get(index, 0)
                if spec.max_faults is not None and fired >= spec.max_faults:
                    continue
                if self._rng(site).random() < spec.rate:
                    self._fired[index] = fired + 1
                    self.n_injected += 1
                    return spec
        return None

    def check(self, site: str) -> None:
        """Fire any armed ``error``/``latency`` fault at ``site``."""
        spec = self._trigger(site)
        if spec is None:
            return
        self.metrics.counter(
            "faults_injected_total", site=site, kind=spec.kind
        ).inc()
        obs.log_event(
            "fault.injected", level="warning", site=site, kind=spec.kind
        )
        if spec.kind == "latency":
            self.sleeper(spec.seconds)
        elif spec.kind == "error":
            raise InjectedFault(site)
        # "truncate" specs only act through fault_bytes.

    def mangle(self, site: str, data: bytes) -> bytes:
        """Apply any armed ``truncate`` fault at ``site`` to a payload."""
        spec = self._trigger(site)
        if spec is None:
            return data
        self.metrics.counter(
            "faults_injected_total", site=site, kind=spec.kind
        ).inc()
        obs.log_event(
            "fault.injected", level="warning", site=site, kind=spec.kind,
            original_bytes=len(data),
        )
        if spec.kind == "latency":
            self.sleeper(spec.seconds)
            return data
        if spec.kind == "error":
            raise InjectedFault(site)
        # Truncate to a deterministic fraction (at least one byte gone).
        keep = min(len(data) // 2, max(len(data) - 1, 0))
        return data[:keep]

    def counts(self) -> dict[str, int]:
        """Injections so far, keyed ``site:kind`` (JSON-ready)."""
        with self._lock:
            out: dict[str, int] = {}
            for index, fired in self._fired.items():
                spec = self.plan.specs[index]
                key = f"{spec.site}:{spec.kind}"
                out[key] = out.get(key, 0) + fired
            return out


# The process-wide armed injector; None keeps every fault_point a no-op.
_active: FaultInjector | None = None
_install_lock = threading.Lock()


def active_injector() -> FaultInjector | None:
    """The armed injector, if any (for telemetry surfaces)."""
    return _active


def install(
    plan: FaultPlan | None,
    sleeper: Callable[[float], None] = time.sleep,
    metrics: obs.MetricsRegistry | None = None,
) -> FaultInjector | None:
    """Arm a plan process-wide (or disarm with ``None``); returns the injector."""
    global _active
    with _install_lock:
        _active = (
            FaultInjector(plan, sleeper=sleeper, metrics=metrics)
            if plan is not None
            else None
        )
        return _active


@contextmanager
def injected(
    plan: FaultPlan,
    sleeper: Callable[[float], None] = time.sleep,
    metrics: obs.MetricsRegistry | None = None,
) -> Iterator[FaultInjector]:
    """Arm a plan for the duration of a block (tests), restoring the prior."""
    global _active
    with _install_lock:
        previous = _active
    injector = install(plan, sleeper=sleeper, metrics=metrics)
    try:
        yield injector
    finally:
        with _install_lock:
            _active = previous


@contextmanager
def disarmed() -> Iterator[None]:
    """Suspend any armed plan for the duration of a block.

    The same injector object (with its RNG streams and counts intact) is
    re-armed on exit, so a clean-baseline run inside a chaos session does
    not perturb the session's injection sequence.
    """
    global _active
    with _install_lock:
        previous = _active
        _active = None
    try:
        yield
    finally:
        with _install_lock:
            _active = previous


def fault_point(site: str) -> None:
    """Declare an injection site; a no-op unless a plan is armed."""
    injector = _active
    if injector is not None:
        injector.check(site)


def fault_bytes(site: str, data: bytes) -> bytes:
    """Route a byte payload through an injection site (torn-write faults)."""
    injector = _active
    if injector is not None:
        return injector.mangle(site, data)
    return data
