"""Anomaly removal.

Smart-meter extracts contain three gross error classes the paper's
preprocessing removes before modelling: register *spikes* (a reading tens of
times the local level), physically impossible *negatives*, and *stuck*
meters repeating one value for hours.  Detected cells are set to NaN so the
imputation stage repairs them alongside genuine gaps.

Spike detection uses a robust per-customer rule: a reading is anomalous when
its distance from the customer's median exceeds ``spike_sigma`` robust
standard deviations (1.4826 x MAD).  Robust statistics matter here because
the spikes themselves would wreck a mean/std rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import SeriesSet

#: Consistency factor turning a median absolute deviation into a sigma
#: estimate for Gaussian data.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True, slots=True)
class AnomalyReport:
    """What :func:`remove_anomalies` changed.

    Counts are cells set to NaN, broken down by detector.
    """

    n_spikes: int
    n_negatives: int
    n_stuck: int

    @property
    def total(self) -> int:
        return self.n_spikes + self.n_negatives + self.n_stuck


def detect_spikes(matrix: np.ndarray, spike_sigma: float = 8.0) -> np.ndarray:
    """Boolean mask of spike cells, per-row robust z-score rule.

    Rows whose MAD is zero (constant or near-constant series) fall back to a
    relative rule: a reading more than ``spike_sigma`` times the row median
    (when the median is positive) is a spike.
    """
    if spike_sigma <= 0:
        raise ValueError(f"spike_sigma must be positive, got {spike_sigma}")
    mask = np.zeros(matrix.shape, dtype=bool)
    if matrix.size == 0:
        return mask
    import warnings

    with np.errstate(invalid="ignore"), warnings.catch_warnings():
        # All-NaN rows legitimately produce NaN medians (handled below).
        warnings.simplefilter("ignore", RuntimeWarning)
        med = np.nanmedian(matrix, axis=1, keepdims=True)
        mad = np.nanmedian(np.abs(matrix - med), axis=1, keepdims=True)
    sigma = MAD_TO_SIGMA * mad
    robust = sigma[:, 0] > 0
    deviation = np.abs(matrix - med)
    with np.errstate(invalid="ignore"):
        mask[robust] = deviation[robust] > spike_sigma * sigma[robust]
        fallback = ~robust & (med[:, 0] > 0)
        mask[fallback] = matrix[fallback] > spike_sigma * med[fallback]
    mask &= ~np.isnan(matrix)
    return mask


def detect_negatives(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of physically impossible negative readings."""
    with np.errstate(invalid="ignore"):
        return ~np.isnan(matrix) & (matrix < 0.0)


def _run_lengths_forward(flags: np.ndarray) -> np.ndarray:
    """Length of the run of consecutive True values *ending* at each cell.

    Vectorised along axis 1: positions of the last False are forward-filled
    with ``numpy.maximum.accumulate`` and subtracted from the column index.
    """
    n = flags.shape[1]
    reset_at = np.where(flags, 0, np.arange(1, n + 1))
    np.maximum.accumulate(reset_at, axis=1, out=reset_at)
    return np.arange(1, n + 1) - reset_at


def detect_stuck(matrix: np.ndarray, min_run: int = 6) -> np.ndarray:
    """Boolean mask of stuck-meter runs.

    A run of ``min_run`` or more *identical, positive* consecutive readings
    is flagged (zeros are excluded — a vacant premise legitimately reads 0).
    The whole run except its first cell is flagged, keeping one honest
    sample of the value.
    """
    if min_run < 2:
        raise ValueError(f"min_run must be at least 2, got {min_run}")
    n_cols = matrix.shape[1]
    mask = np.zeros(matrix.shape, dtype=bool)
    if n_cols < min_run:
        return mask
    with np.errstate(invalid="ignore"):
        same = matrix[:, 1:] == matrix[:, :-1]
        same &= ~np.isnan(matrix[:, 1:])
        same &= matrix[:, 1:] > 0.0
    # Total length of each cell's maximal run = forward + backward - 1.
    fwd = _run_lengths_forward(same)
    bwd = _run_lengths_forward(same[:, ::-1])[:, ::-1]
    total = fwd + bwd - 1
    # ``same[., j]`` says matrix cells j and j+1 are equal; a maximal run of
    # R such pairs means R+1 identical readings.  Keep the first reading and
    # flag the remaining R when R + 1 >= min_run.
    mask[:, 1:] = same & (total >= min_run - 1)
    return mask


def remove_anomalies(
    series_set: SeriesSet,
    spike_sigma: float = 8.0,
    stuck_min_run: int = 6,
) -> tuple[SeriesSet, AnomalyReport]:
    """Return a cleaned copy plus a report of what was removed.

    Detected cells become NaN; call :func:`repro.preprocess.imputation.impute`
    afterwards to fill them, mirroring the paper's two-step preprocessing.
    """
    matrix = series_set.matrix.copy()
    negatives = detect_negatives(matrix)
    # Make the detector masks disjoint (a negative reading is also far from
    # the median) so report counts sum to the number of cells removed.
    spikes = detect_spikes(matrix, spike_sigma=spike_sigma) & ~negatives
    stuck = detect_stuck(matrix, min_run=stuck_min_run) & ~negatives & ~spikes
    combined = spikes | negatives | stuck
    matrix[combined] = np.nan
    cleaned = SeriesSet(
        customer_ids=series_set.customer_ids.tolist(),
        start_hour=series_set.start_hour,
        matrix=matrix,
    )
    report = AnomalyReport(
        n_spikes=int(spikes.sum()),
        n_negatives=int(negatives.sum()),
        n_stuck=int(stuck.sum()),
    )
    return cleaned, report
