"""Preprocessing: the paper's "removal of anomalies and correction of
missing values", plus the normalisation, resampling and feature extraction
the pattern models consume."""

from repro.preprocess.cleaning import AnomalyReport, remove_anomalies
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.imputation import impute
from repro.preprocess.normalize import normalize
from repro.preprocess.quality import DataQualityReport, assess_quality
from repro.preprocess.resample import resample

__all__ = [
    "AnomalyReport",
    "DataQualityReport",
    "FeatureKind",
    "assess_quality",
    "extract_features",
    "impute",
    "normalize",
    "remove_anomalies",
    "resample",
]
