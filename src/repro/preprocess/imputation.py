"""Missing-value correction.

Gaps in hourly consumption data are strongly diurnal: the best estimate of a
missing 07:00 reading is the customer's other 07:00 readings, not the 06:00
neighbour.  Three strategies are provided, all NaN-in → no-NaN-out:

- ``"interpolate"`` — linear interpolation in time; fast and adequate for
  short communication gaps.
- ``"diurnal"`` — fill with the customer's hour-of-day mean profile; robust
  for long gaps.
- ``"hybrid"`` (default) — interpolate runs up to ``max_gap`` hours, fall
  back to the diurnal profile for longer outages; this mirrors practice in
  utility data warehouses.

Customers with *no* observations at all are filled with zero (there is no
information to do better, and downstream code requires finite values).
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY, SeriesSet

STRATEGIES = ("interpolate", "diurnal", "hybrid")


def _interpolate_row(values: np.ndarray) -> np.ndarray:
    """Linear interpolation over NaN runs; edges extend the nearest value."""
    out = values.copy()
    missing = np.isnan(out)
    if not missing.any():
        return out
    known = np.flatnonzero(~missing)
    if known.size == 0:
        return np.zeros_like(out)
    out[missing] = np.interp(np.flatnonzero(missing), known, out[known])
    return out


def _diurnal_profile(values: np.ndarray, start_hour: int) -> np.ndarray:
    """Hour-of-day mean profile of the observed readings.

    Hours of day never observed fall back to the overall mean; an entirely
    unobserved row falls back to zero.
    """
    hods = (start_hour + np.arange(values.shape[0])) % HOURS_PER_DAY
    profile = np.zeros(HOURS_PER_DAY)
    observed = ~np.isnan(values)
    if not observed.any():
        return profile
    overall = float(values[observed].mean())
    for hod in range(HOURS_PER_DAY):
        at_hod = observed & (hods == hod)
        profile[hod] = float(values[at_hod].mean()) if at_hod.any() else overall
    return profile


def _gap_lengths(missing: np.ndarray) -> np.ndarray:
    """For each missing cell, the total length of its NaN run; 0 elsewhere."""
    n = missing.shape[0]
    lengths = np.zeros(n, dtype=np.int64)
    i = 0
    while i < n:
        if missing[i]:
            j = i
            while j < n and missing[j]:
                j += 1
            lengths[i:j] = j - i
            i = j
        else:
            i += 1
    return lengths


def impute(
    series_set: SeriesSet,
    strategy: str = "hybrid",
    max_gap: int = 6,
) -> SeriesSet:
    """Fill every NaN cell; returns a new :class:`SeriesSet`.

    Parameters
    ----------
    strategy:
        One of :data:`STRATEGIES`.
    max_gap:
        For ``"hybrid"``: longest NaN run (hours) still repaired by linear
        interpolation; longer runs use the diurnal profile.

    Raises
    ------
    ValueError
        For an unknown strategy or non-positive ``max_gap``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")
    if max_gap <= 0:
        raise ValueError(f"max_gap must be positive, got {max_gap}")
    matrix = series_set.matrix.copy()
    for row in range(matrix.shape[0]):
        values = matrix[row]
        missing = np.isnan(values)
        if not missing.any():
            continue
        if strategy == "interpolate":
            matrix[row] = _interpolate_row(values)
            continue
        profile = _diurnal_profile(values, series_set.start_hour)
        hods = (series_set.start_hour + np.arange(values.shape[0])) % HOURS_PER_DAY
        if strategy == "diurnal":
            values = values.copy()
            values[missing] = profile[hods[missing]]
            matrix[row] = values
            continue
        # hybrid: short gaps interpolate, long gaps take the diurnal profile.
        lengths = _gap_lengths(missing)
        long_gap = missing & (lengths > max_gap)
        values = values.copy()
        values[long_gap] = profile[hods[long_gap]]
        matrix[row] = _interpolate_row(values)
    return SeriesSet(
        customer_ids=series_set.customer_ids.tolist(),
        start_hour=series_set.start_hour,
        matrix=matrix,
    )
