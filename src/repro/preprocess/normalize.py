"""Row-wise normalisation of consumption series.

Dimension reduction should compare *shapes*, not magnitudes — the paper
picks the Pearson correlation distance for exactly this reason.  Still,
normalisation is needed wherever a Euclidean-geometry method (MDS stress,
k-means) meets raw kWh rows.  Four schemes:

- ``"zscore"`` — zero mean, unit variance per row (constant rows become 0);
- ``"minmax"`` — map each row to [0, 1] (constant rows become 0);
- ``"sum"`` — divide by the row total, turning a profile into a distribution
  (rows summing to 0 stay 0);
- ``"none"`` — pass-through, for symmetry in sweep code.
"""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import SeriesSet

SCHEMES = ("zscore", "minmax", "sum", "none")


def normalize_matrix(matrix: np.ndarray, scheme: str = "zscore") -> np.ndarray:
    """Normalise each row of a 2-D array; NaNs are ignored in statistics and
    preserved in place.

    Raises
    ------
    ValueError
        For an unknown scheme or a non-2-D input.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick one of {SCHEMES}")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if scheme == "none" or matrix.size == 0:
        return matrix.copy()
    out = matrix.copy()
    with np.errstate(invalid="ignore", divide="ignore"):
        if scheme == "zscore":
            mean = np.nanmean(out, axis=1, keepdims=True)
            std = np.nanstd(out, axis=1, keepdims=True)
            # A constant row can report a *tiny nonzero* std purely from
            # the rounding of its mean; treat std below the row's float
            # noise floor as zero or the division would fabricate +/-1s.
            with np.errstate(all="ignore"):
                noise_floor = 1e-12 * np.maximum(
                    np.nanmax(np.abs(out), axis=1, keepdims=True), 1.0
                )
            flat = ~np.isfinite(std) | (std <= noise_floor)
            safe = np.where(flat, 1.0, std)
            out = (out - mean) / safe
            out[np.broadcast_to(flat, out.shape) & ~np.isnan(out)] = 0.0
        elif scheme == "minmax":
            lo = np.nanmin(out, axis=1, keepdims=True)
            hi = np.nanmax(out, axis=1, keepdims=True)
            span = hi - lo
            safe = np.where(span > 0, span, 1.0)
            out = (out - lo) / safe
            out[np.broadcast_to(span == 0, out.shape) & ~np.isnan(out)] = 0.0
        elif scheme == "sum":
            total = np.nansum(out, axis=1, keepdims=True)
            safe = np.where(total != 0, total, 1.0)
            out = out / safe
    return out


def normalize(series_set: SeriesSet, scheme: str = "zscore") -> SeriesSet:
    """Normalise a :class:`SeriesSet` row-wise (see :func:`normalize_matrix`)."""
    return SeriesSet(
        customer_ids=series_set.customer_ids.tolist(),
        start_hour=series_set.start_hour,
        matrix=normalize_matrix(series_set.matrix, scheme=scheme),
    )
