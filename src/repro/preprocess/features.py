"""Feature extraction for the embedding views.

The paper reduces "high-dimensional time series" directly; in practice a
year of hourly readings (8760-dim) is first folded into a descriptive
profile.  Which folding is used decides which patterns become visible:

- ``MEAN_DAY`` (24-dim) exposes diurnal behaviour — this is the view that
  separates the *early birds* of demo S1;
- ``MEAN_WEEK`` (168-dim) additionally separates weekday/weekend behaviour;
- ``MONTHLY_TOTAL`` (n-months-dim) exposes seasonality — the view where the
  *bimodal* winter/summer pattern stands out;
- ``DAY_NIGHT_RATIO`` and friends in ``SUMMARY`` give a compact 8-dim
  statistical signature;
- ``FULL`` passes the raw matrix through (what the paper nominally does).

All features are row-aligned with the input ``SeriesSet``.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.data.timeseries import HOURS_PER_DAY, Resolution, SeriesSet
from repro.preprocess.resample import resample

HOURS_PER_WEEK = HOURS_PER_DAY * 7


class FeatureKind(enum.Enum):
    """Available profile foldings (see module docstring)."""

    MEAN_DAY = "mean_day"
    MEAN_WEEK = "mean_week"
    MONTHLY_TOTAL = "monthly_total"
    SUMMARY = "summary"
    FULL = "full"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _fold(matrix: np.ndarray, start_hour: int, period: int) -> np.ndarray:
    """NaN-aware mean over a repeating period (24 h day, 168 h week).

    Column ``p`` of the result is the mean of all readings whose hour offset
    is congruent to ``p`` modulo ``period``, phase-aligned to the epoch.
    """
    n_steps = matrix.shape[1]
    phases = (start_hour + np.arange(n_steps)) % period
    sums = np.zeros((matrix.shape[0], period))
    counts = np.zeros((matrix.shape[0], period))
    observed = ~np.isnan(matrix)
    np.add.at(sums, (slice(None), phases), np.where(observed, matrix, 0.0))
    np.add.at(counts, (slice(None), phases), observed.astype(np.float64))
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(counts > 0, sums / counts, np.nan)
    # Phases never observed (short series): fall back to the row mean so the
    # feature stays finite for finite inputs.
    row_mean = np.nanmean(np.where(observed, matrix, np.nan), axis=1, keepdims=True)
    hole = np.isnan(out) & ~np.isnan(np.broadcast_to(row_mean, out.shape))
    out[hole] = np.broadcast_to(row_mean, out.shape)[hole]
    return out


def _summary(matrix: np.ndarray, start_hour: int) -> np.ndarray:
    """Compact 8-dim statistical signature per customer."""
    day = _fold(matrix, start_hour, HOURS_PER_DAY)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.nanmean(matrix, axis=1)
        std = np.nanstd(matrix, axis=1)
        peak = np.nanmax(matrix, axis=1)
        base = np.nanmin(day, axis=1)
        morning = day[:, 5:8].mean(axis=1)
        midday = day[:, 11:15].mean(axis=1)
        evening = day[:, 17:22].mean(axis=1)
        night = np.concatenate([day[:, 0:5], day[:, 22:24]], axis=1).mean(axis=1)
    return np.column_stack([mean, std, peak, base, morning, midday, evening, night])


def extract_features(
    series_set: SeriesSet, kind: FeatureKind = FeatureKind.MEAN_WEEK
) -> np.ndarray:
    """Compute the chosen feature matrix, rows aligned with ``series_set``.

    Raises
    ------
    ValueError
        If the series set has no readings.
    """
    if series_set.n_steps == 0:
        raise ValueError("cannot extract features from an empty SeriesSet")
    matrix = series_set.matrix
    if kind is FeatureKind.FULL:
        return matrix.copy()
    if kind is FeatureKind.MEAN_DAY:
        return _fold(matrix, series_set.start_hour, HOURS_PER_DAY)
    if kind is FeatureKind.MEAN_WEEK:
        return _fold(matrix, series_set.start_hour, HOURS_PER_WEEK)
    if kind is FeatureKind.MONTHLY_TOTAL:
        return resample(series_set, Resolution.MONTHLY, aggregate="sum").matrix
    if kind is FeatureKind.SUMMARY:
        return _summary(matrix, series_set.start_hour)
    raise ValueError(f"unknown feature kind: {kind!r}")  # pragma: no cover
