"""Temporal resampling to the paper's S2 granularities.

Demo scenario S2 varies the shift-map interval over *hourly, every four
hours, daily, weekly, monthly, quarterly, yearly*.  ``resample`` aggregates
an hourly :class:`~repro.data.timeseries.SeriesSet` into those buckets.

Because coarser data is no longer hourly it cannot live in a ``SeriesSet``;
:class:`ResampledSet` carries the bucket boundaries explicitly and can hand
back the ``(t1, t2)`` window pairs the shift model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.timeseries import HourWindow, Resolution, SeriesSet

AGGREGATES = ("sum", "mean", "max")


@dataclass(slots=True)
class ResampledSet:
    """Aggregated readings on a coarser-than-hourly grid.

    Attributes
    ----------
    customer_ids:
        Row labels, same order as the source set.
    resolution:
        Bucket granularity.
    bucket_edges:
        ``(n_buckets + 1,)`` hour offsets; bucket ``b`` covers
        ``[bucket_edges[b], bucket_edges[b+1])``.
    matrix:
        ``(n_customers, n_buckets)`` aggregated values; a bucket with zero
        observed readings is NaN.
    aggregate:
        Which statistic was taken over each bucket.
    """

    customer_ids: np.ndarray
    resolution: Resolution
    bucket_edges: np.ndarray
    matrix: np.ndarray
    aggregate: str

    @property
    def n_buckets(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def n_customers(self) -> int:
        return int(self.matrix.shape[0])

    def window(self, bucket: int) -> HourWindow:
        """The hour window covered by bucket ``bucket``."""
        if not 0 <= bucket < self.n_buckets:
            raise IndexError(f"bucket {bucket} out of range 0..{self.n_buckets - 1}")
        return HourWindow(
            int(self.bucket_edges[bucket]), int(self.bucket_edges[bucket + 1])
        )

    def window_pairs(self) -> list[tuple[HourWindow, HourWindow]]:
        """Consecutive ``(t1, t2)`` window pairs for shift-map sweeps."""
        return [
            (self.window(b), self.window(b + 1)) for b in range(self.n_buckets - 1)
        ]


def resample(
    series_set: SeriesSet,
    resolution: Resolution,
    aggregate: str = "sum",
) -> ResampledSet:
    """Aggregate hourly readings into ``resolution`` buckets.

    Buckets are aligned to the global epoch (so a daily bucket is a calendar
    day, not "24 hours from the first reading").  Partial buckets at the
    edges of the observation window aggregate whatever readings they cover.

    Raises
    ------
    ValueError
        For an unknown ``aggregate`` or an empty time axis.
    """
    if aggregate not in AGGREGATES:
        raise ValueError(f"unknown aggregate {aggregate!r}; pick one of {AGGREGATES}")
    if series_set.n_steps == 0:
        raise ValueError("cannot resample a SeriesSet with no readings")

    hours = series_set.hours
    buckets = np.array([resolution.bucket_of(int(h)) for h in hours], dtype=np.int64)
    unique, inverse = np.unique(buckets, return_inverse=True)
    n_buckets = unique.shape[0]

    # Edges: first hour of each bucket, plus one-past-the-end.
    edges = np.empty(n_buckets + 1, dtype=np.int64)
    for i, b in enumerate(unique):
        edges[i] = hours[buckets == b][0]
    edges[-1] = int(hours[-1]) + 1

    matrix = series_set.matrix
    observed = ~np.isnan(matrix)
    filled = np.where(observed, matrix, 0.0)
    counts = np.zeros((series_set.n_customers, n_buckets))
    sums = np.zeros((series_set.n_customers, n_buckets))
    np.add.at(counts, (slice(None), inverse), observed.astype(np.float64))
    np.add.at(sums, (slice(None), inverse), filled)

    if aggregate == "sum":
        out = np.where(counts > 0, sums, np.nan)
    elif aggregate == "mean":
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(counts > 0, sums / counts, np.nan)
    else:  # max
        out = np.full((series_set.n_customers, n_buckets), -np.inf)
        masked = np.where(observed, matrix, -np.inf)
        np.maximum.at(out, (slice(None), inverse), masked)
        out = np.where(counts > 0, out, np.nan)

    return ResampledSet(
        customer_ids=series_set.customer_ids.copy(),
        resolution=resolution,
        bucket_edges=edges,
        matrix=out,
        aggregate=aggregate,
    )
