"""Temporal resampling to the paper's S2 granularities.

Demo scenario S2 varies the shift-map interval over *hourly, every four
hours, daily, weekly, monthly, quarterly, yearly*.  ``resample`` aggregates
an hourly :class:`~repro.data.timeseries.SeriesSet` into those buckets.

Because coarser data is no longer hourly it cannot live in a ``SeriesSet``;
:class:`ResampledSet` carries the bucket boundaries explicitly and can hand
back the ``(t1, t2)`` window pairs the shift model consumes.

:func:`bucket_partials` is the shared bucketing primitive: per-customer
``(sums, counts)`` for every bucket a series touches.  ``resample`` derives
all three aggregates from it, and the rollup layer
(:mod:`repro.rollup.store`) uses the same partials as its demand tables —
one bucketing implementation, so the derived tables cannot drift from the
batch path.

Partial buckets: a bucket whose observed hour span is narrower than its
nominal calendar span (the data starts or ends mid-bucket) aggregates
fewer hours than its neighbours.  For ``sum`` aggregates that silently
biases the bucket low; for ``mean`` it weights a different part of the
day/week.  ``resample`` therefore *flags* partial edge buckets on every
result (``ResampledSet.partial_buckets``) and can be asked to ``raise`` on
or ``trim`` them instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.timeseries import HourWindow, Resolution, SeriesSet

AGGREGATES = ("sum", "mean", "max")

#: How ``resample`` treats buckets covering fewer hours than their nominal
#: span: record them (``"flag"``), refuse them (``"raise"``) or drop them
#: (``"trim"``).
PARTIAL_MODES = ("flag", "raise", "trim")


@dataclass(slots=True)
class BucketPartials:
    """Per-customer additive partials of one series over one resolution.

    Attributes
    ----------
    resolution:
        Bucket granularity.
    buckets:
        ``(n_buckets,)`` bucket ordinals (ascending, as produced by
        :meth:`~repro.data.timeseries.Resolution.bucket_of`).
    edges:
        ``(n_buckets + 1,)`` observed hour offsets; bucket ``b`` covers the
        observed hours ``[edges[b], edges[b+1])``.
    sums:
        ``(n_customers, n_buckets)`` NaN-aware per-bucket sums.
    counts:
        ``(n_customers, n_buckets)`` observed (non-NaN) hours per bucket.

    Sums and counts are *additive*: partials of two disjoint hour ranges
    merge by adding the matching bucket columns — the property the rollup
    layer's incremental maintenance and the sharded scatter both rely on.
    """

    resolution: Resolution
    buckets: np.ndarray
    edges: np.ndarray
    sums: np.ndarray
    counts: np.ndarray

    @property
    def n_buckets(self) -> int:
        return int(self.buckets.shape[0])

    def partial_mask(self) -> np.ndarray:
        """Boolean mask of buckets whose observed span is narrower than
        their nominal :meth:`~repro.data.timeseries.Resolution.bucket_bounds`
        span."""
        out = np.zeros(self.n_buckets, dtype=bool)
        for i, b in enumerate(self.buckets):
            lo, hi = self.resolution.bucket_bounds(int(b))
            observed = int(self.edges[i + 1] - self.edges[i])
            out[i] = observed < (hi - lo)
        return out


def bucket_partials(
    series_set: SeriesSet, resolution: Resolution
) -> BucketPartials:
    """Bucket a series into epoch-aligned ``resolution`` buckets.

    Raises
    ------
    ValueError
        For an empty time axis.
    """
    if series_set.n_steps == 0:
        raise ValueError("cannot resample a SeriesSet with no readings")
    hours = series_set.hours
    buckets = np.array(
        [resolution.bucket_of(int(h)) for h in hours], dtype=np.int64
    )
    unique, inverse = np.unique(buckets, return_inverse=True)
    n_buckets = unique.shape[0]

    # Edges: first observed hour of each bucket, plus one-past-the-end.
    edges = np.empty(n_buckets + 1, dtype=np.int64)
    for i, b in enumerate(unique):
        edges[i] = hours[buckets == b][0]
    edges[-1] = int(hours[-1]) + 1

    matrix = series_set.matrix
    observed = ~np.isnan(matrix)
    filled = np.where(observed, matrix, 0.0)
    counts = np.zeros((series_set.n_customers, n_buckets))
    sums = np.zeros((series_set.n_customers, n_buckets))
    np.add.at(counts, (slice(None), inverse), observed.astype(np.float64))
    np.add.at(sums, (slice(None), inverse), filled)
    return BucketPartials(
        resolution=resolution,
        buckets=unique,
        edges=edges,
        sums=sums,
        counts=counts,
    )


@dataclass(slots=True)
class ResampledSet:
    """Aggregated readings on a coarser-than-hourly grid.

    Attributes
    ----------
    customer_ids:
        Row labels, same order as the source set.
    resolution:
        Bucket granularity.
    bucket_edges:
        ``(n_buckets + 1,)`` hour offsets; bucket ``b`` covers
        ``[bucket_edges[b], bucket_edges[b+1])``.
    matrix:
        ``(n_customers, n_buckets)`` aggregated values; a bucket with zero
        observed readings is NaN.
    aggregate:
        Which statistic was taken over each bucket.
    partial_buckets:
        Indices of buckets whose observed hour span is narrower than the
        bucket's nominal span (data starting or ending mid-bucket) — their
        aggregates cover fewer hours than their neighbours'.
    """

    customer_ids: np.ndarray
    resolution: Resolution
    bucket_edges: np.ndarray
    matrix: np.ndarray
    aggregate: str
    partial_buckets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def n_buckets(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def n_customers(self) -> int:
        return int(self.matrix.shape[0])

    def is_partial(self, bucket: int) -> bool:
        """Whether bucket ``bucket`` covers fewer hours than its nominal
        span."""
        return bucket in self.partial_buckets

    def window(self, bucket: int) -> HourWindow:
        """The hour window covered by bucket ``bucket``."""
        if not 0 <= bucket < self.n_buckets:
            raise IndexError(f"bucket {bucket} out of range 0..{self.n_buckets - 1}")
        return HourWindow(
            int(self.bucket_edges[bucket]), int(self.bucket_edges[bucket + 1])
        )

    def window_pairs(self) -> list[tuple[HourWindow, HourWindow]]:
        """Consecutive ``(t1, t2)`` window pairs for shift-map sweeps."""
        return [
            (self.window(b), self.window(b + 1)) for b in range(self.n_buckets - 1)
        ]


def resample(
    series_set: SeriesSet,
    resolution: Resolution,
    aggregate: str = "sum",
    on_partial: str = "flag",
) -> ResampledSet:
    """Aggregate hourly readings into ``resolution`` buckets.

    Buckets are aligned to the global epoch (so a daily bucket is a calendar
    day, not "24 hours from the first reading").  Buckets at the edges of
    the observation window may cover only part of their nominal span;
    ``on_partial`` decides their fate:

    - ``"flag"`` (default) — aggregate whatever readings they cover and
      record their indices in ``partial_buckets`` so downstream sweeps can
      see (and the rollup layer can report) the bias risk;
    - ``"raise"`` — refuse with ``ValueError`` naming the short buckets;
    - ``"trim"`` — drop them, returning only nominally complete buckets.

    Raises
    ------
    ValueError
        For an unknown ``aggregate`` or ``on_partial``, an empty time
        axis, or (under ``on_partial="raise"``) a partial edge bucket.
    """
    if aggregate not in AGGREGATES:
        raise ValueError(f"unknown aggregate {aggregate!r}; pick one of {AGGREGATES}")
    if on_partial not in PARTIAL_MODES:
        raise ValueError(
            f"unknown on_partial {on_partial!r}; pick one of {PARTIAL_MODES}"
        )
    partials = bucket_partials(series_set, resolution)
    unique = partials.buckets
    edges = partials.edges
    sums = partials.sums
    counts = partials.counts
    n_buckets = partials.n_buckets

    partial_mask = partials.partial_mask()
    partial_idx = np.flatnonzero(partial_mask)
    if on_partial == "raise" and partial_idx.size:
        spans = ", ".join(
            f"bucket {int(unique[i])} covers "
            f"{int(edges[i + 1] - edges[i])}h of "
            f"{resolution.bucket_bounds(int(unique[i]))[1] - resolution.bucket_bounds(int(unique[i]))[0]}h"
            for i in partial_idx
        )
        raise ValueError(
            f"{resolution} resample has partial edge buckets ({spans}); "
            "pass on_partial='flag' to keep them or 'trim' to drop them"
        )

    if aggregate == "sum":
        out = np.where(counts > 0, sums, np.nan)
    elif aggregate == "mean":
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(counts > 0, sums / counts, np.nan)
    else:  # max
        hours = series_set.hours
        buckets = np.array(
            [resolution.bucket_of(int(h)) for h in hours], dtype=np.int64
        )
        _, inverse = np.unique(buckets, return_inverse=True)
        matrix = series_set.matrix
        observed = ~np.isnan(matrix)
        out = np.full((series_set.n_customers, n_buckets), -np.inf)
        masked = np.where(observed, matrix, -np.inf)
        np.maximum.at(out, (slice(None), inverse), masked)
        out = np.where(counts > 0, out, np.nan)

    if on_partial == "trim" and partial_idx.size:
        keep = ~partial_mask
        out = out[:, keep]
        keep_idx = np.flatnonzero(keep)
        if keep_idx.size:
            new_edges = np.empty(keep_idx.size + 1, dtype=np.int64)
            new_edges[:-1] = edges[keep_idx]
            last = int(keep_idx[-1])
            new_edges[-1] = edges[last + 1]
        else:
            new_edges = edges[:1]
        edges = new_edges
        partial_idx = np.empty(0, dtype=np.int64)

    return ResampledSet(
        customer_ids=series_set.customer_ids.copy(),
        resolution=resolution,
        bucket_edges=edges,
        matrix=out,
        aggregate=aggregate,
        partial_buckets=partial_idx,
    )
