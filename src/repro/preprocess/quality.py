"""Data-quality assessment.

A one-stop report a data engineer would run before loading meter extracts:
missingness (overall, per-customer worst cases, longest gap), value range
sanity and suspected anomaly counts.  The REST layer exposes it so the
dashboard can warn when the underlying extract is poor.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.data.timeseries import SeriesSet
from repro.preprocess.cleaning import (
    _run_lengths_forward,
    detect_negatives,
    detect_spikes,
    detect_stuck,
)


@dataclass(frozen=True, slots=True)
class DataQualityReport:
    """Summary statistics of a raw meter extract."""

    n_customers: int
    n_steps: int
    missing_fraction: float
    worst_customer_missing_fraction: float
    longest_gap_hours: int
    n_suspected_spikes: int
    n_negative_readings: int
    n_suspected_stuck: int
    min_value: float
    max_value: float
    mean_value: float

    def to_record(self) -> dict[str, object]:
        """JSON-friendly dict for the REST layer."""
        return asdict(self)

    @property
    def is_clean(self) -> bool:
        """Whether the extract needs no preprocessing at all."""
        return (
            self.missing_fraction == 0.0
            and self.n_suspected_spikes == 0
            and self.n_negative_readings == 0
            and self.n_suspected_stuck == 0
        )


def _longest_gap(matrix: np.ndarray) -> int:
    """Longest run of NaN in any row (vectorised run-length scan)."""
    if matrix.size == 0:
        return 0
    runs = _run_lengths_forward(np.isnan(matrix))
    return int(runs.max())


def assess_quality(series_set: SeriesSet) -> DataQualityReport:
    """Assess a raw extract; safe on empty and all-NaN inputs."""
    matrix = series_set.matrix
    if matrix.size == 0:
        return DataQualityReport(
            n_customers=series_set.n_customers,
            n_steps=series_set.n_steps,
            missing_fraction=0.0,
            worst_customer_missing_fraction=0.0,
            longest_gap_hours=0,
            n_suspected_spikes=0,
            n_negative_readings=0,
            n_suspected_stuck=0,
            min_value=float("nan"),
            max_value=float("nan"),
            mean_value=float("nan"),
        )
    missing = np.isnan(matrix)
    per_customer_missing = missing.mean(axis=1)
    all_missing = missing.all()
    with np.errstate(invalid="ignore"):
        min_value = float("nan") if all_missing else float(np.nanmin(matrix))
        max_value = float("nan") if all_missing else float(np.nanmax(matrix))
        mean_value = float("nan") if all_missing else float(np.nanmean(matrix))
    return DataQualityReport(
        n_customers=series_set.n_customers,
        n_steps=series_set.n_steps,
        missing_fraction=float(missing.mean()),
        worst_customer_missing_fraction=float(per_customer_missing.max()),
        longest_gap_hours=_longest_gap(matrix),
        n_suspected_spikes=int(detect_spikes(matrix).sum()),
        n_negative_readings=int(detect_negatives(matrix).sum()),
        n_suspected_stuck=int(detect_stuck(matrix).sum()),
        min_value=min_value,
        max_value=max_value,
        mean_value=mean_value,
    )
