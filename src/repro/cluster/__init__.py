"""Clustering baseline and validation metrics.

Demo S1 step 4 runs "the k-mean algorithm on the sampled data to discover
typical patterns, compare the results, and explain the advantages of using
the visual analysis method".  This package provides that baseline (k-means
with k-means++ seeding, plus average-linkage agglomerative as a second
reference) and the internal/external validation metrics the comparison is
scored with.
"""

from repro.cluster.kmeans import KMeansResult, kmeans
from repro.cluster.hierarchy import agglomerative
from repro.cluster.metrics import (
    adjusted_rand_index,
    davies_bouldin,
    normalized_mutual_information,
    purity,
    silhouette,
)

__all__ = [
    "KMeansResult",
    "adjusted_rand_index",
    "agglomerative",
    "davies_bouldin",
    "kmeans",
    "normalized_mutual_information",
    "purity",
    "silhouette",
]
