"""Clustering validation metrics for the S1d comparison.

Internal (no ground truth): *silhouette* and *Davies-Bouldin* score the
geometric quality of a partition.  External (against the generator's
archetype labels): *purity*, *adjusted Rand index* and *normalised mutual
information* score agreement with the truth — the numbers that decide
whether visual selection beats k-means.
"""

from __future__ import annotations

import numpy as np


def _check_labels(labels: np.ndarray, n: int, name: str) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {labels.shape}")
    return labels


def silhouette(distances: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient in [-1, 1] from a distance matrix.

    Singleton clusters contribute 0, the usual convention.

    Raises
    ------
    ValueError
        If fewer than 2 clusters are present.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    labels = _check_labels(labels, n, "labels")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least 2 clusters")
    scores = np.zeros(n)
    members = {c: np.flatnonzero(labels == c) for c in unique}
    for i in range(n):
        own = members[labels[i]]
        if own.size <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own].sum() / (own.size - 1)
        b = np.inf
        for c in unique:
            if c == labels[i]:
                continue
            other = members[c]
            b = min(b, float(distances[i, other].mean()))
        denom = max(a, b)
        scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())


def davies_bouldin(features: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better) in feature space.

    Raises
    ------
    ValueError
        If fewer than 2 clusters are present.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    labels = _check_labels(labels, n, "labels")
    unique = np.unique(labels)
    k = unique.size
    if k < 2:
        raise ValueError("davies_bouldin needs at least 2 clusters")
    centroids = np.stack([features[labels == c].mean(axis=0) for c in unique])
    scatter = np.array(
        [
            float(
                np.linalg.norm(features[labels == c] - centroids[i], axis=1).mean()
            )
            for i, c in enumerate(unique)
        ]
    )
    total = 0.0
    for i in range(k):
        worst = 0.0
        for j in range(k):
            if i == j:
                continue
            gap = float(np.linalg.norm(centroids[i] - centroids[j]))
            if gap == 0:
                continue
            worst = max(worst, (scatter[i] + scatter[j]) / gap)
        total += worst
    return total / k


def _contingency(truth: np.ndarray, pred: np.ndarray) -> np.ndarray:
    t_vals, t_idx = np.unique(truth, return_inverse=True)
    p_vals, p_idx = np.unique(pred, return_inverse=True)
    table = np.zeros((t_vals.size, p_vals.size), dtype=np.int64)
    np.add.at(table, (t_idx, p_idx), 1)
    return table


def purity(truth: np.ndarray, pred: np.ndarray) -> float:
    """Share of points whose cluster's majority truth label matches them."""
    truth = np.asarray(truth)
    pred = _check_labels(pred, truth.shape[0], "pred")
    table = _contingency(truth, pred)
    return float(table.max(axis=0).sum() / truth.shape[0])


def adjusted_rand_index(truth: np.ndarray, pred: np.ndarray) -> float:
    """Hubert & Arabie's chance-corrected Rand index."""
    truth = np.asarray(truth)
    pred = _check_labels(pred, truth.shape[0], "pred")
    table = _contingency(truth, pred)
    n = truth.shape[0]

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(np.float64)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(np.float64)).sum()
    total = comb2(np.array([float(n)]))[0]
    expected = sum_rows * sum_cols / total if total > 0 else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    denom = max_index - expected
    if denom == 0:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / denom)


def normalized_mutual_information(truth: np.ndarray, pred: np.ndarray) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    truth = np.asarray(truth)
    pred = _check_labels(pred, truth.shape[0], "pred")
    table = _contingency(truth, pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 1.0
    p_joint = table / n
    p_t = p_joint.sum(axis=1)
    p_p = p_joint.sum(axis=0)
    mask = p_joint > 0
    outer = np.outer(p_t, p_p)
    mi = float((p_joint[mask] * np.log(p_joint[mask] / outer[mask])).sum())

    def entropy(p: np.ndarray) -> float:
        q = p[p > 0]
        return float(-(q * np.log(q)).sum())

    h_t = entropy(p_t)
    h_p = entropy(p_p)
    denom = (h_t + h_p) / 2.0
    if denom == 0:
        return 1.0
    return float(np.clip(mi / denom, 0.0, 1.0))
