"""k-means with k-means++ seeding, from scratch.

Lloyd's algorithm with the standard guarantees: inertia is monotonically
non-increasing across iterations, empty clusters are re-seeded from the
point farthest from its centroid, and ``n_init`` restarts keep the best
run.  Deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs


@dataclass(slots=True)
class KMeansResult:
    """Assignment plus diagnostics of the best restart."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int
    inertia_trace: list[float]


def _plus_plus_init(
    features: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = features.shape[0]
    centroids = np.empty((k, features.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = features[first]
    d2 = ((features - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick uniformly.
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=d2 / total))
        centroids[i] = features[pick]
        d2 = np.minimum(d2, ((features - centroids[i]) ** 2).sum(axis=1))
    return centroids


def _assign(features: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid labels and per-point squared distances."""
    sq_f = (features**2).sum(axis=1)[:, None]
    sq_c = (centroids**2).sum(axis=1)[None, :]
    d2 = sq_f + sq_c - 2.0 * (features @ centroids.T)
    np.clip(d2, 0.0, None, out=d2)
    labels = d2.argmin(axis=1)
    return labels, d2[np.arange(features.shape[0]), labels]


def kmeans(
    features: np.ndarray,
    k: int,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int = 0,
) -> KMeansResult:
    """Cluster rows into ``k`` groups; best of ``n_init`` restarts.

    Raises
    ------
    ValueError
        For invalid shapes, non-finite input or k outside [1, n].
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    n = features.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n_points={n}], got {k}")
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    total_iterations = 0
    with obs.span("kernel.kmeans", n_points=n, k=k, n_init=n_init), \
            obs.get_registry().timer("kernel_runtime_seconds", kernel="kmeans"):
        for _ in range(n_init):
            centroids = _plus_plus_init(features, k, rng)
            trace: list[float] = []
            labels, d2 = _assign(features, centroids)
            iterations = 0
            for iterations in range(1, max_iter + 1):
                # Update step.
                for c in range(k):
                    members = features[labels == c]
                    if members.shape[0] == 0:
                        # Re-seed an empty cluster at the worst-fitted point.
                        centroids[c] = features[int(d2.argmax())]
                    else:
                        centroids[c] = members.mean(axis=0)
                new_labels, d2 = _assign(features, centroids)
                inertia = float(d2.sum())
                trace.append(inertia)
                if (new_labels == labels).all():
                    labels = new_labels
                    break
                if len(trace) >= 2 and trace[-2] - trace[-1] < tol * max(trace[-2], 1e-30):
                    labels = new_labels
                    break
                labels = new_labels
            total_iterations += iterations
            inertia = float(d2.sum())
            if best is None or inertia < best.inertia:
                best = KMeansResult(
                    labels=labels.copy(),
                    centroids=centroids.copy(),
                    inertia=inertia,
                    n_iter=iterations,
                    inertia_trace=trace,
                )
    assert best is not None
    registry = obs.get_registry()
    registry.counter("kernel_runs_total", kernel="kmeans").inc()
    registry.counter("kmeans_restarts_total").inc(n_init)
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="kmeans"
    ).observe(total_iterations)
    registry.gauge("kernel_last_objective", kernel="kmeans").set(best.inertia)
    return best
