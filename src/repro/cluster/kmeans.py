"""k-means with k-means++ seeding, from scratch.

Lloyd's algorithm with the standard guarantees: inertia is monotonically
non-increasing across iterations, empty clusters are re-seeded from the
point farthest from its centroid, and ``n_init`` restarts keep the best
run.  Deterministic for a given seed.

:func:`minibatch_kmeans` is the out-of-core variant (Sculley 2010):
each step assigns one seeded random batch and moves the touched
centroids toward the batch mean with a per-centroid decaying learning
rate, so fleet-scale inputs cluster in O(batch) memory per step.

Both accept a ``dtype=`` knob: ``"float32"`` halves memory bandwidth in
the assignment matmuls while every reduction (means, inertia) still
accumulates in float64, keeping results within ~1e-5 of the float64
path.  ``dtype=None`` keeps the historical float64 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs


def _resolve_dtype(dtype: str | None) -> np.dtype:
    """Map the public ``dtype=`` knob to a numpy dtype (default float64)."""
    if dtype is None:
        return np.dtype(np.float64)
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dtype!r}")
    return dt


@dataclass(slots=True)
class KMeansResult:
    """Assignment plus diagnostics of the best restart."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int
    inertia_trace: list[float]


def _plus_plus_init(
    features: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = features.shape[0]
    centroids = np.empty((k, features.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = features[first]
    d2 = ((features - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick uniformly.
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=d2 / total))
        centroids[i] = features[pick]
        d2 = np.minimum(d2, ((features - centroids[i]) ** 2).sum(axis=1))
    return centroids


def _assign(features: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid labels and per-point squared distances.

    The matmul runs in the input dtype; the squared-norm reductions
    accumulate in float64 (a no-op for float64 input), so ``d2`` is
    always float64 regardless of the compute dtype.
    """
    sq_f = (features**2).sum(axis=1, dtype=np.float64)[:, None]
    sq_c = (centroids**2).sum(axis=1, dtype=np.float64)[None, :]
    d2 = sq_f + sq_c - 2.0 * (features @ centroids.T)
    np.clip(d2, 0.0, None, out=d2)
    labels = d2.argmin(axis=1)
    return labels, d2[np.arange(features.shape[0]), labels]


def kmeans(
    features: np.ndarray,
    k: int,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int = 0,
    dtype: str | None = None,
) -> KMeansResult:
    """Cluster rows into ``k`` groups; best of ``n_init`` restarts.

    Raises
    ------
    ValueError
        For invalid shapes, non-finite input or k outside [1, n].
    """
    features = np.asarray(features, dtype=_resolve_dtype(dtype))
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    n = features.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n_points={n}], got {k}")
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    total_iterations = 0
    with obs.span("kernel.kmeans", n_points=n, k=k, n_init=n_init), \
            obs.get_registry().timer("kernel_runtime_seconds", kernel="kmeans"):
        for _ in range(n_init):
            centroids = _plus_plus_init(features, k, rng)
            trace: list[float] = []
            labels, d2 = _assign(
                features, centroids.astype(features.dtype, copy=False)
            )
            iterations = 0
            for iterations in range(1, max_iter + 1):
                # Update step (float64 accumulators regardless of dtype).
                for c in range(k):
                    members = features[labels == c]
                    if members.shape[0] == 0:
                        # Re-seed an empty cluster at the worst-fitted point.
                        centroids[c] = features[int(d2.argmax())]
                    else:
                        centroids[c] = members.mean(axis=0, dtype=np.float64)
                new_labels, d2 = _assign(
                    features, centroids.astype(features.dtype, copy=False)
                )
                inertia = float(d2.sum())
                trace.append(inertia)
                if (new_labels == labels).all():
                    labels = new_labels
                    break
                if len(trace) >= 2 and trace[-2] - trace[-1] < tol * max(trace[-2], 1e-30):
                    labels = new_labels
                    break
                labels = new_labels
            total_iterations += iterations
            inertia = float(d2.sum())
            if best is None or inertia < best.inertia:
                best = KMeansResult(
                    labels=labels.copy(),
                    centroids=centroids.copy(),
                    inertia=inertia,
                    n_iter=iterations,
                    inertia_trace=trace,
                )
    assert best is not None
    registry = obs.get_registry()
    registry.counter("kernel_runs_total", kernel="kmeans").inc()
    registry.counter("kmeans_restarts_total").inc(n_init)
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="kmeans"
    ).observe(total_iterations)
    registry.gauge("kernel_last_objective", kernel="kmeans").set(best.inertia)
    return best


def minibatch_kmeans(
    features: np.ndarray,
    k: int,
    batch_size: int = 1024,
    max_iter: int = 100,
    tol: float = 1e-4,
    seed: int = 0,
    dtype: str | None = None,
) -> KMeansResult:
    """Mini-batch k-means (Sculley 2010) for fleet-scale inputs.

    Each step draws one seeded random batch, assigns it to the current
    centroids and moves every touched centroid toward its batch mean
    with learning rate ``m_c / count_c`` (the per-centroid decaying rate
    that makes the sequence converge).  Stops when the largest centroid
    shift drops below ``tol`` or after ``max_iter`` batches, then runs
    one full assignment pass for the final labels and exact inertia.

    ~1-3% worse inertia than Lloyd's on clusterable data in exchange for
    O(batch_size · k) work per step; deterministic per seed.
    ``inertia_trace`` holds the *estimated* (batch-scaled) inertia per
    step; the returned ``inertia`` is exact.

    Raises
    ------
    ValueError
        For invalid shapes, non-finite input, k outside [1, n] or a
        non-positive batch size.
    """
    features = np.asarray(features, dtype=_resolve_dtype(dtype))
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    if not np.isfinite(features).all():
        raise ValueError("features contain NaN/inf; impute first")
    n = features.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n_points={n}], got {k}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch = min(batch_size, n)
    rng = np.random.default_rng(seed)
    registry = obs.get_registry()
    with obs.span(
        "kernel.kmeans_minibatch", n_points=n, k=k, batch=batch
    ), registry.timer("kernel_runtime_seconds", kernel="kmeans"):
        # Seed from a D^2 sample over a bounded subset: k-means++ quality
        # without an O(n·k) init pass on huge fleets.
        init_rows = rng.choice(n, size=min(n, max(batch, 10 * k)), replace=False)
        centroids = _plus_plus_init(features[init_rows], k, rng)
        counts = np.zeros(k)
        trace: list[float] = []
        iterations = 0
        for iterations in range(1, max_iter + 1):
            rows = rng.choice(n, size=batch, replace=False)
            x = features[rows]
            labels, d2 = _assign(
                x, centroids.astype(features.dtype, copy=False)
            )
            trace.append(float(d2.sum()) * (n / batch))
            shift = 0.0
            for c in np.unique(labels):
                members = x[labels == c]
                counts[c] += members.shape[0]
                step = (members.shape[0] / counts[c]) * (
                    members.mean(axis=0, dtype=np.float64) - centroids[c]
                )
                centroids[c] += step
                shift = max(shift, float((step**2).sum()))
            if shift < tol * tol:
                break
        final_labels, d2 = _assign(
            features, centroids.astype(features.dtype, copy=False)
        )
        inertia = float(d2.sum())
    registry.counter("kernel_runs_total", kernel="kmeans").inc()
    registry.counter(
        "kernel_method_total", kernel="kmeans", method="minibatch"
    ).inc()
    registry.histogram(
        "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="kmeans"
    ).observe(iterations)
    registry.gauge("kernel_last_objective", kernel="kmeans").set(inertia)
    return KMeansResult(
        labels=final_labels,
        centroids=centroids,
        inertia=inertia,
        n_iter=iterations,
        inertia_trace=trace,
    )
