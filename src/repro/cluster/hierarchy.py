"""Agglomerative clustering (average linkage) on a distance matrix.

A second clustering reference that — unlike k-means — accepts the paper's
Pearson dissimilarity directly, making it the fairer "automatic" competitor
to visual selection in shape space.  O(n^3) naive merging, fine at the
n ≤ a-few-thousand scale of the case study.
"""

from __future__ import annotations

import numpy as np

from repro.core.reduction.distances import validate_distance_matrix

LINKAGES = ("average", "single", "complete")


def agglomerative(
    distances: np.ndarray, k: int, linkage: str = "average"
) -> np.ndarray:
    """Merge clusters until ``k`` remain; returns integer labels 0..k-1.

    Labels are renumbered in first-appearance order so results are
    deterministic.

    Raises
    ------
    ValueError
        For an invalid distance matrix, unknown linkage or k out of range.
    """
    dist = validate_distance_matrix(distances)
    n = dist.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n_points={n}], got {k}")
    if linkage not in LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; pick one of {LINKAGES}")

    # Working matrix of cluster-to-cluster distances; inf marks dead rows.
    work = dist.copy().astype(np.float64)
    np.fill_diagonal(work, np.inf)
    sizes = np.ones(n)
    alive = np.ones(n, dtype=bool)
    parent = np.arange(n)  # union-find without ranks (path halving)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for _ in range(n - k):
        flat = int(np.argmin(work))
        i, j = divmod(flat, n)
        if not (alive[i] and alive[j]) or not np.isfinite(work[i, j]):
            break  # no mergeable pair left (degenerate input)
        if j < i:
            i, j = j, i
        # Merge j into i.
        others = alive.copy()
        others[[i, j]] = False
        idx = np.flatnonzero(others)
        if linkage == "average":
            new_d = (
                work[i, idx] * sizes[i] + work[j, idx] * sizes[j]
            ) / (sizes[i] + sizes[j])
        elif linkage == "single":
            new_d = np.minimum(work[i, idx], work[j, idx])
        else:  # complete
            new_d = np.maximum(work[i, idx], work[j, idx])
        work[i, idx] = new_d
        work[idx, i] = new_d
        work[j, :] = np.inf
        work[:, j] = np.inf
        work[i, i] = np.inf
        sizes[i] += sizes[j]
        alive[j] = False
        parent[find(j)] = find(i)

    roots = np.array([find(x) for x in range(n)])
    labels = np.empty(n, dtype=np.int64)
    seen: dict[int, int] = {}
    for pos, root in enumerate(roots):
        if root not in seen:
            seen[root] = len(seen)
        labels[pos] = seen[root]
    return labels
