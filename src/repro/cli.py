"""Command-line interface: ``python -m repro <command>``.

Six commands cover the tool's operational surface:

- ``generate`` — synthesise a city and write customers + readings CSVs;
- ``dashboard`` — build the composed Figure-3 HTML page from CSVs (or a
  freshly generated city when no input is given);
- ``quality`` — print the data-quality report for a readings CSV;
- ``sql`` — run a SQL SELECT against a customers CSV;
- ``stats`` — run a representative workload through the full stack and
  print the observability snapshot (metrics, slowest operations and,
  with ``--spans``, trace trees); ``--dashboard out.svg`` also writes
  the self-monitoring telemetry panel;
- ``serve`` — serve the REST API with the threaded WSGI server
  (``--threads``/``--max-inflight``/``--deadline-seconds`` control
  concurrency and backpressure, ``--fault-plan`` arms deterministic
  chaos injection, ``--profile-hz`` runs the continuous profiler; same
  as ``python -m repro.server``);
- ``jobs`` — drive a running server's async job API:
  ``submit <kind> --param k=v``, ``status <id>``, ``wait <id>
  [--artifact out]``, ``cancel <id>``;
- ``profile`` — stack-sample a representative in-process workload and
  write folded stacks or a flamegraph SVG;
- ``bench`` — time the fast kernels against their exact twins and write
  the machine-readable ``BENCH_PERF.json`` perf-trajectory document
  (``--quick`` for the CI smoke variant; also measures continuous-
  profiler overhead);
- ``rollup`` — rebuild or inspect the materialized rollup layer over a
  generated workload: ``rebuild`` forces a fresh derived-table build,
  ``status`` prints staleness (last-applied hour, lag vs the source)
  and maintenance counters; ``--ticks N`` streams N extra hours through
  the shard router first to demonstrate incremental maintenance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.loader import (
    load_customers,
    load_readings_wide,
    save_customers,
    save_readings_wide,
)
from repro.data.timeseries import HourWindow
from repro.db import build_database
from repro.preprocess.quality import assess_quality
from repro.viz.dashboard import render_dashboard


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="VAP reproduction command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="synthesise a city to CSV")
    gen.add_argument("--customers", type=int, default=200)
    gen.add_argument("--days", type=int, default=90)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out-dir", type=Path, default=Path("."))

    dash = commands.add_parser("dashboard", help="render the Figure-3 page")
    dash.add_argument("--customers-csv", type=Path, default=None)
    dash.add_argument("--readings-csv", type=Path, default=None)
    dash.add_argument("--t1", type=int, nargs=2, default=(61, 63),
                      metavar=("START", "END"))
    dash.add_argument("--t2", type=int, nargs=2, default=(67, 69),
                      metavar=("START", "END"))
    dash.add_argument("--out", type=Path, default=Path("vap_dashboard.html"))
    dash.add_argument("--seed", type=int, default=7)

    quality = commands.add_parser("quality", help="data-quality report")
    quality.add_argument("readings_csv", type=Path)

    sql = commands.add_parser("sql", help="query a customers CSV with SQL")
    sql.add_argument("customers_csv", type=Path)
    sql.add_argument("query")

    stats = commands.add_parser(
        "stats", help="run a sample workload and print collected metrics"
    )
    stats.add_argument("--customers", type=int, default=60)
    stats.add_argument("--days", type=int, default=21)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--json", action="store_true", help="print the raw JSON snapshot"
    )
    stats.add_argument(
        "--spans", type=int, default=0, metavar="N",
        help="also print up to N recorded span trees",
    )
    stats.add_argument(
        "--dashboard", type=Path, default=None, metavar="OUT_SVG",
        help="also write the self-monitoring telemetry panel as SVG",
    )

    bench = commands.add_parser(
        "bench", help="benchmark fast kernels vs exact, write BENCH_PERF.json"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (same document shape)",
    )
    bench.add_argument(
        "--out", type=Path, default=Path("BENCH_PERF.json"),
        help="output path for the JSON document",
    )
    bench.add_argument(
        "--kernel", action="append", default=None, metavar="NAME",
        help="restrict to one kernel (repeatable): tsne/kde/perplexity/dtw",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--no-profiler", action="store_true",
        help="skip the continuous-profiler overhead measurement",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the document to stdout instead of writing --out",
    )
    bench.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool budget for blockwise kernels "
             "(sets REPRO_WORKERS for this run)",
    )

    serve = commands.add_parser(
        "serve", help="serve the REST API (threaded WSGI server)"
    )
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--customers", type=int, default=200)
    serve.add_argument("--days", type=int, default=90)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--threads", type=int, default=8,
        help="worker threads handling requests concurrently",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-wide parallelism budget for blockwise kernels and "
             "shard scatter (sets REPRO_WORKERS)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="concurrent-request cap; excess requests get 503 + "
             "Retry-After (0 disables)",
    )
    serve.add_argument(
        "--deadline-seconds", type=float, default=None,
        help="per-request time budget for heavy kernel endpoints",
    )
    serve.add_argument(
        "--fault-plan", type=str, default=None, metavar="PLAN",
        help="arm a deterministic fault-injection plan (chaos demo): "
             "JSON file, inline JSON, or 'site=kind:rate' pairs",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's injection streams",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="hash-partition the database into N shards with parallel "
             "scatter-gather queries (default: REPRO_SHARDS env, else 1)",
    )
    serve.add_argument(
        "--tenants", type=str, default=None, metavar="NAMES",
        help="comma-separated tenant ids, each with an isolated "
             "database; select per request via X-Tenant / tenant=",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="per-tenant request quota (429 beyond it; unset = unlimited)",
    )
    serve.add_argument(
        "--profile-hz", type=float, default=0.0, metavar="HZ",
        help="run the continuous stack-sampling profiler at this rate "
             "(0 disables; /api/profile burst-samples on demand)",
    )

    rollup = commands.add_parser(
        "rollup",
        help="rebuild or inspect the materialized rollup layer",
    )
    rollup.add_argument(
        "action", choices=("status", "rebuild"),
        help="'rebuild' forces a fresh derived-table build; 'status' "
             "builds lazily and reports staleness",
    )
    rollup.add_argument("--customers", type=int, default=60)
    rollup.add_argument("--days", type=int, default=21)
    rollup.add_argument("--seed", type=int, default=7)
    rollup.add_argument(
        "--ticks", type=int, default=0, metavar="N",
        help="after the build, stream N extra hourly ticks through the "
             "shard router so the rollups are maintained incrementally",
    )
    rollup.add_argument(
        "--shards", type=int, default=None,
        help="hash-partition the database into N shards (default: "
             "REPRO_SHARDS env, else 1)",
    )
    rollup.add_argument(
        "--json", action="store_true", help="print the raw status JSON"
    )

    jobs = commands.add_parser(
        "jobs", help="drive the async job API of a running server"
    )
    jobs.add_argument(
        "action", choices=("submit", "status", "wait", "cancel"),
        help="submit a job, poll one, block until it finishes, or cancel",
    )
    jobs.add_argument(
        "target", nargs="?", default=None,
        help="job kind for 'submit' (embed/render/export), job id otherwise",
    )
    jobs.add_argument(
        "--url", type=str, default="http://127.0.0.1:8765",
        help="base URL of the running server (default http://127.0.0.1:8765)",
    )
    jobs.add_argument(
        "--tenant", type=str, default=None,
        help="tenant to act as (X-Tenant header; server default when unset)",
    )
    jobs.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="job parameter for 'submit' (repeatable); values parse as "
             "JSON when possible, else stay strings",
    )
    jobs.add_argument(
        "--priority", type=int, default=0,
        help="submission priority (higher runs first; default 0)",
    )
    jobs.add_argument(
        "--timeout", type=float, default=600.0,
        help="'wait' gives up after this many seconds (default 600)",
    )
    jobs.add_argument(
        "--interval", type=float, default=0.5,
        help="'wait' polling interval in seconds (default 0.5)",
    )
    jobs.add_argument(
        "--artifact", type=Path, default=None, metavar="OUT",
        help="after a successful 'wait', download the artifact here",
    )

    profile = commands.add_parser(
        "profile", help="stack-sample a workload, write folded stacks or SVG"
    )
    profile.add_argument("--seconds", type=float, default=5.0,
                         help="how long to sample (default 5)")
    profile.add_argument("--hz", type=float, default=100.0,
                         help="samples per second (default 100)")
    profile.add_argument(
        "--out", type=Path, default=Path("profile.svg"),
        help="output path; .svg renders a flamegraph, anything else "
             "writes folded-stack text",
    )
    profile.add_argument("--customers", type=int, default=60)
    profile.add_argument("--days", type=int, default=21)
    profile.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    city = generate_city(
        CityConfig(n_customers=args.customers, n_days=args.days, seed=args.seed)
    )
    args.out_dir.mkdir(parents=True, exist_ok=True)
    customers_path = args.out_dir / "customers.csv"
    readings_path = args.out_dir / "readings.csv"
    save_customers(city.customers, customers_path)
    save_readings_wide(city.raw, readings_path)
    print(
        f"wrote {len(city.customers)} customers to {customers_path} and "
        f"{city.raw.n_steps} hourly readings each to {readings_path}"
    )
    return 0


def _load_or_generate(args: argparse.Namespace):
    if (args.customers_csv is None) != (args.readings_csv is None):
        raise SystemExit(
            "pass both --customers-csv and --readings-csv, or neither"
        )
    if args.customers_csv is None:
        city = generate_city(CityConfig(seed=args.seed))
        session = VapSession.from_city(city)
        return session, city.layout, city.archetype_labels()
    customers = load_customers(args.customers_csv)
    readings = load_readings_wide(args.readings_csv)
    session = VapSession(build_database(customers, readings))
    return session, None, None


def _cmd_dashboard(args: argparse.Namespace) -> int:
    session, layout, labels = _load_or_generate(args)
    html_text = render_dashboard(
        session,
        HourWindow(*args.t1),
        HourWindow(*args.t2),
        labels=labels,
        layout=layout,
    )
    args.out.write_text(html_text)
    print(f"dashboard written to {args.out}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    readings = load_readings_wide(args.readings_csv)
    record = assess_quality(readings).to_record()
    width = max(len(k) for k in record)
    for key, value in record.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.db.sql import SqlError, execute_sql
    from repro.db.table import Table
    from repro.db.engine import CUSTOMER_SCHEMA

    customers = load_customers(args.customers_csv)
    table = Table("customers", CUSTOMER_SCHEMA)
    table.insert_columns(
        {
            "customer_id": [c.customer_id for c in customers],
            "lon": [c.lon for c in customers],
            "lat": [c.lat for c in customers],
            "zone": [c.zone.value for c in customers],
            "archetype": [c.archetype.value for c in customers],
        }
    )
    try:
        rows = execute_sql({"customers": table}, args.query)
    except SqlError as exc:
        print(f"SQL error: {exc}", file=sys.stderr)
        return 1
    if not rows:
        print("(no rows)")
        return 0
    headers = list(rows[0])
    print("\t".join(headers))
    for row in rows:
        print("\t".join(str(row[h]) for h in headers))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Exercise the full stack once and print what the obs layer saw."""
    from repro import obs
    from repro.server import TestClient, VapApp

    registry = obs.MetricsRegistry()
    sink = obs.RingBufferSink(capacity=64)
    window_store = obs.TimeWindowStore()
    slow_log = obs.SlowOpLog()
    previous_registry, previous_tracer = obs.get_registry(), obs.get_tracer()
    previous_window, previous_slow = obs.get_window_store(), obs.get_slow_log()
    obs.configure(
        registry=registry, sink=sink, window_store=window_store,
        slow_log=slow_log,
    )
    try:
        city = generate_city(
            CityConfig(n_customers=args.customers, n_days=args.days,
                       seed=args.seed)
        )
        session = VapSession.from_city(city)
        client = TestClient(VapApp(session, layout=city.layout))
        day = min(2, args.days - 1) * 24
        for url in (
            "/api/health",
            "/api/embedding?n_iter=100",
            "/api/embedding?n_iter=100",  # second call exercises the cache
            f"/api/shift?t1_start={day + 13}&t1_end={day + 15}"
            f"&t2_start={day + 19}&t2_end={day + 21}",
            "/api/kmeans?k=4",
        ):
            response = client.get(url)
            if not response.ok:
                print(f"workload request {url} failed: {response.json}",
                      file=sys.stderr)
                return 1
        if args.dashboard is not None:
            panel = client.get("/api/telemetry?format=svg")
            if not panel.ok:
                print(f"telemetry panel failed: {panel.json}", file=sys.stderr)
                return 1
            args.dashboard.write_bytes(panel.body)
            print(f"telemetry dashboard written to {args.dashboard}")
    finally:
        # Leave the process-wide defaults as we found them (tests call
        # this in-process).
        obs.configure(
            registry=previous_registry, tracer=previous_tracer,
            window_store=previous_window, slow_log=previous_slow,
        )

    if args.json:
        from repro.server import json_codec

        snapshot = registry.snapshot()
        snapshot["slow_ops"] = slow_log.records()
        snapshot["windows"] = window_store.snapshot()
        if args.spans:
            snapshot["spans"] = [
                r.to_record() for r in sink.records()[-args.spans:]
            ]
        print(json_codec.dumps(snapshot))
        return 0

    snapshot = registry.snapshot()
    print(f"workload: {args.customers} customers x {args.days} days "
          f"(seed {args.seed})\n")
    print("counters")
    for record in snapshot["counters"]:
        labels = " ".join(f"{k}={v}" for k, v in record["labels"].items())
        print(f"  {record['name']:<28}{record['value']:>10.0f}  {labels}")
    print("\ngauges")
    for record in snapshot["gauges"]:
        labels = " ".join(f"{k}={v}" for k, v in record["labels"].items())
        print(f"  {record['name']:<28}{record['value']:>10.4g}  {labels}")
    print("\nhistograms (count / p50 / p99, seconds)")
    for record in snapshot["histograms"]:
        labels = " ".join(f"{k}={v}" for k, v in record["labels"].items())
        print(
            f"  {record['name']:<28}{record['count']:>6d}"
            f"{record['p50']:>10.4g}{record['p99']:>10.4g}  {labels}"
        )
    slow = slow_log.records()[:5]
    if slow:
        print("\nslowest operations (with request IDs)")
        for record in slow:
            rid = record.get("request_id") or "-"
            print(
                f"  {record['duration_ms']:>9.1f} ms  "
                f"{record['name']:<20} req={rid}"
            )
    if args.spans:
        print("\nspan trees (most recent last)")
        for root in sink.records()[-args.spans:]:
            print("\n".join(root.format_tree(indent=1)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time fast kernels vs exact twins; write the perf-trajectory JSON."""
    import json as json_mod
    import os

    from repro.bench import run_bench, write_bench

    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(max(1, args.workers))
    document = run_bench(
        quick=args.quick, kernels=args.kernel, seed=args.seed,
        profiler=not args.no_profiler,
    )
    if args.json:
        # Machine-readable mode (CI comparator): document on stdout,
        # nothing written to disk.
        print(json_mod.dumps(document, indent=2))
        return 0
    write_bench(args.out, document)
    print(f"{'kernel':<12}{'n':>8}{'exact s':>10}{'fast s':>10}{'speedup':>9}")
    for kernel, payload in document["kernels"].items():
        for run in payload["runs"]:
            size = run.get("n", run.get("length", "?"))
            exact = run.get("exact_seconds")
            speedup = run.get("speedup")
            print(
                f"{kernel:<12}{size:>8}"
                + (f"{exact:>10.3f}" if exact is not None else f"{'-':>10}")
                + f"{run['fast_seconds']:>10.3f}"
                + (
                    f"{speedup:>8.1f}x" if speedup is not None
                    else f"{'-':>9}"
                )
            )
    prof = document.get("profiler")
    if prof is not None:
        print(
            f"profiler overhead @ {prof['hz']:g} hz: "
            f"{prof['baseline_ops_per_s']:.1f} -> "
            f"{prof['profiled_ops_per_s']:.1f} ops/s "
            f"({prof['overhead_pct']:.1f}% cost, {prof['samples']} samples)"
        )
    print(f"perf document written to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Sample a representative workload and write the profile."""
    import threading

    from repro.obs.profiler import StackProfiler, render_folded

    city = generate_city(
        CityConfig(n_customers=args.customers, n_days=args.days,
                   seed=args.seed)
    )
    session = VapSession.from_city(city)
    profiler = StackProfiler(hz=args.hz)
    profiler.start()
    stop = threading.Event()

    def workload() -> None:
        # Loop the heavy endpoints until the sampling window closes so
        # the profile actually contains kernel frames, not idle waits.
        seed = 0
        while not stop.is_set():
            session.embed(n_iter=50, seed=seed)
            session.kmeans_baseline(k=4, seed=seed)
            seed += 1

    worker = threading.Thread(target=workload, daemon=True)
    worker.start()
    try:
        counts = profiler.collect(args.seconds)
    finally:
        stop.set()
        worker.join(timeout=10.0)
        profiler.stop()
    total = sum(counts.values())
    if args.out.suffix.lower() == ".svg":
        from repro.viz.flamegraph import render_flamegraph

        args.out.write_text(render_flamegraph(
            counts, title=f"repro profile ({args.seconds:g}s @ {args.hz:g}hz)"
        ))
    else:
        args.out.write_text(render_folded(counts))
    print(
        f"profiled {args.seconds:g}s at {args.hz:g} hz: {total} samples, "
        f"{len(counts)} distinct stacks -> {args.out}"
    )
    return 0


def _cmd_rollup(args: argparse.Namespace) -> int:
    """Build/inspect the rollup layer over a generated workload."""
    import time

    from repro.stream.feed import ReplayFeed
    from repro.stream.routing import ShardRouter

    hold = max(args.ticks, 0)
    extra_days = (hold + 23) // 24
    city = generate_city(
        CityConfig(
            n_customers=args.customers,
            n_days=args.days + extra_days,
            seed=args.seed,
        )
    )
    series = city.raw
    head_end = series.start_hour + args.days * 24
    head = series.slice_hours(series.start_hour, head_end)
    db = build_database(city.customers, head, shards=args.shards)
    session = VapSession(db, preprocess=False)
    start = time.perf_counter()
    store = session.rollups(rebuild=args.action == "rebuild")
    build_seconds = time.perf_counter() - start
    if hold:
        tail = series.slice_hours(head_end, head_end + hold)
        router = ShardRouter(
            db, [int(cid) for cid in tail.customer_ids], rollups=store
        )
        router.replay(ReplayFeed(tail, retry=None))
    status = session.rollup_status()["status"]

    if args.json:
        from repro.server import json_codec

        print(json_codec.dumps(status))
        return 0

    print(
        f"rollup store: {status['n_customers']} customers, "
        f"bandwidth {status['bandwidth_m']:.1f} m "
        f"(built in {build_seconds * 1000.0:.1f} ms)"
    )
    print(
        f"  applied through hour {status['last_applied_hour']} "
        f"(source end {status['source_end_hour']}, "
        f"lag {status['lag_hours']} h)"
    )
    print(
        f"  rebuilds {status['rebuilds_total']}, "
        f"hours applied {status['hours_applied_total']}, "
        f"grids built/added/refolded "
        f"{status['grid_builds_total']}/"
        f"{status['grid_adds_total']}/"
        f"{status['grid_refolds_total']} "
        f"(refold every {status['refold_every']} h)"
    )
    print(f"\n{'resolution':<14}{'buckets':>9}{'grids cached':>14}")
    for table in status["tables"]:
        print(
            f"{table['resolution']:<14}{table['n_buckets']:>9}"
            f"{table['grids_cached']:>14}"
        )
    return 0


def _jobs_http(
    method: str,
    url: str,
    tenant: str | None,
    body: dict | None = None,
) -> tuple[int, dict, bytes, dict[str, str]]:
    """One HTTP round trip to the jobs API; returns (status, json-or-{},
    raw body, headers).  4xx/5xx are returned, not raised, so callers
    can print the server's error document."""
    import json as json_mod
    import urllib.error
    import urllib.request

    data = None if body is None else json_mod.dumps(body).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    if tenant is not None:
        request.add_header("X-Tenant", tenant)
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            raw = response.read()
            status = response.status
            headers = dict(response.headers.items())
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        status = exc.code
        headers = dict(exc.headers.items())
    try:
        payload = json_mod.loads(raw)
    except ValueError:
        payload = {}
    return status, payload if isinstance(payload, dict) else {}, raw, headers


def _parse_job_params(pairs: list[str] | None) -> dict:
    """``KEY=VALUE`` pairs to a params dict; values parse as JSON when
    they can (so ``n_iter=500`` is an int) and stay strings otherwise."""
    import json as json_mod

    params: dict = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param must be KEY=VALUE, got {pair!r}")
        try:
            params[key] = json_mod.loads(value)
        except ValueError:
            params[key] = value
    return params


def _print_job(record: dict) -> None:
    line = (
        f"job {record.get('job_id')}  kind={record.get('kind')}  "
        f"state={record.get('state')}  "
        f"progress={record.get('progress', 0.0):.1%}"
    )
    eta = record.get("eta_seconds")
    if eta is not None:
        line += f"  eta={eta:.1f}s"
    if record.get("message"):
        line += f"  ({record['message']})"
    print(line)
    if record.get("error"):
        print(f"  error: {record['error']}")
    artifact = record.get("artifact")
    if artifact:
        print(
            f"  artifact: {artifact['digest']} "
            f"({artifact['size']} bytes, {artifact['content_type']})"
        )


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Drive a running server's async job API over HTTP."""
    import time

    base = args.url.rstrip("/")
    if args.action == "submit":
        if args.target is None:
            raise SystemExit("jobs submit needs a kind (embed/render/export)")
        status, payload, _, _ = _jobs_http(
            "POST", f"{base}/api/jobs", args.tenant,
            body={
                "kind": args.target,
                "params": _parse_job_params(args.param),
                "priority": args.priority,
            },
        )
        if status != 202:
            print(f"submit failed ({status}): {payload.get('error', '?')}",
                  file=sys.stderr)
            return 1
        _print_job(payload)
        return 0

    if args.target is None:
        raise SystemExit(f"jobs {args.action} needs a job id")
    job_url = f"{base}/api/jobs/{args.target}"

    if args.action == "cancel":
        status, payload, _, _ = _jobs_http("DELETE", job_url, args.tenant)
        if status != 200:
            print(f"cancel failed ({status}): {payload.get('error', '?')}",
                  file=sys.stderr)
            return 1
        _print_job(payload)
        return 0

    deadline = time.monotonic() + args.timeout
    while True:
        status, payload, _, _ = _jobs_http("GET", job_url, args.tenant)
        if status != 200:
            print(f"poll failed ({status}): {payload.get('error', '?')}",
                  file=sys.stderr)
            return 1
        _print_job(payload)
        if args.action == "status":
            return 0
        if payload.get("state") in ("succeeded", "failed", "cancelled"):
            break
        if time.monotonic() >= deadline:
            print(f"gave up after {args.timeout:g}s", file=sys.stderr)
            return 1
        time.sleep(args.interval)
    if payload.get("state") != "succeeded":
        return 1
    if args.artifact is not None:
        status, _, raw, headers = _jobs_http(
            "GET", f"{job_url}/artifact", args.tenant
        )
        if status != 200:
            print(f"artifact fetch failed ({status})", file=sys.stderr)
            return 1
        args.artifact.write_bytes(raw)
        print(
            f"artifact written to {args.artifact} "
            f"({len(raw)} bytes, {headers.get('Content-Type', '?')})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Delegate to the ``python -m repro.server`` entry point."""
    import os

    from repro.server.__main__ import main as server_main

    if args.workers is not None:
        # One budget for kernel pools and shard scatter threads alike.
        os.environ["REPRO_WORKERS"] = str(max(1, args.workers))
    argv = [
        "--port", str(args.port),
        "--customers", str(args.customers),
        "--days", str(args.days),
        "--seed", str(args.seed),
        "--threads", str(args.threads),
        "--max-inflight", str(args.max_inflight),
    ]
    if args.deadline_seconds is not None:
        argv += ["--deadline-seconds", str(args.deadline_seconds)]
    if args.fault_plan is not None:
        argv += ["--fault-plan", args.fault_plan,
                 "--fault-seed", str(args.fault_seed)]
    if args.shards is not None:
        argv += ["--shards", str(args.shards)]
    if args.tenants is not None:
        argv += ["--tenants", args.tenants]
    if args.tenant_quota is not None:
        argv += ["--tenant-quota", str(args.tenant_quota)]
    if args.profile_hz:
        argv += ["--profile-hz", str(args.profile_hz)]
    server_main(argv)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "dashboard": _cmd_dashboard,
    "quality": _cmd_quality,
    "sql": _cmd_sql,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "jobs": _cmd_jobs,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "rollup": _cmd_rollup,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
