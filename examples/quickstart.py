"""Quickstart: the full VAP loop in ~40 lines.

Generates the synthetic case-study city, builds an analysis session
(preprocessing included), discovers a typical pattern interactively,
computes an evening shift map and writes the composed Figure-3 dashboard
to ``vap_dashboard.html``.

Run:  python examples/quickstart.py
"""

from repro import CityConfig, VapSession, generate_city
from repro.core.patterns.selection import KnnSelection
from repro.data.timeseries import HourWindow
from repro.viz.dashboard import render_dashboard


def main() -> None:
    # 1. Data: a synthetic city (stand-in for the paper's smart-meter set).
    city = generate_city(CityConfig(n_customers=250, n_days=90, seed=7))
    print(f"generated {len(city.customers)} customers x {city.raw.n_steps} hours")

    # 2. Logic layer: preprocess, embed, explore.
    session = VapSession.from_city(city)
    print(
        f"preprocessing removed {session.anomalies.total} anomalous readings; "
        f"raw missing fraction was {session.quality.missing_fraction:.1%}"
    )
    embedding = session.embed()  # t-SNE + Pearson distance (paper defaults)
    print(
        f"embedded with {embedding.method}: KL divergence "
        f"{embedding.objective:.3f}"
    )

    # 3. Interactive discovery: click near a point, ask "what pattern is this?"
    view_c = session.selection_session(embedding)
    seed_x, seed_y = embedding.coords[0]
    indices = view_c.select("my-cluster", KnnSelection(seed_x, seed_y, 15))
    pattern = session.pattern_of(indices)
    print(
        f"selected {indices.size} customers -> pattern "
        f"{pattern.archetype.value!r} (vote share {pattern.score:.0%})"
    )

    # 4. Shift map: Wednesday office hours vs evening (paper Figure 3).
    day = 24 * 2
    t1, t2 = HourWindow(day + 13, day + 15), HourWindow(day + 19, day + 21)
    flows = session.flows(t1, t2)
    for flow in flows[:3]:
        src = city.layout.nearest_zone(flow.lon, flow.lat)
        dst = city.layout.nearest_zone(*flow.tip)
        print(f"demand flow: {src.name} ({src.kind}) -> {dst.name} ({dst.kind})")

    # 5. Presentation layer: the composed three-view page.
    html = render_dashboard(
        session, t1, t2,
        selection=indices,
        labels=city.archetype_labels(),
        layout=city.layout,
    )
    out = "vap_dashboard.html"
    with open(out, "w") as handle:
        handle.write(html)
    print(f"dashboard written to {out}")


if __name__ == "__main__":
    main()
