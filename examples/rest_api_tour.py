"""Tour of the RESTful JSON API (the paper's logic-layer contract).

Drives the WSGI app in-process through the test client so no port is
needed; `python -m repro.server` serves the identical app over HTTP.

Run:  python examples/rest_api_tour.py
"""

from repro import CityConfig, VapSession, generate_city
from repro.server import TestClient, VapApp


def main() -> None:
    city = generate_city(CityConfig(n_customers=150, n_days=60, seed=29))
    session = VapSession.from_city(city)
    client = TestClient(VapApp(session, layout=city.layout))

    print("GET /api/health")
    print("  ", client.get("/api/health").json)

    print("GET /api/quality")
    quality = client.get("/api/quality").json
    print(
        f"   missing {quality['missing_fraction']:.1%}, "
        f"spikes {quality['n_suspected_spikes']}, "
        f"removed {quality['anomalies_removed']}"
    )

    print("GET /api/customers?zone=commercial")
    commercial = client.get("/api/customers?zone=commercial").json
    print(f"   {commercial['count']} commercial customers")

    box = session.db.bounding_box()
    mid = box.center
    url = f"/api/customers?bbox={box.min_lon},{box.min_lat},{mid.lon},{mid.lat}"
    print(f"GET {url}")
    print(f"   {client.get(url).json['count']} customers in the SW quadrant")

    print("GET /api/embedding")
    embedding = client.get("/api/embedding").json
    print(
        f"   {len(embedding['points'])} points, method {embedding['method']}, "
        f"objective {embedding['objective']:.3f}"
    )

    x, y = embedding["points"][0]
    print("POST /api/selection (knn around the first point)")
    selection = client.post(
        "/api/selection", json={"type": "knn", "x": x, "y": y, "k": 12}
    ).json
    print(
        f"   {selection['count']} customers -> pattern "
        f"{selection['pattern']!r} (share {selection['pattern_score']:.0%})"
    )

    print("GET /api/shift (Wednesday 13-15h vs 19-21h)")
    day = 24 * 2
    shift = client.get(
        f"/api/shift?t1_start={day + 13}&t1_end={day + 15}"
        f"&t2_start={day + 19}&t2_end={day + 21}"
    ).json
    print(f"   energy {shift['energy']:.3e}, {len(shift['flows'])} major flows")
    for flow in shift["flows"][:3]:
        print(f"   flow {flow['from']} -> {flow['to']}")

    print("GET /api/kmeans?k=5")
    km = client.get("/api/kmeans?k=5").json
    print(f"   inertia {km['inertia']:.1f} over {len(km['labels'])} customers")

    print("error handling:")
    print(f"   GET /api/customers/999999 -> {client.get('/api/customers/999999').status}")
    print(f"   GET /api/embedding?method=umap -> {client.get('/api/embedding?method=umap').status}")
    print(f"   POST /api/health -> {client.post('/api/health', json={}).status}")


if __name__ == "__main__":
    main()
