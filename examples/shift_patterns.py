"""Demo scenario S2: spatio-temporal shift-pattern discovery.

Reproduces the three S2 steps:

1. sensitivity of the shift maps to the temporal granularity (hourly,
   4-hourly, daily, weekly, monthly, quarterly, yearly);
2. sensitivity to the consumption-intensity quantile (30%..90%);
3. near-real-time replay with a simulated 10-second feed.

Also writes the standalone view-A SVG (``vap_shift_map.svg``) with the
evening commercial→residential flow of the paper's Figure 3.

Run:  python examples/shift_patterns.py
"""

from repro import CityConfig, VapSession, generate_city
from repro.core.shift.sensitivity import granularity_sweep, quantile_sweep
from repro.data.timeseries import ALL_RESOLUTIONS, HourWindow
from repro.stream.clock import SimulatedClock
from repro.stream.feed import ReplayFeed
from repro.stream.online import run_replay
from repro.viz.dashboard import render_map_view


def main() -> None:
    city = generate_city(CityConfig(n_customers=300, n_days=365, seed=23))
    session = VapSession.from_city(city)

    # ------------------------------------------------------------------
    # S2 step 1: temporal granularity sweep.
    # ------------------------------------------------------------------
    print("== S2.1 shift sensitivity vs temporal granularity ==")
    print(f"{'granularity':<14}{'pairs':>6}{'mean |shift|':>14}{'flows':>7}")
    for row in granularity_sweep(session.db, ALL_RESOLUTIONS, spec=session.grid()):
        print(
            f"{row.resolution.value:<14}{row.n_window_pairs:>6}"
            f"{row.mean_energy:>14.3e}{row.mean_flows:>7.1f}"
        )

    # ------------------------------------------------------------------
    # S2 step 2: intensity-quantile sweep (paper: 30%..90%).
    # ------------------------------------------------------------------
    day = 24 * 2
    t1, t2 = HourWindow(day + 13, day + 15), HourWindow(day + 19, day + 21)
    print("\n== S2.2 shift sensitivity vs consumption intensity ==")
    print(f"{'quantile':<10}{'customers':>10}{'|shift|':>12}{'flows':>7}")
    for row in quantile_sweep(session.db, t1, t2, spec=session.grid()):
        print(
            f"{row.quantile:<10.0%}{row.n_customers:>10}"
            f"{row.energy:>12.3e}{row.n_flows:>7}"
        )

    # ------------------------------------------------------------------
    # S2 step 3: near-real-time replay (simulated 10 s ticks).
    # ------------------------------------------------------------------
    print("\n== S2.3 near-real-time replay ==")
    feed = ReplayFeed(session.series.slice_hours(0, 24 * 4), hours_per_tick=1)
    clock = SimulatedClock(tick_seconds=10.0)
    updates = run_replay(
        feed,
        city.positions(),
        session.grid(),
        window_hours=4,
        clock=clock,
        bandwidth_m=400.0,
    )
    print(f"replayed {feed.n_ticks} ticks -> {len(updates)} shift updates")
    for update in updates[:6]:
        flow = update.main_flow
        direction = (
            f"main flow {flow.magnitude:.2e}" if flow else "no dominant flow"
        )
        print(
            f"  t+{update.clock_seconds:>5.0f}s  hour {update.hours_seen:>3}  "
            f"|shift| {update.energy:.3e}  {direction}"
        )

    # ------------------------------------------------------------------
    # The Figure 3 map: office hours -> evening.
    # ------------------------------------------------------------------
    flows = session.flows(t1, t2)
    main_flow = flows[0]
    src = city.layout.nearest_zone(main_flow.lon, main_flow.lat)
    dst = city.layout.nearest_zone(*main_flow.tip)
    print(
        f"\nheadline flow: {src.name} ({src.kind}) -> {dst.name} ({dst.kind})"
    )
    doc = render_map_view(session, t1, t2, layout=city.layout)
    out = "vap_shift_map.svg"
    with open(out, "w") as handle:
        handle.write(doc.render_document())
    print(f"shift map written to {out}")


if __name__ == "__main__":
    main()
