"""Demo scenario S1: typical-pattern discovery, end to end.

Reproduces the four S1 steps of the paper's demonstration:

1. the "early birds" question — find customers with a 05:00-07:00 morning
   peak by selecting their region of the embedding, and score the answer
   against ground truth;
2. pattern *transition* — walk across neighbouring embedding points and
   watch the consumption pattern morph gradually;
3. t-SNE vs MDS — same data through both reducers, compared on KL
   divergence, trustworthiness, continuity and neighbourhood hit;
4. k-means vs the visual-analysis method — agreement with ground truth.

Run:  python examples/typical_patterns.py
"""

import numpy as np

from repro import CityConfig, VapSession, generate_city
from repro.cluster.metrics import adjusted_rand_index, purity
from repro.core.patterns.selection import KnnSelection
from repro.core.patterns.transition import random_walk_baseline, transition_walk
from repro.core.reduction.distances import pairwise_distances
from repro.core.reduction.quality import (
    continuity,
    kl_divergence_embedding,
    neighborhood_hit,
    trustworthiness,
)


def main() -> None:
    city = generate_city(CityConfig(n_customers=300, n_days=365, seed=17))
    session = VapSession.from_city(city)
    truth = city.archetype_labels()
    info = session.embed()

    # ------------------------------------------------------------------
    # S1 step 1: "who are the early birds with a morning peak 5:00-7:00?"
    # ------------------------------------------------------------------
    print("== S1.1 early birds ==")
    exemplar = int(np.flatnonzero(truth == "early_bird")[0])
    n_true = int((truth == "early_bird").sum())
    indices = KnnSelection(
        info.coords[exemplar, 0], info.coords[exemplar, 1], n_true
    ).apply(info.coords)
    hit = truth[indices] == "early_bird"
    precision = hit.mean()
    recall = hit.sum() / n_true
    print(
        f"selected {indices.size} points around an exemplar: "
        f"precision {precision:.0%}, recall {recall:.0%} "
        f"({n_true} true early birds)"
    )

    # ------------------------------------------------------------------
    # S1 step 2: pattern transition across closely placed points.
    # ------------------------------------------------------------------
    print("\n== S1.2 pattern transition ==")
    walk = transition_walk(info.coords, session.series, start=exemplar, n_steps=60)
    baseline = random_walk_baseline(session.series, n_steps=60, seed=1)
    print(
        f"neighbour-walk mean step similarity {walk.mean_step_similarity:.3f} "
        f"vs random order {baseline.mean_step_similarity:.3f}"
    )
    print(f"similarity by walk distance: {np.round(walk.similarity_by_lag(6), 3)}")

    # ------------------------------------------------------------------
    # S1 step 3: t-SNE vs MDS.
    # ------------------------------------------------------------------
    print("\n== S1.3 reducer comparison (Pearson distance) ==")
    dist = pairwise_distances(session.features(), "pearson")
    print(f"{'method':<14}{'KL':>8}{'trust':>8}{'cont':>8}{'nhit':>8}")
    for method in ("tsne", "mds", "mds_classical"):
        emb = session.embed(method=method)
        kl = (
            emb.objective
            if method == "tsne"
            else kl_divergence_embedding(dist, emb.coords)
        )
        print(
            f"{method:<14}"
            f"{kl:>8.3f}"
            f"{trustworthiness(dist, emb.coords):>8.3f}"
            f"{continuity(dist, emb.coords):>8.3f}"
            f"{neighborhood_hit(emb.coords, truth):>8.3f}"
        )

    # ------------------------------------------------------------------
    # S1 step 4: k-means vs the visual-analysis method.
    # ------------------------------------------------------------------
    print("\n== S1.4 k-means baseline vs visual analysis ==")
    km = session.kmeans_baseline(k=6)
    visual = np.array([p.archetype.value for p in session.member_labels()])
    print(f"{'method':<18}{'purity':>8}{'ARI':>8}")
    print(
        f"{'k-means (k=6)':<18}"
        f"{purity(truth, km.labels):>8.3f}"
        f"{adjusted_rand_index(truth, km.labels):>8.3f}"
    )
    print(
        f"{'visual analysis':<18}"
        f"{purity(truth, visual):>8.3f}"
        f"{adjusted_rand_index(truth, visual):>8.3f}"
    )


if __name__ == "__main__":
    main()
