"""Demand-response targeting from discovered patterns.

The paper's motivating use: "the identified patterns represent customers
with similar consumption behaviors or habits, which can be used to develop
targeting demand-response programs".  This example builds that targeting
study:

1. segment the fleet by discovered pattern (the archetype each customer's
   series matches);
2. compute the utility-planning statistics per segment — load factor,
   coincidence factor, contribution to the system peak;
3. rank segments by demand-response priority;
4. re-run the study under 50% EV adoption to see how the target list
   shifts (the paper's outlook scenario).

Run:  python examples/demand_response.py
"""

import numpy as np

from repro import CityConfig, VapSession, generate_city
from repro.core.patterns.segmentation import build_report
from repro.data.generator.scenario import apply_ev_adoption


def _segments_by_pattern(session: VapSession) -> dict[str, np.ndarray]:
    labels = np.array([p.archetype.value for p in session.member_labels()])
    return {
        name: np.flatnonzero(labels == name) for name in np.unique(labels)
    }


def _print_report(session: VapSession, title: str) -> None:
    report = build_report(session.series, _segments_by_pattern(session))
    print(f"\n== {title} ==")
    print(
        f"system peak {report.system_peak_kw:.1f} kW at "
        f"{report.system_peak_hour_of_day:02d}:00"
    )
    for row in report.rows():
        print(row)
    targets = report.targeting_order()
    print("demand-response target order:", " > ".join(s.name for s in targets[:3]))


def main() -> None:
    city = generate_city(CityConfig(n_customers=300, n_days=60, seed=53))
    # Planning studies run on settled, billing-grade data: use the clean
    # readings directly.  (Running the raw path instead would also filter
    # out most EV charging — a 7 kW charger looks like an 8x spike to the
    # anomaly detector on a 1 kW household.)
    baseline = VapSession.from_city(city, use_raw=False, preprocess=False)
    _print_report(baseline, "baseline fleet, segments by discovered pattern")

    scenario, adopters = apply_ev_adoption(city, adoption_rate=0.5, seed=1)
    with_ev = VapSession.from_city(scenario, use_raw=False, preprocess=False)
    _print_report(
        with_ev, f"after 50% EV adoption ({len(adopters)} residential adopters)"
    )


if __name__ == "__main__":
    main()
