"""Exploring the customer base with SQL (the data-layer surface).

The paper's tool keeps its customers in PostgreSQL; the embedded engine
reproduces the SELECT surface those deployments actually use.  This
example answers typical planning questions in SQL, both through the
library API and through the REST endpoint.

Run:  python examples/sql_explorer.py
"""

from repro import CityConfig, VapSession, generate_city
from repro.server import TestClient, VapApp

QUESTIONS = [
    (
        "How many customers per land-use zone?",
        "SELECT zone, count(*) AS n FROM customers GROUP BY zone ORDER BY n DESC",
    ),
    (
        "Which archetypes live in the commercial core?",
        "SELECT archetype, count(*) AS n FROM customers "
        "WHERE zone = 'commercial' GROUP BY archetype ORDER BY n DESC",
    ),
    (
        "Five northernmost residential customers",
        "SELECT customer_id, lat FROM customers WHERE zone = 'residential' "
        "ORDER BY lat DESC LIMIT 5",
    ),
    (
        "Suspicious or idle meters east of the centre",
        "SELECT customer_id, zone, archetype FROM customers "
        "WHERE archetype IN ('suspicious', 'idle') AND lon > 12.57 LIMIT 8",
    ),
    (
        "Bounding box of the early-bird population",
        "SELECT min(lon) AS w, max(lon) AS e, min(lat) AS s, max(lat) AS n "
        "FROM customers WHERE archetype = 'early_bird'",
    ),
]


def main() -> None:
    city = generate_city(CityConfig(n_customers=250, n_days=30, seed=47))
    session = VapSession.from_city(city)

    print("== via the library API (EnergyDatabase.sql) ==")
    for question, query in QUESTIONS:
        print(f"\n-- {question}")
        print(f"   {query}")
        for row in session.db.sql(query):
            print(f"   {row}")

    print("\n== via POST /api/sql ==")
    client = TestClient(VapApp(session))
    response = client.post(
        "/api/sql",
        json={
            "query": "SELECT zone, avg(lon) AS lon, avg(lat) AS lat "
            "FROM customers GROUP BY zone"
        },
    )
    print(f"status {response.status}, {response.json['count']} rows")
    for row in response.json["rows"]:
        print(f"   {row}")


if __name__ == "__main__":
    main()
