"""Auditing suspicious consumption — the utility-inspection workflow.

The paper's fifth typical pattern is the *suspicious* one: erratic spikes,
level shifts and implausible outages worth a meter inspection.  This
example runs the audit end to end:

1. score every customer against the suspicious template;
2. list the top candidates with their evidence;
3. render a consumption *fingerprint* (hour x day heat map) for the worst
   one next to a normal customer — what the inspector actually looks at;
4. draw a zone choropleth of mean demand as spatial context.

Writes ``vap_fingerprint_suspicious.svg``, ``vap_fingerprint_normal.svg``
and ``vap_choropleth.svg``.

Run:  python examples/anomaly_audit.py
"""

import numpy as np

from repro import CityConfig, VapSession, generate_city
from repro.data.meter import CustomerType
from repro.data.timeseries import HourWindow
from repro.db.spatial import BBox
from repro.viz.basemap import MapProjection, base_document
from repro.viz.choropleth import render_choropleth, zone_demand
from repro.viz.fingerprint import render_fingerprint


def main() -> None:
    city = generate_city(CityConfig(n_customers=250, n_days=120, seed=37))
    session = VapSession.from_city(city)
    truth = city.archetype_labels()

    # ------------------------------------------------------------------
    # 1-2. rank customers by suspicious-template score.
    # ------------------------------------------------------------------
    labels = session.member_labels()
    scores = np.array([lbl.scores[CustomerType.SUSPICIOUS] for lbl in labels])
    order = np.argsort(scores)[::-1]
    print("top suspicious candidates:")
    print(f"{'rank':<6}{'customer':<10}{'score':>7}{'  truth':<14}")
    for rank, row in enumerate(order[:8], start=1):
        cid = int(session.series.customer_ids[row])
        print(f"{rank:<6}{cid:<10}{scores[row]:>7.2f}  {truth[row]:<14}")
    hits = (truth[order[:8]] == "suspicious").sum()
    print(f"({hits}/8 of the top candidates are true suspicious meters)")

    # ------------------------------------------------------------------
    # 3. fingerprints: worst candidate vs an ordinary home.
    # ------------------------------------------------------------------
    worst_row = int(order[0])
    normal_row = int(np.flatnonzero(truth == "bimodal")[0])
    window = HourWindow(0, 60 * 24)
    for row, tag in ((worst_row, "suspicious"), (normal_row, "normal")):
        cid = int(session.series.customer_ids[row])
        series = session.db.readings.series(cid).slice_hours(
            window.start_hour, window.end_hour
        )
        doc = render_fingerprint(
            series,
            title=f"Customer {cid} ({tag}) — raw readings, first 60 days",
        )
        path = f"vap_fingerprint_{tag}.svg"
        with open(path, "w") as handle:
            handle.write(doc.render_document())
        print(f"fingerprint written to {path}")

    # ------------------------------------------------------------------
    # 4. spatial context: mean demand per district.
    # ------------------------------------------------------------------
    positions, demand = session.db.demand(HourWindow(0, session.series.n_steps))
    per_zone = zone_demand(city.layout, positions, demand)
    min_lon, min_lat, max_lon, max_lat = city.layout.bounding_box()
    projection = MapProjection(BBox(min_lon, min_lat, max_lon, max_lat), 520, 520)
    doc = base_document(projection, "Mean demand per district (kWh/h)")
    doc.add(render_choropleth(city.layout, per_zone, projection))
    with open("vap_choropleth.svg", "w") as handle:
        handle.write(doc.render_document())
    print("choropleth written to vap_choropleth.svg")
    ranked = sorted(per_zone.items(), key=lambda kv: kv[1], reverse=True)
    for name, value in ranked:
        print(f"  {name:<16}{value:6.2f} kWh/h per customer")


if __name__ == "__main__":
    main()
