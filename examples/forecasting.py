"""Pattern-based load forecasting (the paper's downstream-use claim).

Shows the full story: discover a customer's pattern group in the
embedding, build a group profile from it, and use that profile to forecast
a *data-poor* customer (3 days of history) nearly as well as a customer
with months of data — the personalised-services angle of the paper's
introduction.

Run:  python examples/forecasting.py
"""

import numpy as np

from repro import CityConfig, VapSession, generate_city
from repro.core.patterns.selection import KnnSelection
from repro.forecast import (
    HoltWinters,
    NaiveForecaster,
    ProfileForecaster,
    SeasonalNaive,
    backtest,
    smape,
)

HORIZON = 24
WEEK = 168


def main() -> None:
    city = generate_city(CityConfig(n_customers=200, n_days=90, seed=41))
    session = VapSession.from_city(city)
    fleet = session.series

    # ------------------------------------------------------------------
    # Fleet-level backtest: who forecasts day-ahead load best?
    # ------------------------------------------------------------------
    print("== day-ahead backtest over the fleet ==")
    results = backtest(
        fleet,
        {
            "naive": NaiveForecaster,
            "seasonal naive (168h)": lambda: SeasonalNaive(WEEK),
            "holt-winters (24h)": lambda: HoltWinters(season=24),
            "profile (patterns)": lambda: ProfileForecaster(),
        },
        horizon=HORIZON,
        n_folds=3,
        min_history=28 * 24,
    )
    print(f"{'model':<22}{'MAE':>9}{'sMAPE':>9}{'MASE':>9}")
    for result in results:
        print(result.row())

    # ------------------------------------------------------------------
    # Personalisation: forecast a data-poor customer from its group.
    # ------------------------------------------------------------------
    print("\n== cold-start forecasting via the pattern group ==")
    info = session.embed()
    truth = city.archetype_labels()
    # Residential customers with a real diurnal shape — the population the
    # personalisation story is about (flat loads need no pattern help).
    targets = np.flatnonzero(np.isin(truth, ["bimodal", "early_bird"]))[:25]
    split = fleet.n_steps - HORIZON
    scores = {"naive (3 days)": [], "group profile + 3 days": [],
              "own profile + full history": []}
    for target_row in targets:
        # The analyst selects the target's neighbourhood in view C ...
        neighbours = KnnSelection(
            info.coords[target_row, 0], info.coords[target_row, 1], 20
        ).apply(info.coords)
        neighbours = neighbours[neighbours != target_row]
        # ... and the group's weekly profile becomes the forecasting shape.
        ids = [int(fleet.customer_ids[i]) for i in neighbours]
        group = fleet.select_customers(ids)
        phases = (group.start_hour + np.arange(group.n_steps)) % WEEK
        sums = np.zeros(WEEK)
        counts = np.zeros(WEEK)
        np.add.at(sums, phases, np.nan_to_num(group.matrix).sum(axis=0))
        np.add.at(counts, phases, float(group.n_customers))
        group_profile = sums / np.maximum(counts, 1.0)

        series = fleet.matrix[target_row]
        actual = series[split : split + HORIZON]
        cold_history = series[split - 3 * 24 : split]  # only 3 days known

        cold = ProfileForecaster(group_profile=group_profile, level_window=48)
        cold.fit(
            cold_history,
            start_phase=(fleet.start_hour + split - 3 * 24) % WEEK,
        )
        warm = ProfileForecaster()
        warm.fit(series[:split], start_phase=fleet.start_hour % WEEK)
        naive = NaiveForecaster().fit(cold_history).predict(HORIZON)
        scores["naive (3 days)"].append(smape(actual, naive))
        scores["group profile + 3 days"].append(smape(actual, cold.predict(HORIZON)))
        scores["own profile + full history"].append(
            smape(actual, warm.predict(HORIZON))
        )
    print(f"{len(targets)} diurnal-pattern customers, mean day-ahead sMAPE:")
    for name, values in scores.items():
        print(f"  {name:<28}: {np.mean(values):.3f}")


if __name__ == "__main__":
    main()
