"""Tests for k-means, agglomerative clustering and validation metrics."""

import numpy as np
import pytest

from repro.cluster.hierarchy import agglomerative
from repro.cluster.kmeans import kmeans
from repro.cluster.metrics import (
    adjusted_rand_index,
    davies_bouldin,
    normalized_mutual_information,
    purity,
    silhouette,
)
from repro.core.reduction.distances import euclidean_distance_matrix


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(5)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    feats = np.vstack([rng.normal(c, 0.6, size=(25, 2)) for c in centers])
    labels = np.repeat([0, 1, 2], 25)
    return feats, labels


class TestKmeans:
    def test_recovers_blobs(self, blobs):
        feats, truth = blobs
        result = kmeans(feats, k=3, seed=0)
        assert adjusted_rand_index(truth, result.labels) == pytest.approx(1.0)

    def test_inertia_monotone_within_run(self, blobs):
        feats, _ = blobs
        result = kmeans(feats, k=3, n_init=1, seed=1)
        trace = result.inertia_trace
        assert all(a >= b - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_assignment_is_nearest_centroid(self, blobs):
        feats, _ = blobs
        result = kmeans(feats, k=3, seed=0)
        d2 = ((feats[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(result.labels, d2.argmin(axis=1))

    def test_more_clusters_lower_inertia(self, blobs):
        feats, _ = blobs
        i3 = kmeans(feats, k=3, seed=0).inertia
        i6 = kmeans(feats, k=6, seed=0).inertia
        assert i6 < i3

    def test_k_equals_n_zero_inertia(self):
        rng = np.random.default_rng(2)
        feats = rng.normal(size=(8, 3))
        result = kmeans(feats, k=8, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)
        assert np.unique(result.labels).size == 8

    def test_k_one(self, blobs):
        feats, _ = blobs
        result = kmeans(feats, k=1, seed=0)
        assert (result.labels == 0).all()
        np.testing.assert_allclose(result.centroids[0], feats.mean(axis=0))

    def test_deterministic(self, blobs):
        feats, _ = blobs
        a = kmeans(feats, k=3, seed=9)
        b = kmeans(feats, k=3, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_validation(self, blobs):
        feats, _ = blobs
        with pytest.raises(ValueError):
            kmeans(feats, k=0)
        with pytest.raises(ValueError):
            kmeans(feats, k=1000)
        with pytest.raises(ValueError, match="NaN"):
            kmeans(np.array([[np.nan, 1.0], [0.0, 1.0]]), k=1)

    def test_duplicate_points(self):
        feats = np.tile([[1.0, 1.0]], (10, 1))
        result = kmeans(feats, k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)


class TestAgglomerative:
    def test_recovers_blobs(self, blobs):
        feats, truth = blobs
        dist = euclidean_distance_matrix(feats)
        labels = agglomerative(dist, k=3)
        assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_linkages_produce_k_clusters(self, blobs, linkage):
        feats, _ = blobs
        dist = euclidean_distance_matrix(feats)
        labels = agglomerative(dist, k=4, linkage=linkage)
        assert np.unique(labels).size == 4

    def test_k_equals_n(self, blobs):
        feats, _ = blobs
        dist = euclidean_distance_matrix(feats[:10])
        labels = agglomerative(dist, k=10)
        assert np.unique(labels).size == 10

    def test_k_one(self, blobs):
        feats, _ = blobs
        dist = euclidean_distance_matrix(feats[:12])
        assert (agglomerative(dist, k=1) == 0).all()

    def test_validation(self, blobs):
        feats, _ = blobs
        dist = euclidean_distance_matrix(feats)
        with pytest.raises(ValueError):
            agglomerative(dist, k=0)
        with pytest.raises(ValueError, match="linkage"):
            agglomerative(dist, k=2, linkage="ward")


class TestMetrics:
    def test_silhouette_perfect_vs_random(self, blobs):
        feats, truth = blobs
        dist = euclidean_distance_matrix(feats)
        rng = np.random.default_rng(0)
        good = silhouette(dist, truth)
        bad = silhouette(dist, rng.integers(0, 3, truth.size))
        assert good > 0.8
        assert bad < 0.3

    def test_silhouette_needs_two_clusters(self, blobs):
        feats, truth = blobs
        dist = euclidean_distance_matrix(feats)
        with pytest.raises(ValueError):
            silhouette(dist, np.zeros_like(truth))

    def test_silhouette_singleton_contributes_zero(self):
        dist = euclidean_distance_matrix(np.array([[0.0], [1.0], [2.0]]))
        labels = np.array([0, 0, 1])
        value = silhouette(dist, labels)
        assert -1.0 <= value <= 1.0

    def test_davies_bouldin_prefers_truth(self, blobs):
        feats, truth = blobs
        rng = np.random.default_rng(1)
        assert davies_bouldin(feats, truth) < davies_bouldin(
            feats, rng.integers(0, 3, truth.size)
        )

    def test_purity_bounds(self, blobs):
        _, truth = blobs
        assert purity(truth, truth) == 1.0
        assert purity(truth, np.zeros_like(truth)) == pytest.approx(1 / 3)

    def test_ari_properties(self, blobs):
        _, truth = blobs
        assert adjusted_rand_index(truth, truth) == pytest.approx(1.0)
        # Permuting label names does not change ARI.
        renamed = (truth + 1) % 3
        assert adjusted_rand_index(truth, renamed) == pytest.approx(1.0)
        rng = np.random.default_rng(3)
        random_ari = adjusted_rand_index(truth, rng.integers(0, 3, truth.size))
        assert abs(random_ari) < 0.15

    def test_nmi_properties(self, blobs):
        _, truth = blobs
        assert normalized_mutual_information(truth, truth) == pytest.approx(1.0)
        rng = np.random.default_rng(4)
        assert normalized_mutual_information(
            truth, rng.integers(0, 3, truth.size)
        ) < 0.2

    def test_string_labels_supported(self):
        truth = np.array(["a", "a", "b", "b"])
        pred = np.array([0, 0, 1, 1])
        assert purity(truth, pred) == 1.0
        assert adjusted_rand_index(truth, pred) == 1.0

    def test_length_mismatch(self, blobs):
        _, truth = blobs
        with pytest.raises(ValueError):
            purity(truth, truth[:-1])
