"""Mini-batch k-means: determinism, quality vs Lloyd's, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans, minibatch_kmeans


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=10.0, size=(4, 6))
    labels = rng.integers(0, 4, size=800)
    return centers[labels] + rng.normal(scale=0.6, size=(800, 6)), labels


class TestMiniBatchKMeans:
    def test_deterministic_per_seed(self, blobs):
        feats, _ = blobs
        a = minibatch_kmeans(feats, k=4, seed=3)
        b = minibatch_kmeans(feats, k=4, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        assert a.inertia == b.inertia

    def test_inertia_close_to_lloyd(self, blobs):
        feats, _ = blobs
        exact = kmeans(feats, k=4, seed=0)
        fast = minibatch_kmeans(feats, k=4, seed=0, batch_size=256)
        # The Sculley trade: a few percent of inertia for O(batch) steps.
        assert fast.inertia <= exact.inertia * 1.10

    def test_recovers_generative_clusters(self, blobs):
        feats, truth = blobs
        result = minibatch_kmeans(feats, k=4, seed=0)
        # Each found cluster should be label-pure wrt the generator.
        for c in range(4):
            members = truth[result.labels == c]
            assert members.size > 0
            purity = (members == np.bincount(members).argmax()).mean()
            assert purity > 0.95

    def test_trace_is_estimated_inertia_exact_is_returned(self, blobs):
        feats, _ = blobs
        result = minibatch_kmeans(feats, k=4, seed=0, batch_size=128)
        assert len(result.inertia_trace) == result.n_iter
        # Batch-scaled estimates hover around the exact value.
        assert result.inertia_trace[-1] == pytest.approx(
            result.inertia, rel=0.5
        )

    def test_batch_larger_than_n_is_clamped(self, blobs):
        feats, _ = blobs
        result = minibatch_kmeans(feats[:50], k=3, batch_size=10_000, seed=0)
        assert result.labels.shape == (50,)

    def test_validation(self, blobs):
        feats, _ = blobs
        with pytest.raises(ValueError, match="batch_size"):
            minibatch_kmeans(feats, k=3, batch_size=0)
        with pytest.raises(ValueError, match="k must be"):
            minibatch_kmeans(feats, k=0)
        with pytest.raises(ValueError, match="NaN"):
            minibatch_kmeans(np.full((10, 3), np.nan), k=2)
