"""Tests for canonical templates and selection operators."""

import numpy as np
import pytest

from repro.core.patterns.canonical import (
    CANONICAL_PATTERNS,
    PATTERN_BY_ARCHETYPE,
    day_correlation,
    month_correlation,
)
from repro.core.patterns.selection import (
    KnnSelection,
    LassoSelection,
    RadiusSelection,
    RectSelection,
    SelectionSession,
)
from repro.data.meter import CustomerType


class TestCanonical:
    def test_six_patterns_defined(self):
        assert len(CANONICAL_PATTERNS) == 6
        assert set(PATTERN_BY_ARCHETYPE) == set(CustomerType)

    def test_templates_are_unit_normalised(self):
        for pattern in CANONICAL_PATTERNS:
            for template in (pattern.day_template, pattern.month_template):
                if template is None:
                    continue
                assert template.mean() == pytest.approx(0.0, abs=1e-12)
                assert np.linalg.norm(template) == pytest.approx(1.0)

    def test_level_bands_are_quantiles(self):
        for pattern in CANONICAL_PATTERNS:
            low, high = pattern.level_band
            assert 0.0 <= low <= high <= 1.0

    def test_day_correlation_self_match(self):
        bimodal = PATTERN_BY_ARCHETYPE[CustomerType.BIMODAL]
        assert day_correlation(bimodal.day_template, bimodal) == pytest.approx(1.0)

    def test_day_correlation_none_template(self):
        idle = PATTERN_BY_ARCHETYPE[CustomerType.IDLE]
        assert day_correlation(np.ones(24), idle) == 0.0

    def test_day_correlation_wrong_shape(self):
        bimodal = PATTERN_BY_ARCHETYPE[CustomerType.BIMODAL]
        with pytest.raises(ValueError, match="24"):
            day_correlation(np.ones(12), bimodal)

    def test_early_bird_template_beats_evening_profile(self):
        early = PATTERN_BY_ARCHETYPE[CustomerType.EARLY_BIRD]
        morning_profile = np.exp(-0.5 * ((np.arange(24) - 6) / 1.2) ** 2)
        evening_profile = np.exp(-0.5 * ((np.arange(24) - 20) / 1.2) ** 2)
        assert day_correlation(morning_profile, early) > day_correlation(
            evening_profile, early
        )

    def test_month_correlation_partial_year(self):
        bimodal = PATTERN_BY_ARCHETYPE[CustomerType.BIMODAL]
        # First 6 months of the template correlate with themselves.
        partial = bimodal.month_template[:6]
        assert month_correlation(partial, bimodal) > 0.99

    def test_month_correlation_degenerate(self):
        bimodal = PATTERN_BY_ARCHETYPE[CustomerType.BIMODAL]
        assert month_correlation(np.ones(2), bimodal) == 0.0
        assert month_correlation(np.full(12, 5.0), bimodal) == 0.0

    def test_interpretations_nonempty(self):
        for pattern in CANONICAL_PATTERNS:
            assert pattern.title and pattern.interpretation


@pytest.fixture()
def embedding():
    """A 5x5 grid of points (x = col, y = row)."""
    xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
    return np.column_stack([xs.ravel(), ys.ravel()])


class TestSelectors:
    def test_rect(self, embedding):
        idx = RectSelection(1.0, 1.0, 2.0, 3.0).apply(embedding)
        # Columns 1-2, rows 1-3 => 2 * 3 points.
        assert idx.size == 6

    def test_rect_validation(self):
        with pytest.raises(ValueError):
            RectSelection(2.0, 0.0, 1.0, 1.0)

    def test_radius(self, embedding):
        idx = RadiusSelection(2.0, 2.0, 1.0).apply(embedding)
        assert idx.size == 5  # centre + 4 orthogonal neighbours

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            RadiusSelection(0, 0, -1.0)

    def test_knn(self, embedding):
        idx = KnnSelection(0.1, 0.1, 3).apply(embedding)
        assert idx.size == 3
        assert 0 in idx  # the origin point is nearest

    def test_knn_caps_at_n(self, embedding):
        assert KnnSelection(0, 0, 99).apply(embedding).size == 25

    def test_lasso(self, embedding):
        lasso = LassoSelection([(-0.5, -0.5), (1.5, -0.5), (1.5, 1.5), (-0.5, 1.5)])
        idx = lasso.apply(embedding)
        assert idx.size == 4  # the 2x2 corner block

    def test_selectors_validate_embedding_shape(self):
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            RectSelection(0, 0, 1, 1).apply(np.ones((3, 3)))


class TestSelectionSession:
    def test_named_selection_lifecycle(self, embedding):
        session = SelectionSession(embedding=embedding)
        idx = session.select("corner", RectSelection(0, 0, 1, 1))
        assert session.get("corner").tolist() == idx.tolist()
        session.drop("corner")
        with pytest.raises(KeyError):
            session.get("corner")

    def test_empty_name_rejected(self, embedding):
        session = SelectionSession(embedding=embedding)
        with pytest.raises(ValueError):
            session.select("", RectSelection(0, 0, 1, 1))

    def test_combine_union_intersection_difference(self, embedding):
        session = SelectionSession(embedding=embedding)
        session.select("a", RectSelection(0, 0, 1, 4))  # cols 0-1: 10 pts
        session.select("b", RectSelection(1, 0, 2, 4))  # cols 1-2: 10 pts
        assert session.combine("u", "a", "b", "union").size == 15
        assert session.combine("i", "a", "b", "intersection").size == 5
        assert session.combine("d", "a", "b", "difference").size == 5

    def test_combine_unknown_how(self, embedding):
        session = SelectionSession(embedding=embedding)
        session.select("a", RectSelection(0, 0, 1, 1))
        session.select("b", RectSelection(0, 0, 1, 1))
        with pytest.raises(ValueError, match="how"):
            session.combine("x", "a", "b", "xor")

    def test_coverage(self, embedding):
        session = SelectionSession(embedding=embedding)
        assert session.coverage() == 0.0
        session.select("all", RectSelection(-1, -1, 5, 5))
        assert session.coverage() == 1.0

    def test_overlap_matrix(self, embedding):
        session = SelectionSession(embedding=embedding)
        session.select("a", RectSelection(0, 0, 1, 4))
        session.select("b", RectSelection(1, 0, 2, 4))
        names, overlap = session.overlap_matrix()
        assert names == ["a", "b"]
        np.testing.assert_allclose(np.diag(overlap), 1.0)
        assert overlap[0, 1] == pytest.approx(5 / 15)
