"""Tests for automatic selection proposals (DBSCAN)."""

import numpy as np
import pytest

from repro.core.patterns.autodiscover import (
    NOISE,
    auto_epsilon,
    dbscan,
    propose_selections,
)


@pytest.fixture(scope="module")
def blobs_with_noise():
    rng = np.random.default_rng(4)
    a = rng.normal([0.0, 0.0], 0.3, size=(40, 2))
    b = rng.normal([10.0, 0.0], 0.3, size=(30, 2))
    noise = rng.uniform([-5, -20], [15, -10], size=(6, 2))
    return np.vstack([a, b, noise])


class TestDbscan:
    def test_finds_two_clusters_and_noise(self, blobs_with_noise):
        labels = dbscan(blobs_with_noise, epsilon=1.0, min_points=5)
        clusters = set(labels.tolist()) - {NOISE}
        assert len(clusters) == 2
        # Every blob member shares its blob's label.
        assert len(set(labels[:40].tolist())) == 1
        assert len(set(labels[40:70].tolist())) == 1
        assert (labels[70:] == NOISE).all()

    def test_auto_epsilon_recovers_structure(self, blobs_with_noise):
        labels = dbscan(blobs_with_noise, min_points=5)
        clusters = set(labels.tolist()) - {NOISE}
        assert len(clusters) == 2

    def test_tiny_epsilon_all_noise(self, blobs_with_noise):
        labels = dbscan(blobs_with_noise, epsilon=1e-9, min_points=5)
        assert (labels == NOISE).all()

    def test_huge_epsilon_one_cluster(self, blobs_with_noise):
        labels = dbscan(blobs_with_noise, epsilon=1e3, min_points=5)
        assert set(labels.tolist()) == {0}

    def test_border_points_join_a_cluster(self):
        # A chain: dense core plus one border point within epsilon of the
        # edge; the border point joins despite not being core itself.
        core = np.column_stack([np.linspace(0, 1, 10), np.zeros(10)])
        border = np.array([[1.4, 0.0]])
        labels = dbscan(np.vstack([core, border]), epsilon=0.5, min_points=4)
        assert labels[-1] == labels[0]

    def test_validation(self, blobs_with_noise):
        with pytest.raises(ValueError):
            dbscan(blobs_with_noise, epsilon=0.0)
        with pytest.raises(ValueError):
            dbscan(blobs_with_noise, min_points=0)
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            dbscan(np.ones((5, 3)))
        with pytest.raises(ValueError, match="NaN"):
            dbscan(np.array([[0.0, np.nan], [1.0, 1.0]]))

    def test_auto_epsilon_needs_enough_points(self):
        with pytest.raises(ValueError, match="more than"):
            auto_epsilon(np.zeros((3, 2)), min_points=5)


class TestProposals:
    def test_ordered_by_size(self, blobs_with_noise):
        proposals = propose_selections(blobs_with_noise, epsilon=1.0)
        assert len(proposals) == 2
        assert proposals[0].size >= proposals[1].size
        assert proposals[0].size == 40

    def test_min_size_filter(self, blobs_with_noise):
        proposals = propose_selections(
            blobs_with_noise, epsilon=1.0, min_size=35
        )
        assert len(proposals) == 1

    def test_centers_inside_their_blob(self, blobs_with_noise):
        proposals = propose_selections(blobs_with_noise, epsilon=1.0)
        big = proposals[0]
        assert abs(big.center[0] - 0.0) < 0.5
        assert abs(big.center[1] - 0.0) < 0.5

    def test_validation(self, blobs_with_noise):
        with pytest.raises(ValueError):
            propose_selections(blobs_with_noise, min_size=0)

    def test_proposals_label_cleanly_on_city(self, year_session, year_city):
        """End-to-end: every auto-proposal is coherent in *shape* terms.

        The Pearson metric the paper chooses is level-blind, so the flat
        archetypes (constant-high / idle / energy-saving / suspicious) can
        legitimately share a cluster; shape-distinct archetypes (bimodal,
        early-bird) must come out essentially pure.
        """
        info = year_session.embed()
        proposals = propose_selections(info.coords, min_points=4, min_size=8)
        assert proposals, "expected at least one dense cluster"
        truth = year_city.archetype_labels()
        flat_family = {"constant_high", "idle", "energy_saving", "suspicious"}
        pure = 0
        for proposal in proposals:
            members = set(truth[proposal.indices].tolist())
            values, counts = np.unique(truth[proposal.indices], return_counts=True)
            purity = counts.max() / proposal.size
            assert purity >= 0.9 or members <= flat_family, members
            if purity >= 0.9:
                pure += 1
        # The two shape-distinct archetypes produce pure proposals.
        assert pure >= 2
