"""Tests for template labelling and transition walks."""

import numpy as np
import pytest

from repro.core.patterns.labeling import label_customers, label_selection
from repro.core.patterns.transition import random_walk_baseline, transition_walk
from repro.core.reduction.tsne import tsne
from repro.data.meter import CustomerType
from repro.preprocess.cleaning import remove_anomalies
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.imputation import impute


@pytest.fixture(scope="module")
def labeled_year(year_city):
    """Preprocessed year-long data plus truth and predictions."""
    cleaned, _ = remove_anomalies(year_city.raw)
    filled = impute(cleaned)
    truth = year_city.archetype_labels()
    predictions = label_customers(filled)
    return filled, truth, predictions


class TestLabelCustomers:
    def test_row_alignment_and_scores(self, labeled_year):
        filled, truth, predictions = labeled_year
        assert len(predictions) == filled.n_customers
        for label in predictions:
            assert 0.0 <= label.score <= 1.0
            assert set(label.scores) == set(CustomerType)

    def test_recovery_accuracy(self, labeled_year):
        """Template matching must recover most ground-truth archetypes —
        the quantified version of 'the five patterns are identifiable'."""
        _, truth, predictions = labeled_year
        predicted = np.array([p.archetype.value for p in predictions])
        accuracy = float((predicted == truth).mean())
        assert accuracy > 0.8

    def test_idle_never_confused_with_constant_high(self, labeled_year):
        _, truth, predictions = labeled_year
        predicted = np.array([p.archetype.value for p in predictions])
        idle_rows = truth == "idle"
        assert not (predicted[idle_rows] == "constant_high").any()

    def test_ranked_orders_scores(self, labeled_year):
        _, _, predictions = labeled_year
        ranked = predictions[0].ranked()
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        assert ranked[0][0] == predictions[0].archetype

    def test_empty_set_rejected(self, labeled_year):
        filled, _, _ = labeled_year
        from repro.data.timeseries import SeriesSet

        with pytest.raises(ValueError):
            label_customers(
                SeriesSet([], 0, np.empty((0, filled.n_steps)))
            )


class TestLabelSelection:
    def test_pure_selection_scores_high(self, labeled_year):
        filled, truth, _ = labeled_year
        rows = np.flatnonzero(truth == "constant_high")[:10]
        label = label_selection(filled, rows)
        assert label.archetype == CustomerType.CONSTANT_HIGH
        assert label.score > 0.6  # winning share of the member vote

    def test_mixed_selection_scores_lower(self, labeled_year):
        filled, truth, _ = labeled_year
        a = np.flatnonzero(truth == "constant_high")[:5]
        b = np.flatnonzero(truth == "idle")[:5]
        label = label_selection(filled, np.concatenate([a, b]))
        assert label.score <= 0.8  # the vote is split

    def test_empty_selection_rejected(self, labeled_year):
        filled, _, _ = labeled_year
        with pytest.raises(ValueError):
            label_selection(filled, np.array([], dtype=np.int64))


class TestTransitionWalk:
    @pytest.fixture(scope="class")
    def walk_setup(self, small_city):
        cleaned, _ = remove_anomalies(small_city.raw)
        filled = impute(cleaned)
        feats = extract_features(filled, FeatureKind.MEAN_WEEK)
        emb = tsne(feats, perplexity=15, n_iter=300, seed=0).embedding
        return emb, filled

    def test_walk_visits_unique_points(self, walk_setup):
        emb, filled = walk_setup
        walk = transition_walk(emb, filled, start=0)
        assert len(set(walk.order.tolist())) == emb.shape[0]
        assert walk.order[0] == 0

    def test_walk_smoother_than_random(self, walk_setup):
        """The S1 claim: hopping between close embedding points gives
        gradual pattern transitions."""
        emb, filled = walk_setup
        walk = transition_walk(emb, filled, start=0)
        baseline = random_walk_baseline(filled, seed=1)
        assert walk.mean_step_similarity > baseline.mean_step_similarity + 0.1

    def test_similarity_decays_with_lag(self, walk_setup):
        emb, filled = walk_setup
        walk = transition_walk(emb, filled, start=0)
        lags = walk.similarity_by_lag(8)
        assert lags[0] > lags[-1]

    def test_n_steps_limits_walk(self, walk_setup):
        emb, filled = walk_setup
        walk = transition_walk(emb, filled, start=3, n_steps=10)
        assert walk.order.size == 10
        assert walk.step_similarity.size == 9

    def test_validation(self, walk_setup):
        emb, filled = walk_setup
        with pytest.raises(ValueError, match="start"):
            transition_walk(emb, filled, start=10**6)
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            transition_walk(emb[:, :1], filled)
