"""Tests for segment statistics and the demand-response report."""

import numpy as np
import pytest

from repro.core.patterns.segmentation import (
    SegmentationReport,
    build_report,
    segment_statistics,
)
from repro.data.timeseries import SeriesSet


def _fleet():
    """Three synthetic customers with known statistics.

    - rows 0-1: identical peaky profiles peaking at hour 2;
    - row 2: flat profile.
    """
    peaky = np.array([1.0, 1.0, 4.0, 1.0])
    flat = np.array([2.0, 2.0, 2.0, 2.0])
    return SeriesSet([0, 1, 2], 0, np.vstack([peaky, peaky, flat]))


class TestSegmentStatistics:
    def test_known_values_peaky_segment(self):
        fleet = _fleet()
        stats = segment_statistics(fleet, np.array([0, 1]), name="peaky")
        assert stats.n_customers == 2
        assert stats.peak_kw == 8.0
        assert stats.mean_kw == pytest.approx((2 + 2 + 8 + 2) / 4)
        assert stats.load_factor == pytest.approx(3.5 / 8.0)
        # Identical profiles peak together: coincidence factor 1.
        assert stats.coincidence_factor == pytest.approx(1.0)
        assert stats.peak_hour_of_day == 2
        # System peaks at hour 2 (total 10); the segment contributes 8.
        assert stats.demand_at_system_peak_kw == 8.0
        assert stats.share_of_system_peak == pytest.approx(0.8)

    def test_flat_segment(self):
        fleet = _fleet()
        stats = segment_statistics(fleet, np.array([2]), name="flat")
        assert stats.load_factor == pytest.approx(1.0)
        assert stats.dr_priority == pytest.approx(0.0)

    def test_diversity_lowers_coincidence(self):
        a = np.array([4.0, 1.0, 1.0, 1.0])
        b = np.array([1.0, 1.0, 1.0, 4.0])
        fleet = SeriesSet([0, 1], 0, np.vstack([a, b]))
        stats = segment_statistics(fleet, np.array([0, 1]))
        assert stats.coincidence_factor == pytest.approx(5.0 / 8.0)

    def test_peak_hour_respects_start_hour(self):
        peaky = np.array([1.0, 5.0, 1.0])
        fleet = SeriesSet([0], 22, peaky[None, :])
        stats = segment_statistics(fleet, np.array([0]))
        assert stats.peak_hour_of_day == 23

    def test_validation(self):
        fleet = _fleet()
        with pytest.raises(ValueError, match="empty"):
            segment_statistics(fleet, np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="range"):
            segment_statistics(fleet, np.array([99]))

    def test_nan_tolerance(self):
        matrix = np.array([[1.0, np.nan, 3.0]])
        fleet = SeriesSet([0], 0, matrix)
        stats = segment_statistics(fleet, np.array([0]))
        assert stats.total_kwh == 4.0
        assert np.isfinite(stats.peak_kw)


class TestReport:
    def test_build_report_shapes(self):
        fleet = _fleet()
        report = build_report(
            fleet, {"peaky": np.array([0, 1]), "flat": np.array([2])}
        )
        assert report.system_peak_kw == 10.0
        assert report.system_peak_hour_of_day == 2
        rows = report.rows()
        assert len(rows) == 3  # header + 2 segments
        assert "peaky" in rows[1] or "peaky" in rows[2]

    def test_targeting_order_prefers_peaky_contributors(self):
        fleet = _fleet()
        report = build_report(
            fleet, {"peaky": np.array([0, 1]), "flat": np.array([2])}
        )
        order = report.targeting_order()
        assert order[0].name == "peaky"

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            build_report(_fleet(), {})

    def test_on_city_archetypes(self, small_city, small_session):
        truth = small_city.archetype_labels()
        segments = {
            name: np.flatnonzero(truth == name)
            for name in np.unique(truth)
        }
        report = build_report(small_session.series, segments)
        assert len(report.segments) == len(segments)
        # Shares at the system peak cannot exceed 1 in total.
        assert sum(s.share_of_system_peak for s in report.segments) == pytest.approx(
            1.0, abs=1e-9
        )
        # Constant-high premises have the flattest load.
        by_name = {s.name: s for s in report.segments}
        assert by_name["constant_high"].load_factor > by_name["bimodal"].load_factor
