"""Exposition tests: exemplars and per-shard labels under the strict parser.

Three claims from the observability-v2 story:

- histogram buckets carry OpenMetrics exemplar suffixes linking latency
  samples to trace ids, and the suffix parses under the strict
  mini-parser (plain 0.0.4 scrapers see it as a comment);
- per-shard labelled metrics (``db_query_seconds{shard="..."}``) render
  with properly escaped label values;
- shard labels do not explode series cardinality: at 8 shards the series
  count stays bounded by shards x ops.
"""

from __future__ import annotations

from repro import obs
from repro.data.timeseries import HourWindow
from repro.obs import MetricsRegistry, TraceStore
from repro.obs.prometheus import render_prometheus
from repro.db.sharding import ShardedEnergyDatabase

from .prom import parse_prometheus


class TestExemplarExposition:
    def test_bucket_exemplar_renders_and_parses(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.histogram("req_seconds", route="/r").observe(
            0.007, trace_id="abcd1234abcd1234"
        )
        text = render_prometheus(registry.snapshot())
        types, samples = parse_prometheus(text)
        assert types["req_seconds"] == "histogram"
        with_exemplar = [
            s for s in samples
            if s.name == "req_seconds_bucket" and s.exemplar is not None
        ]
        assert with_exemplar, text
        exemplar = with_exemplar[0].exemplar
        assert exemplar.labels == {"trace_id": "abcd1234abcd1234"}
        assert exemplar.value == 0.007

    def test_exemplar_lands_on_smallest_covering_bucket(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(
            0.5, trace_id="t1"
        )
        _, samples = parse_prometheus(render_prometheus(registry.snapshot()))
        by_le = {
            s.labels["le"]: s.exemplar
            for s in samples
            if s.name == "lat_bucket"
        }
        assert by_le["0.1"] is None
        assert by_le["1"] is not None and by_le["1"].labels["trace_id"] == "t1"
        # Cumulative buckets above keep their own (absent) exemplar.
        assert by_le["+Inf"] is None

    def test_overflow_observation_exemplar_on_inf_bucket(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.histogram("lat", buckets=(0.1,)).observe(9.0, trace_id="big")
        _, samples = parse_prometheus(render_prometheus(registry.snapshot()))
        inf = next(
            s for s in samples
            if s.name == "lat_bucket" and s.labels["le"] == "+Inf"
        )
        assert inf.exemplar is not None
        assert inf.exemplar.labels["trace_id"] == "big"

    def test_no_exemplar_without_trace(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.histogram("plain").observe(0.01)
        text = render_prometheus(registry.snapshot())
        assert " # " not in text
        parse_prometheus(text)  # still strictly valid

    def test_exemplar_escapes_label_value(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.histogram("esc").observe(0.01, trace_id='we"ird\\id')
        text = render_prometheus(registry.snapshot())
        _, samples = parse_prometheus(text)
        exemplars = [s.exemplar for s in samples if s.exemplar is not None]
        assert exemplars[0].labels["trace_id"] == 'we"ird\\id'


class TestExemplarProvider:
    def test_open_span_supplies_trace_id(self, fresh_obs):
        obs.configure(trace_store=TraceStore())
        registry = obs.get_registry()
        with obs.span("work") as rec:
            registry.histogram("kernel_runtime_seconds", kernel="kde").observe(
                0.02
            )
        snap = registry.snapshot()
        hist = next(
            h for h in snap["histograms"]
            if h["name"] == "kernel_runtime_seconds"
        )
        exemplars = [
            e["exemplar"] for e in hist["buckets"] if e.get("exemplar")
        ]
        assert exemplars
        assert exemplars[0]["trace_id"] == rec.trace_id

    def test_no_provider_trace_outside_span(self, fresh_obs):
        obs.configure(trace_store=TraceStore())
        registry = obs.get_registry()
        registry.histogram("idle_seconds").observe(0.02)
        snap = registry.snapshot()
        hist = next(
            h for h in snap["histograms"] if h["name"] == "idle_seconds"
        )
        assert all(not e.get("exemplar") for e in hist["buckets"])


class TestShardLabelExposition:
    def test_shard_labels_parse_and_stay_bounded(self, small_city):
        registry = MetricsRegistry()
        db = ShardedEnergyDatabase(
            small_city.customers,
            small_city.raw,
            n_shards=8,
            metrics=registry,
            parallel=False,
        )
        for _ in range(3):
            db.demand(HourWindow(8, 12))
        text = render_prometheus(registry.snapshot())
        types, samples = parse_prometheus(text)
        assert types["db_query_seconds"] == "histogram"
        shard_series = {
            (s.labels.get("op"), s.labels["shard"])
            for s in samples
            if s.name == "db_query_seconds_count" and "shard" in s.labels
        }
        assert shard_series  # per-shard timings are exposed
        shards_seen = {shard for _, shard in shard_series}
        assert shards_seen <= {str(i) for i in range(8)}
        # Cardinality is bounded by shards x ops — no per-request labels.
        ops_seen = {op for op, _ in shard_series}
        assert len(shard_series) <= 8 * len(ops_seen)

    def test_shard_label_values_escaped(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter("db_query_total", shard='0"\\\n').inc()
        text = render_prometheus(registry.snapshot())
        _, samples = parse_prometheus(text)
        assert samples[0].labels["shard"] == '0"\\\n'
