"""Unit tests for the metrics registry: arithmetic, buckets, threads."""

import threading

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", route="/a").inc()
        reg.counter("hits", route="/b").inc(3)
        assert reg.counter("hits", route="/a").value == 1
        assert reg.counter("hits", route="/b").value == 3

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        # Label order must not matter.
        a = reg.counter("x", p=1, q=2)
        b = reg.counter("x", q=2, p=1)
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 4.0


class TestHistogramBuckets:
    def test_value_on_edge_falls_in_that_bucket(self):
        """``le`` semantics: an observation equal to a bound counts there."""
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)  # exactly on the first edge
        hist.observe(2.0)  # exactly on the second
        assert hist.bucket_counts == [1, 1, 0, 0]

    def test_below_first_and_above_last(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(-10.0)
        hist.observe(0.5)
        hist.observe(99.0)  # overflow bucket
        assert hist.bucket_counts == [2, 0, 1]

    def test_counts_and_sum(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        for v in (0.25, 0.5, 3.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == pytest.approx(3.75)
        assert sum(hist.bucket_counts) == hist.count

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").observe(float("nan"))

    def test_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("empty", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("unsorted", buckets=(2.0, 1.0))

    def test_redeclaring_with_other_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already declared"):
            reg.histogram("h", buckets=(1.0, 3.0))
        # Same buckets is fine and returns the same histogram.
        assert reg.histogram("h", buckets=(1.0, 2.0)) is reg.histogram(
            "h", buckets=(1.0, 2.0)
        )

    def test_quantile_estimates_bucket_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) == 1.0  # lowest non-empty bucket's bound
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_with_no_observations(self):
        assert MetricsRegistry().histogram("h").quantile(0.9) == 0.0

    def test_overflow_quantile_saturates_at_last_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0


class TestTimer:
    def test_records_elapsed_seconds(self, fake_clock):
        reg = MetricsRegistry(clock=fake_clock)
        with reg.timer("op_seconds", op="embed"):
            fake_clock.advance(0.3)
        hist = reg.histogram("op_seconds", op="embed")
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.3)

    def test_records_even_when_block_raises(self, fake_clock):
        reg = MetricsRegistry(clock=fake_clock)
        with pytest.raises(RuntimeError):
            with reg.timer("op_seconds"):
                fake_clock.advance(0.1)
                raise RuntimeError("boom")
        assert reg.histogram("op_seconds").count == 1


class TestSnapshotAndReset:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", a=1).inc()
        reg.gauge("g").set(2.0)
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["c"]
        assert snap["counters"][0] == {
            "name": "c", "labels": {"a": "1"}, "value": 1.0,
        }
        assert snap["gauges"][0]["value"] == 2.0
        record = snap["histograms"][0]
        assert record["count"] == 1
        assert record["buckets"][-1]["le"] == "+Inf"
        assert sum(b["count"] for b in record["buckets"][:-1]) == 1
        assert {"p50", "p90", "p99"} <= set(record)

    def test_snapshot_is_json_safe(self):
        from repro.server import json_codec

        reg = MetricsRegistry()
        reg.histogram("h").observe(0.2)
        reg.counter("c").inc()
        parsed = json_codec.loads(json_codec.dumps(reg.snapshot()))
        assert parsed["histograms"][0]["count"] == 1

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_default_bucket_presets_are_valid(self):
        for preset in (DEFAULT_LATENCY_BUCKETS, COUNT_BUCKETS):
            assert all(b2 > b1 for b1, b2 in zip(preset, preset[1:]))


class TestConcurrency:
    def test_parallel_counter_increments_all_land(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits")
        n_threads, n_incs = 8, 2000

        def work():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs

    def test_parallel_histogram_observations_all_land(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.5,))
        n_threads, n_obs = 8, 1000

        def work():
            for i in range(n_obs):
                hist.observe(i % 2)  # alternates below/above the edge

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * n_obs
        assert sum(hist.bucket_counts) == hist.count

    def test_parallel_get_or_create_yields_one_instrument(self):
        reg = MetricsRegistry()
        seen = []

        def work():
            seen.append(reg.counter("shared", k="v"))

        threads = [threading.Thread(target=work) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
