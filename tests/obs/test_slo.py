"""Unit tests for the SLO engine: specs, burn-rate math, edge alerts."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import DEFAULT_BURN_RULES, SloEngine, SloSpec, default_slos
from repro.obs.timewindow import TimeWindowStore

from .conftest import FakeClock


class RecordingDispatcher:
    def __init__(self):
        self.alerts = []

    def dispatch(self, alert):
        self.alerts.append(alert)


def make_engine(clock, **kwargs):
    """Engine over a fake-clock store with 10 s windows, 1 h retention."""
    kwargs.setdefault(
        "store",
        TimeWindowStore(
            width_seconds=10.0, n_windows=360, clock=clock, max_samples=1
        ),
    )
    kwargs.setdefault("registry", MetricsRegistry(clock=clock))
    kwargs.setdefault("clock", clock)
    return SloEngine(**kwargs)


class TestSloSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", kind="throughput", objective=0.9)

    def test_rejects_objective_out_of_range(self):
        for bad in (0.0, 1.0, 1.5, -0.1):
            with pytest.raises(ValueError, match="objective"):
                SloSpec(name="x", kind="availability", objective=bad)

    def test_latency_slo_requires_threshold(self):
        with pytest.raises(ValueError, match="latency_threshold"):
            SloSpec(name="x", kind="latency", objective=0.99)

    def test_matching_scopes(self):
        spec = SloSpec(
            name="x", kind="availability", objective=0.99,
            route="/api/demand", tenant="acme",
        )
        assert spec.matches("/api/demand", "acme")
        assert not spec.matches("/api/demand", "globex")
        assert not spec.matches("/api/health", "acme")
        unscoped = SloSpec(name="y", kind="availability", objective=0.99)
        assert unscoped.matches("/anything", None)

    def test_is_bad_semantics(self):
        avail = SloSpec(name="a", kind="availability", objective=0.999)
        assert avail.is_bad(10.0, error=False) is False
        assert avail.is_bad(0.001, error=True) is True
        lat = SloSpec(
            name="l", kind="latency", objective=0.99, latency_threshold=0.5
        )
        assert lat.is_bad(0.4, error=False) is False
        assert lat.is_bad(0.6, error=False) is True
        assert lat.is_bad(0.1, error=True) is True

    def test_budget(self):
        spec = SloSpec(name="a", kind="availability", objective=0.999)
        assert spec.budget == pytest.approx(0.001)

    def test_default_slos(self):
        specs = default_slos()
        assert [s.name for s in specs] == ["availability", "latency"]
        assert specs[1].latency_threshold == 0.5

    def test_exclude_route_prefixes(self):
        spec = SloSpec(
            name="x", kind="availability", objective=0.99,
            exclude_route_prefixes=("/api/profile", "/api/traces"),
        )
        assert spec.matches("/api/demand", None)
        assert not spec.matches("/api/profile", None)
        assert not spec.matches("/api/traces/<trace_id>", None)

    def test_default_slos_skip_observability_routes(self):
        # A deliberate 10-second /api/profile burst is not user pain and
        # must not page the latency SLO.
        for spec in default_slos():
            assert not spec.matches("/api/profile", None)
            assert not spec.matches("/api/traces/<trace_id>", None)
            assert not spec.matches("/api/metrics", None)
            assert spec.matches("/api/density", None)

    def test_duplicate_names_rejected(self):
        spec = SloSpec(name="dup", kind="availability", objective=0.99)
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine(specs=[spec, spec])


class TestBurnRateMath:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(name="avail", kind="availability", objective=0.99)
        engine = make_engine(clock, specs=[spec])
        # 5 bad out of 100 → bad_fraction 0.05, budget 0.01 → burn 5.0.
        for i in range(100):
            engine.observe("/r", None, 0.01, error=i < 5)
        (result,) = engine.evaluate()
        fast = result["rules"][0]
        assert fast["short_burn_rate"] == pytest.approx(5.0)
        assert fast["long_burn_rate"] == pytest.approx(5.0)
        assert not fast["firing"]  # 5.0 < 14.4

    def test_healthy_traffic_reports_full_budget(self):
        clock = FakeClock(1000.0)
        engine = make_engine(clock)
        for _ in range(50):
            engine.observe("/r", None, 0.01, error=False)
        results = engine.evaluate()
        assert all(r["error_budget_remaining"] == 1.0 for r in results)
        assert all(not r["firing"] for r in results)

    def test_no_data_means_no_firing(self):
        clock = FakeClock(1000.0)
        engine = make_engine(clock)
        results = engine.evaluate()
        assert all(not r["firing"] for r in results)
        assert all(r["error_budget_remaining"] == 1.0 for r in results)

    def test_latency_slo_counts_slow_requests(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(
            name="lat", kind="latency", objective=0.9, latency_threshold=0.1
        )
        engine = make_engine(clock, specs=[spec])
        for i in range(10):
            engine.observe("/r", None, 0.5 if i < 5 else 0.01, error=False)
        (result,) = engine.evaluate()
        # half the requests were slow: bad_fraction 0.5 / budget 0.1 = 5
        assert result["rules"][0]["short_burn_rate"] == pytest.approx(5.0)

    def test_windows_clamped_to_retention(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(name="avail", kind="availability", objective=0.9)
        # Store retains only 60 s; the default rules ask for hours.
        store = TimeWindowStore(
            width_seconds=10.0, n_windows=6, clock=clock, max_samples=1
        )
        engine = make_engine(clock, specs=[spec], store=store)
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        (result,) = engine.evaluate()
        # All observed traffic is bad: burn = 1/budget = 10 in every
        # window the store can actually answer for.
        fast = result["rules"][0]
        assert fast["short_burn_rate"] == pytest.approx(10.0)
        assert fast["long_burn_rate"] == pytest.approx(10.0)

    def test_old_errors_age_out_of_short_window(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(name="avail", kind="availability", objective=0.9)
        rules = (("fast", 30.0, 300.0, 5.0),)
        engine = make_engine(clock, specs=[spec], rules=rules)
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        clock.advance(120.0)  # errors leave the 30 s window
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=False)
        (result,) = engine.evaluate()
        fast = result["rules"][0]
        assert fast["short_burn_rate"] == pytest.approx(0.0)
        assert fast["long_burn_rate"] == pytest.approx(5.0)
        assert not fast["firing"]  # long window alone must not page


class TestAlerting:
    def _burst_engine(self, clock, dispatcher):
        spec = SloSpec(name="avail", kind="availability", objective=0.9)
        rules = (("fast", 30.0, 60.0, 2.0),)
        return make_engine(
            clock, specs=[spec], rules=rules, dispatcher=dispatcher
        )

    def test_alert_fires_once_on_edge(self):
        clock = FakeClock(1000.0)
        dispatcher = RecordingDispatcher()
        engine = self._burst_engine(clock, dispatcher)
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        engine.evaluate()
        engine.evaluate()  # still firing: no second alert
        assert len(dispatcher.alerts) == 1
        alert = dispatcher.alerts[0]
        assert alert["type"] == "slo_burn_rate"
        assert alert["slo"] == "avail"
        assert alert["rule"] == "fast"
        assert alert["burn_rate"] >= alert["threshold"]

    def test_alert_rearms_after_recovery(self):
        clock = FakeClock(1000.0)
        dispatcher = RecordingDispatcher()
        engine = self._burst_engine(clock, dispatcher)
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        engine.evaluate()
        clock.advance(120.0)  # both windows drain
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=False)
        engine.evaluate()  # recovered → rule re-arms
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        engine.evaluate()
        assert len(dispatcher.alerts) == 2

    def test_alert_counter_and_gauges(self):
        clock = FakeClock(1000.0)
        registry = MetricsRegistry(clock=clock)
        dispatcher = RecordingDispatcher()
        spec = SloSpec(name="avail", kind="availability", objective=0.9)
        rules = (("fast", 30.0, 60.0, 2.0),)
        engine = make_engine(
            clock, specs=[spec], rules=rules,
            dispatcher=dispatcher, registry=registry,
        )
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        engine.evaluate()
        snap = registry.snapshot()
        counters = {
            (c["name"], c["labels"].get("slo")): c["value"]
            for c in snap["counters"]
        }
        assert counters[("slo_alerts_total", "avail")] == 1
        gauges = {
            (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
            for g in snap["gauges"]
        }
        assert gauges[
            ("slo_burn_rate", (("rule", "fast"), ("slo", "avail")))
        ] == pytest.approx(10.0)
        assert gauges[
            ("slo_error_budget_remaining", (("slo", "avail"),))
        ] == 0.0

    def test_budget_depletes_with_errors(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(name="avail", kind="availability", objective=0.9)
        engine = make_engine(clock, specs=[spec])
        # 5% bad against a 10% budget → half the budget left.
        for i in range(100):
            engine.observe("/r", None, 0.01, error=i < 5)
        (result,) = engine.evaluate()
        assert result["error_budget_remaining"] == pytest.approx(0.5)

    def test_maybe_check_throttles(self):
        clock = FakeClock(1000.0)
        engine = make_engine(clock, check_interval=5.0)
        assert engine.maybe_check() is not None
        assert engine.maybe_check() is None
        clock.advance(5.0)
        assert engine.maybe_check() is not None

    def test_reset_clears_state(self):
        clock = FakeClock(1000.0)
        dispatcher = RecordingDispatcher()
        engine = self._burst_engine(clock, dispatcher)
        for _ in range(10):
            engine.observe("/r", None, 0.01, error=True)
        engine.evaluate()
        engine.reset()
        results = engine.evaluate()
        assert all(not r["firing"] for r in results)


class TestScoping:
    def test_tenant_scoped_slo_only_counts_its_tenant(self):
        clock = FakeClock(1000.0)
        spec = SloSpec(
            name="acme-avail", kind="availability", objective=0.9,
            tenant="acme",
        )
        engine = make_engine(clock, specs=[spec])
        for _ in range(10):
            engine.observe("/r", "globex", 0.01, error=True)
        (result,) = engine.evaluate()
        assert result["rules"][0]["short_burn_rate"] == 0.0
        for _ in range(10):
            engine.observe("/r", "acme", 0.01, error=True)
        (result,) = engine.evaluate()
        assert result["rules"][0]["short_burn_rate"] == pytest.approx(10.0)

    def test_default_rules_are_google_sre_pairs(self):
        assert DEFAULT_BURN_RULES == (
            ("fast", 300.0, 3600.0, 14.4),
            ("slow", 3600.0, 21600.0, 6.0),
        )
