"""Unit tests for spans: nesting, sinks, the disabled path, threads."""

import threading

import pytest

from repro import obs
from repro.obs import NullSink, RingBufferSink, SpanRecord, Tracer, span


class TestNesting:
    def test_children_attach_to_parent(self, fake_clock):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, clock=fake_clock)
        with tracer.span("root") as root:
            fake_clock.advance(1.0)
            with tracer.span("child_a"):
                fake_clock.advance(0.25)
            with tracer.span("child_b"):
                with tracer.span("grandchild"):
                    fake_clock.advance(0.5)
        roots = sink.records()
        assert len(roots) == 1  # only the root is exported
        assert roots[0] is root
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[1].children] == ["grandchild"]

    def test_durations_from_injected_clock(self, fake_clock):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, clock=fake_clock)
        with tracer.span("root"):
            fake_clock.advance(1.0)
            with tracer.span("child"):
                fake_clock.advance(0.25)
        root = sink.records()[0]
        assert root.duration == pytest.approx(1.25)
        assert root.children[0].duration == pytest.approx(0.25)

    def test_sibling_roots_export_separately(self, fake_clock):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, clock=fake_clock)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in sink.records()] == ["first", "second"]

    def test_exception_recorded_and_propagated(self, fake_clock):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, clock=fake_clock)
        with pytest.raises(KeyError):
            with tracer.span("root"):
                fake_clock.advance(0.1)
                raise KeyError("missing")
        root = sink.records()[0]
        assert root.error == "KeyError"
        assert root.duration == pytest.approx(0.1)

    def test_current_tracks_innermost(self):
        tracer = Tracer(sink=RingBufferSink())
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None


class TestDisabledPath:
    def test_null_sink_spans_yield_none_and_skip_clock(self, fake_clock):
        tracer = Tracer(clock=fake_clock)  # NullSink default
        assert not tracer.enabled
        with tracer.span("work", k=1) as record:
            assert record is None
        assert fake_clock.calls == 0  # zero-cost: the clock is never read

    def test_null_sink_exports_nothing(self):
        sink = NullSink()
        sink.export(SpanRecord(name="x", tags={}, start=0.0))  # no-op


class TestModuleLevelSpan:
    def test_uses_current_global_tracer(self, fresh_obs, fake_clock):
        sink = RingBufferSink()
        obs.configure(sink=sink, clock=fake_clock)
        with span("work", mode="test"):
            fake_clock.advance(0.5)
        roots = sink.records()
        assert [r.name for r in roots] == ["work"]
        assert roots[0].tags == {"mode": "test"}
        assert roots[0].duration == pytest.approx(0.5)

    def test_decorator_binds_tracer_at_call_time(self, fresh_obs, fake_clock):
        @span("decorated")
        def work():
            fake_clock.advance(0.125)
            return 42

        sink = RingBufferSink()
        # Configured AFTER decoration: the span must still be captured.
        obs.configure(sink=sink, clock=fake_clock)
        assert work() == 42
        assert [r.name for r in sink.records()] == ["decorated"]

    def test_disabled_by_default(self, fresh_obs):
        registry, tracer = fresh_obs
        assert not tracer.enabled
        with span("invisible") as record:
            assert record is None


class TestRingBufferSink:
    def test_capacity_eviction_and_drop_count(self):
        sink = RingBufferSink(capacity=2)
        for name in ("a", "b", "c"):
            sink.export(SpanRecord(name=name, tags={}, start=0.0))
        assert [r.name for r in sink.records()] == ["b", "c"]
        assert sink.n_exported == 3
        assert sink.n_dropped == 1
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestThreadIsolation:
    def test_spans_in_threads_do_not_nest_across_threads(self, fake_clock):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, clock=fake_clock)
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)  # both spans open simultaneously

        threads = [
            threading.Thread(target=work, args=(f"thread_{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = sink.records()
        assert sorted(r.name for r in roots) == ["thread_0", "thread_1"]
        assert all(not r.children for r in roots)


class TestSpanRecord:
    def test_walk_is_depth_first(self):
        root = SpanRecord(name="r", tags={}, start=0.0)
        a = SpanRecord(name="a", tags={}, start=0.0)
        b = SpanRecord(name="b", tags={}, start=0.0)
        a.children.append(b)
        root.children.append(a)
        assert [s.name for s in root.walk()] == ["r", "a", "b"]

    def test_to_record_and_format_tree(self):
        root = SpanRecord(
            name="r", tags={"k": "v"}, start=0.0, duration=0.002,
            error="ValueError",
        )
        root.children.append(
            SpanRecord(name="c", tags={}, start=0.0, duration=0.001)
        )
        record = root.to_record()
        assert record["name"] == "r"
        assert record["duration_ms"] == pytest.approx(2.0)
        assert record["error"] == "ValueError"
        assert record["children"][0]["name"] == "c"
        lines = root.format_tree()
        assert len(lines) == 2
        assert "k=v" in lines[0] and "!ValueError" in lines[0]
        assert lines[1].startswith("  ")
