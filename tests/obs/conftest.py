"""Shared observability test helpers."""

from __future__ import annotations

import pytest

from repro import obs


class FakeClock:
    """Deterministic monotonic clock: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture()
def fake_clock():
    return FakeClock()


@pytest.fixture()
def fresh_obs():
    """Swap in fresh process-wide defaults; restore the originals after."""
    previous_registry, previous_tracer = obs.get_registry(), obs.get_tracer()
    previous_logger = obs.get_logger()
    previous_window, previous_slow = obs.get_window_store(), obs.get_slow_log()
    yield obs.reset()
    obs.configure(
        registry=previous_registry,
        tracer=previous_tracer,
        logger=previous_logger,
        window_store=previous_window,
        slow_log=previous_slow,
    )
