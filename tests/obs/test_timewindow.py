"""Tests for the rolling time-window store and the slow-op log."""

from __future__ import annotations

import pytest

from repro.obs.logging import bind_request_id
from repro.obs.timewindow import SlowOpLog, TimeWindowStore


class TestTimeWindowStore:
    def test_validates_parameters(self, fake_clock):
        with pytest.raises(ValueError, match="width_seconds"):
            TimeWindowStore(width_seconds=0, clock=fake_clock)
        with pytest.raises(ValueError, match="n_windows"):
            TimeWindowStore(n_windows=0, clock=fake_clock)
        with pytest.raises(ValueError, match="max_samples"):
            TimeWindowStore(max_samples=0, clock=fake_clock)

    def test_counts_land_in_the_live_window(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=3, clock=fake_clock)
        store.record("req")
        store.record("req")
        fake_clock.advance(10)  # next window
        store.record("req")
        series = store.series("req")
        counts = [w["count"] for w in series["windows"]]
        assert counts == [0, 2, 1]
        assert series["window_seconds"] == 10.0
        assert [w["rate"] for w in series["windows"]] == [0.0, 0.2, 0.1]

    def test_series_has_fixed_time_axis(self, fake_clock):
        store = TimeWindowStore(width_seconds=5, n_windows=4, clock=fake_clock)
        fake_clock.advance(17)  # live window index 3 -> t = 15
        store.record("req")
        series = store.series("req")
        assert [w["t"] for w in series["windows"]] == [0.0, 5.0, 10.0, 15.0]
        assert [w["count"] for w in series["windows"]] == [0, 0, 0, 1]

    def test_old_windows_roll_off(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=2, clock=fake_clock)
        store.record("req")
        fake_clock.advance(10)
        store.record("req")
        assert [w["count"] for w in store.series("req")["windows"]] == [1, 1]
        fake_clock.advance(10)  # first window now beyond the horizon
        assert [w["count"] for w in store.series("req")["windows"]] == [1, 0]
        fake_clock.advance(10)
        assert [w["count"] for w in store.series("req")["windows"]] == [0, 0]

    def test_value_samples_produce_latency_stats(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=2, clock=fake_clock)
        for v in (0.1, 0.2, 0.3, 0.4):
            store.record("lat", v)
        (empty, live) = store.series("lat")["windows"]
        assert empty["mean"] is None and empty["p50"] is None
        assert live["count"] == 4
        assert live["mean"] == pytest.approx(0.25)
        assert live["max"] == pytest.approx(0.4)
        assert live["p50"] == pytest.approx(0.2)
        assert live["p99"] == pytest.approx(0.4)

    def test_count_only_windows_have_null_latency(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=1, clock=fake_clock)
        store.record("tick")
        (window,) = store.series("tick")["windows"]
        assert window["count"] == 1
        assert window["mean"] is None and window["max"] is None

    def test_labels_separate_series(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=1, clock=fake_clock)
        store.record("req", route="/api/a")
        store.record("req", route="/api/a")
        store.record("req", route="/api/b")
        a = store.series("req", route="/api/a")["windows"][0]
        b = store.series("req", route="/api/b")["windows"][0]
        assert (a["count"], b["count"]) == (2, 1)
        assert store.series("req", route="/api/a")["labels"] == {"route": "/api/a"}

    def test_keys_and_snapshot_cover_live_identities(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=2, clock=fake_clock)
        store.record("a")
        store.record("b", route="/x")
        assert store.keys() == [("a", {}), ("b", {"route": "/x"})]
        snapshot = store.snapshot()
        assert [s["name"] for s in snapshot] == ["a", "b"]
        fake_clock.advance(100)  # everything rolls off
        assert store.keys() == []
        assert store.snapshot() == []

    def test_sample_cap_keeps_counts_exact(self, fake_clock):
        store = TimeWindowStore(
            width_seconds=10, n_windows=1, clock=fake_clock, max_samples=2
        )
        for v in (1.0, 2.0, 3.0, 4.0):
            store.record("lat", v)
        (window,) = store.series("lat")["windows"]
        assert window["count"] == 4
        assert window["mean"] == pytest.approx(10.0 / 4)  # totals stay exact
        assert window["max"] == pytest.approx(2.0)  # quantiles see the cap

    def test_reset_drops_everything(self, fake_clock):
        store = TimeWindowStore(width_seconds=10, n_windows=2, clock=fake_clock)
        store.record("req")
        store.reset()
        assert [w["count"] for w in store.series("req")["windows"]] == [0, 0]


class TestSlowOpLog:
    def test_validates_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SlowOpLog(capacity=0)

    def test_keeps_only_the_k_slowest(self):
        log = SlowOpLog(capacity=3)
        for ms, name in [(5, "a"), (50, "b"), (20, "c"), (1, "d"), (30, "e")]:
            log.offer(name, ms / 1000.0)
        records = log.records()
        assert [r["name"] for r in records] == ["b", "e", "c"]
        assert [r["duration_ms"] for r in records] == [50.0, 30.0, 20.0]
        assert len(log) == 3

    def test_request_id_autofills_from_context(self):
        log = SlowOpLog()
        with bind_request_id("req-slow"):
            log.offer("db.sql", 0.5)
        log.offer("db.sql", 0.4)
        log.offer("db.sql", 0.3, request_id="explicit")
        by_name = {r["duration_ms"]: r["request_id"] for r in log.records()}
        assert by_name[500.0] == "req-slow"
        assert by_name[400.0] is None
        assert by_name[300.0] == "explicit"

    def test_tags_are_string_coerced(self):
        log = SlowOpLog()
        log.offer("http.request", 0.1, route="/api/x", status=500)
        (record,) = log.records()
        assert record["tags"] == {"route": "/api/x", "status": "500"}

    def test_equal_durations_keep_insertion_order_stable(self):
        log = SlowOpLog(capacity=2)
        log.offer("first", 0.1)
        log.offer("second", 0.1)
        log.offer("third", 0.1)  # not strictly slower: dropped
        assert [r["name"] for r in log.records()] == ["first", "second"]

    def test_reset(self):
        log = SlowOpLog()
        log.offer("x", 1.0)
        log.reset()
        assert log.records() == []
        assert len(log) == 0
