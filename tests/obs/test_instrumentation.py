"""The instrumented layers actually report: pipeline, db, kernels, stream."""

import numpy as np
import pytest

from repro import obs
from repro.cluster.kmeans import kmeans
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.timeseries import HourWindow
from repro.obs import MetricsRegistry, RingBufferSink
from repro.stream.clock import SimulatedClock


@pytest.fixture(scope="module")
def obs_city():
    return generate_city(CityConfig(n_customers=25, n_days=7, seed=13))


def _counter_value(registry, name, **labels):
    return registry.counter(name, **labels).value


class TestPipelineInstrumentation:
    def test_embed_cache_hit_miss_counters(self, obs_city):
        registry = MetricsRegistry()
        session = VapSession.from_city(obs_city, metrics=registry)
        session.embed(n_iter=30, perplexity=5.0)
        session.embed(n_iter=30, perplexity=5.0)  # cache hit
        session.embed(n_iter=40, perplexity=5.0)  # other key: miss
        assert _counter_value(
            registry, "pipeline_cache_total", op="embed", result="miss"
        ) == 2
        assert _counter_value(
            registry, "pipeline_cache_total", op="embed", result="hit"
        ) == 1
        # Feature matrix computed once, reused twice.
        assert _counter_value(
            registry, "pipeline_cache_total", op="features", result="miss"
        ) == 1

    def test_stage_timers_observed(self, obs_city):
        registry = MetricsRegistry()
        session = VapSession.from_city(obs_city, metrics=registry)
        session.shift(HourWindow(13, 15), HourWindow(19, 21))
        session.kmeans_baseline(k=3)
        snap = {
            (h["name"], h["labels"]["op"]): h["count"]
            for h in registry.snapshot()["histograms"]
            if h["name"] == "pipeline_seconds"
        }
        assert snap[("pipeline_seconds", "shift")] == 1
        assert snap[("pipeline_seconds", "density")] == 2  # t1 + t2
        assert snap[("pipeline_seconds", "kmeans_baseline")] == 1

    def test_span_tree_spans_all_layers(self, obs_city):
        previous = obs.get_tracer()
        sink = RingBufferSink()
        obs.configure(sink=sink)
        try:
            session = VapSession.from_city(obs_city, metrics=MetricsRegistry())
            session.shift(HourWindow(13, 15), HourWindow(19, 21))
        finally:
            obs.configure(tracer=previous)
        roots = [r for r in sink.records() if r.name == "pipeline.shift"]
        assert roots, "shift must open a root span"
        names = [s.name for s in roots[-1].walk()]
        assert "pipeline.density" in names
        assert "db.demand" in names
        assert "kernel.kde" in names


class TestDbInstrumentation:
    def test_query_timing_per_op(self, obs_city):
        from repro.db.engine import EnergyDatabase
        from repro.db.spatial import BBox

        registry = MetricsRegistry()
        db = EnergyDatabase(obs_city.customers, obs_city.raw, metrics=registry)
        db.demand(HourWindow(0, 24))
        db.ids_in_bbox(BBox(-180, -90, 180, 90))
        db.nearest(obs_city.customers[0].lon, obs_city.customers[0].lat, k=3)
        db.sql("SELECT count(*) AS n FROM customers")
        ops = {
            h["labels"]["op"]: h["count"]
            for h in registry.snapshot()["histograms"]
            if h["name"] == "db_query_seconds"
        }
        assert ops["demand"] == 1
        assert ops["readings"] == 1  # demand slices through readings_for
        assert ops["bbox"] == 1
        assert ops["nearest"] == 1
        assert ops["sql"] == 1


class TestKernelInstrumentation:
    def test_kmeans_reports_iterations_and_convergence(self, fresh_obs):
        registry, _ = fresh_obs
        rng = np.random.default_rng(0)
        result = kmeans(rng.normal(size=(40, 3)), k=3, n_init=2, seed=1)
        assert registry.counter("kernel_runs_total", kernel="kmeans").value == 1
        assert registry.counter("kmeans_restarts_total").value == 2
        hist = registry.histogram(
            "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="kmeans"
        )
        assert hist.count == 1
        assert hist.sum >= result.n_iter  # total across restarts
        assert registry.gauge(
            "kernel_last_objective", kernel="kmeans"
        ).value == pytest.approx(result.inertia)

    def test_tsne_and_mds_report_runs(self, fresh_obs):
        from repro.core.reduction.mds import mds
        from repro.core.reduction.tsne import tsne

        registry, _ = fresh_obs
        rng = np.random.default_rng(1)
        feats = rng.normal(size=(12, 6))
        tsne(feats, n_iter=20, perplexity=3.0)
        mds(feats, method="classical")
        assert registry.counter("kernel_runs_total", kernel="tsne").value == 1
        assert registry.counter("kernel_runs_total", kernel="mds").value == 1
        assert registry.histogram(
            "kernel_iterations", buckets=obs.COUNT_BUCKETS, kernel="tsne"
        ).sum == 20


class TestStreamClockInstrumentation:
    def test_ticks_and_logical_time_reported(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(tick_seconds=10.0, metrics=registry)
        clock.tick()
        clock.tick()
        clock.advance(5.0)
        assert registry.counter("stream_ticks_total").value == 2
        assert registry.gauge("stream_clock_seconds").value == 25.0
        assert clock.now == 25.0
