"""Tests for the stack-sampling profiler and folded-stack round trips."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profiler import (
    MAX_DEPTH,
    StackProfiler,
    _fold,
    parse_folded,
    render_folded,
)


def _busy_thread(stop: threading.Event) -> threading.Thread:
    def spin():
        while not stop.is_set():
            sum(i * i for i in range(2000))

    thread = threading.Thread(target=spin, name="busy", daemon=True)
    thread.start()
    return thread


class TestFold:
    def test_fold_is_root_first_with_module_stem(self):
        import sys

        frame = sys._getframe()
        folded = _fold(frame)
        parts = folded.split(";")
        # The leaf is this test function; the path root comes first.
        assert parts[-1] == "test_profiler.test_fold_is_root_first_with_module_stem"
        assert all("/" not in p and not p.endswith(".py") for p in parts)

    def test_fold_caps_depth(self):
        def recurse(n):
            if n == 0:
                import sys

                return _fold(sys._getframe())
            return recurse(n - 1)

        folded = recurse(MAX_DEPTH + 40)
        assert len(folded.split(";")) == MAX_DEPTH


class TestSampling:
    def test_burst_collect_sees_busy_thread(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler = StackProfiler(hz=0.0)
            counts = profiler.collect(0.3, hz=200.0)
        finally:
            stop.set()
            thread.join()
        assert counts, "expected at least one sampled stack"
        assert any("spin" in stack for stack in counts)

    def test_continuous_collect_returns_delta(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = StackProfiler(hz=200.0)
        profiler.start()
        try:
            first = profiler.collect(0.2)
            second = profiler.collect(0.2)
        finally:
            profiler.stop()
            stop.set()
            thread.join()
        # Each collect window reports only its own samples; the
        # cumulative table covers both windows and then some.
        total = sum(profiler.snapshot().values())
        assert sum(first.values()) + sum(second.values()) <= total
        assert sum(first.values()) > 0
        assert any("spin" in stack for stack in second)

    def test_start_noop_at_zero_hz(self):
        profiler = StackProfiler(hz=0.0)
        profiler.start()
        assert not profiler.running

    def test_stop_idempotent(self):
        profiler = StackProfiler(hz=100.0)
        profiler.start()
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError, match="hz"):
            StackProfiler(hz=-1.0)

    def test_collect_validates_inputs(self):
        profiler = StackProfiler(hz=0.0)
        with pytest.raises(ValueError, match="seconds"):
            profiler.collect(0.0)
        with pytest.raises(ValueError, match="hz"):
            profiler.collect(0.1, hz=0.0)

    def test_max_stacks_bounds_table(self):
        profiler = StackProfiler(hz=0.0, max_stacks=1)
        with profiler._lock:
            profiler._counts["existing"] = 1
        # Force the cap path directly: a second distinct stack is dropped.
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            time.sleep(0.05)
            profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        assert len(profiler.snapshot()) == 1
        assert profiler.dropped >= 1

    def test_reset(self):
        profiler = StackProfiler(hz=0.0)
        with profiler._lock:
            profiler._counts["x"] = 3
            profiler._samples = 5
        profiler.reset()
        assert profiler.snapshot() == {}
        assert profiler.samples == 0


class TestFoldedFormat:
    def test_render_parse_round_trip(self):
        counts = {"a.f;b.g": 7, "a.f": 2, "c.h;c.h;c.h": 1}
        assert parse_folded(render_folded(counts)) == counts

    def test_render_orders_heaviest_first(self):
        text = render_folded({"light.f": 1, "heavy.g": 10})
        assert text.splitlines()[0] == "heavy.g 10"

    def test_render_empty(self):
        assert render_folded({}) == ""

    def test_parse_merges_duplicates_and_skips_blanks(self):
        assert parse_folded("a.f 1\n\na.f 2\n") == {"a.f": 3}

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_folded("justoneword\n")
