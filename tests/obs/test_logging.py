"""Tests for structured JSON logging and request-ID propagation."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs.logging import (
    LEVELS,
    JsonLogger,
    bind_request_id,
    current_request_id,
    new_request_id,
)


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogger:
    def test_emits_one_json_object_per_line(self, fake_clock):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=fake_clock)
        logger.info("first", a=1)
        fake_clock.advance(2.5)
        logger.warning("second", b="two")
        records = _lines(stream)
        assert [r["event"] for r in records] == ["first", "second"]
        assert records[0] == {"ts": 0.0, "level": "info", "event": "first", "a": 1}
        assert records[1]["ts"] == 2.5
        assert records[1]["level"] == "warning"
        assert records[1]["b"] == "two"

    def test_level_threshold_filters(self, fake_clock):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, level="warning", clock=fake_clock)
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        logger.error("e")
        assert [r["event"] for r in _lines(stream)] == ["w", "e"]

    def test_off_level_silences_everything(self, fake_clock):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, level="off", clock=fake_clock)
        assert not logger.enabled
        logger.error("nope")
        assert stream.getvalue() == ""

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown level"):
            JsonLogger(level="verbose")
        logger = JsonLogger(stream=io.StringIO())
        with pytest.raises(ValueError, match="unknown level"):
            logger.log("x", level="loud")

    def test_non_serialisable_fields_fall_back_to_str(self, fake_clock):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=fake_clock)
        logger.info("custom", obj=object())
        (record,) = _lines(stream)
        assert record["obj"].startswith("<object object")

    def test_broken_stream_never_raises(self, fake_clock):
        class Exploding(io.StringIO):
            def write(self, s):  # noqa: ARG002
                raise OSError("disk full")

        logger = JsonLogger(stream=Exploding(), clock=fake_clock)
        logger.info("still fine")  # must not raise

    def test_levels_are_ordered(self):
        assert (
            LEVELS["debug"]
            < LEVELS["info"]
            < LEVELS["warning"]
            < LEVELS["error"]
            < LEVELS["off"]
        )


class TestRequestId:
    def test_new_request_ids_are_unique_hex(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(rid) == 16 and int(rid, 16) >= 0 for rid in ids)

    def test_bind_attaches_id_to_records(self, fake_clock):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=fake_clock)
        logger.info("outside")
        with bind_request_id("req-abc"):
            logger.info("inside")
        logger.info("after")
        records = _lines(stream)
        assert "request_id" not in records[0]
        assert records[1]["request_id"] == "req-abc"
        assert "request_id" not in records[2]

    def test_nested_binds_shadow_and_restore(self):
        assert current_request_id() is None
        with bind_request_id("outer"):
            assert current_request_id() == "outer"
            with bind_request_id("inner"):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"
        assert current_request_id() is None

    def test_span_records_capture_bound_request_id(self, fresh_obs, fake_clock):
        sink = obs.RingBufferSink()
        obs.configure(sink=sink, clock=fake_clock)
        with bind_request_id("req-span"):
            with obs.span("work"):
                with obs.span("child"):
                    pass
        (root,) = sink.records()
        assert root.request_id == "req-span"
        assert root.children[0].request_id == "req-span"
        assert root.to_record()["request_id"] == "req-span"

    def test_span_records_omit_request_id_when_unbound(self, fresh_obs, fake_clock):
        sink = obs.RingBufferSink()
        obs.configure(sink=sink, clock=fake_clock)
        with obs.span("work"):
            pass
        (root,) = sink.records()
        assert root.request_id is None
        assert "request_id" not in root.to_record()


class TestDefaultLogger:
    def test_log_event_goes_through_default_logger(self, fresh_obs, capsys):
        obs.log_event("hello", level="warning", n=3)
        err = capsys.readouterr().err
        record = json.loads(err.strip())
        assert record["event"] == "hello"
        assert record["level"] == "warning"
        assert record["n"] == 3

    def test_configure_swaps_logger(self, fresh_obs, fake_clock):
        stream = io.StringIO()
        obs.configure(logger=JsonLogger(stream=stream, clock=fake_clock))
        obs.log_event("routed")
        assert _lines(stream)[0]["event"] == "routed"
