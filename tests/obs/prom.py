"""A strict test-side mini-parser for Prometheus text exposition v0.0.4.

Used by the exposition tests to assert that ``/api/metrics?format=
prometheus`` output actually parses under the format's rules: metric and
label name character sets, quoted-and-escaped label values, ``# TYPE``
comment structure, and float sample values (including ``+Inf`` and
``NaN``).  Deliberately rejects anything the spec does, so a renderer bug
fails loudly instead of passing as "some text came back".

Also understands OpenMetrics-style exemplar suffixes on sample lines
(``name_bucket{...} 3 # {trace_id="..."} 0.017``): the exemplar's label
block and value must themselves parse, and land on
:attr:`Sample.exemplar`.
"""

from __future__ import annotations

import math
import re
from typing import NamedTuple

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Exemplar(NamedTuple):
    """One parsed exemplar suffix (``# {labels} value``)."""

    labels: dict[str, str]
    value: float


class Sample(NamedTuple):
    """One parsed sample line."""

    name: str
    labels: dict[str, str]
    value: float
    exemplar: Exemplar | None = None


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def _parse_labels(body: str) -> dict[str, str]:
    """Parse the inside of a ``{...}`` label block."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        match = _LABEL_NAME.match(body, i)
        if match is None:
            raise ValueError(f"bad label name at {body[i:]!r}")
        name = match.group(0)
        i = match.end()
        if i >= len(body) or body[i] != "=":
            raise ValueError(f"expected '=' after label {name!r}")
        i += 1
        if i >= len(body) or body[i] != '"':
            raise ValueError(f"label {name!r} value must be double-quoted")
        i += 1
        out: list[str] = []
        while True:
            if i >= len(body):
                raise ValueError(f"unterminated value for label {name!r}")
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise ValueError("dangling backslash in label value")
                nxt = body[i + 1]
                if nxt == "n":
                    out.append("\n")
                elif nxt in ('"', "\\"):
                    out.append(nxt)
                else:
                    raise ValueError(f"bad escape \\{nxt} in label value")
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise ValueError("raw newline inside label value")
            else:
                out.append(ch)
                i += 1
        if name in labels:
            raise ValueError(f"duplicate label {name!r}")
        labels[name] = "".join(out)
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"expected ',' between labels at {body[i:]!r}")
            i += 1
    return labels


def _split_label_block(rest: str) -> tuple[str, str]:
    """Split ``{...} value`` into the block body and the remainder,
    honouring quotes so '}' inside a label value does not terminate."""
    assert rest.startswith("{")
    i = 1
    in_quotes = False
    while i < len(rest):
        ch = rest[i]
        if in_quotes:
            if ch == "\\":
                i += 1
            elif ch == '"':
                in_quotes = False
        elif ch == '"':
            in_quotes = True
        elif ch == "}":
            return rest[1:i], rest[i + 1:]
        i += 1
    raise ValueError(f"unterminated label block in {rest!r}")


def parse_prometheus(text: str) -> tuple[dict[str, str], list[Sample]]:
    """Parse exposition text; returns ``(types, samples)``.

    ``types`` maps metric name to its declared type.  Raises
    :class:`ValueError` on any violation of the text format.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    types: dict[str, str] = {}
    samples: list[Sample] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"malformed TYPE line: {line!r}")
                _, _, name, kind = parts
                if not _METRIC_NAME.fullmatch(name):
                    raise ValueError(f"bad metric name in TYPE line: {name!r}")
                if kind not in _TYPES:
                    raise ValueError(f"unknown metric type {kind!r}")
                if name in types:
                    raise ValueError(f"duplicate TYPE for {name!r}")
                types[name] = kind
            continue
        match = _METRIC_NAME.match(line)
        if match is None or match.start() != 0:
            raise ValueError(f"bad sample line: {line!r}")
        name = match.group(0)
        rest = line[match.end():]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            body, rest = _split_label_block(rest)
            labels = _parse_labels(body)
        if not rest.startswith(" "):
            raise ValueError(f"expected space before value in {line!r}")
        exemplar: Exemplar | None = None
        if " # " in rest:
            rest, _, suffix = rest.partition(" # ")
            exemplar = _parse_exemplar(suffix, line)
        tokens = rest.strip().split(" ")
        if len(tokens) not in (1, 2):  # optional timestamp
            raise ValueError(f"trailing junk in sample line: {line!r}")
        samples.append(Sample(name, labels, _parse_value(tokens[0]), exemplar))
    return types, samples


def _parse_exemplar(suffix: str, line: str) -> Exemplar:
    """Parse the ``{labels} value [timestamp]`` part after ``# ``."""
    if not suffix.startswith("{"):
        raise ValueError(f"exemplar must start with a label block: {line!r}")
    body, rest = _split_label_block(suffix)
    labels = _parse_labels(body)
    if not labels:
        raise ValueError(f"exemplar has no labels: {line!r}")
    if not rest.startswith(" "):
        raise ValueError(f"expected space before exemplar value in {line!r}")
    tokens = rest.strip().split(" ")
    if len(tokens) not in (1, 2):  # optional timestamp
        raise ValueError(f"trailing junk after exemplar in {line!r}")
    return Exemplar(labels, _parse_value(tokens[0]))


def base_name(sample_name: str) -> str:
    """Strip histogram sample suffixes (``_bucket``/``_sum``/``_count``)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name
