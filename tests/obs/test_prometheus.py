"""Tests for Prometheus text exposition, validated by a strict mini-parser."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_label_name,
    sanitize_name,
)

from .prom import base_name, parse_prometheus


class TestSanitizers:
    def test_valid_names_pass_through(self):
        assert sanitize_name("http_requests_total") == "http_requests_total"
        assert sanitize_name("ns:metric") == "ns:metric"

    def test_bad_characters_become_underscores(self):
        assert sanitize_name("pipeline.embed-ms") == "pipeline_embed_ms"
        assert sanitize_name("1weird") == "_1weird"
        assert sanitize_name("") == "_"

    def test_label_names_exclude_colon_and_dunder_prefix(self):
        assert sanitize_label_name("route") == "route"
        assert sanitize_label_name("ns:key") == "ns_key"
        assert sanitize_label_name("__reserved") == "reserved"
        assert sanitize_label_name("9lives") == "_9lives"
        assert sanitize_label_name("___") == "_"

    def test_escaping_order_backslash_first(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # a backslash already in the input must not double-escape the quote
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestRenderPrometheus:
    def _registry(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        return registry

    def test_counters_and_gauges_round_trip(self):
        registry = self._registry()
        registry.counter("http_requests_total", route="/api/density").inc(3)
        registry.gauge("stream_clock_seconds").set(42.5)
        text = render_prometheus(registry.snapshot())
        types, samples = parse_prometheus(text)
        assert types["http_requests_total"] == "counter"
        assert types["stream_clock_seconds"] == "gauge"
        by_name = {(s.name, tuple(sorted(s.labels.items()))): s.value for s in samples}
        assert by_name[("http_requests_total", (("route", "/api/density"),))] == 3.0
        assert by_name[("stream_clock_seconds", ())] == 42.5

    def test_label_values_survive_adversarial_characters(self):
        registry = self._registry()
        nasty = 'pa\\th" with\nnewline'
        registry.counter("c_total", route=nasty).inc()
        text = render_prometheus(registry.snapshot())
        _, samples = parse_prometheus(text)
        (sample,) = [s for s in samples if s.name == "c_total"]
        assert sample.labels["route"] == nasty

    def test_histogram_buckets_are_cumulative(self):
        registry = self._registry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.05, 0.3, 0.7, 2.0):
            hist.observe(v)
        text = render_prometheus(registry.snapshot())
        types, samples = parse_prometheus(text)
        assert types["lat_seconds"] == "histogram"
        buckets = [s for s in samples if s.name == "lat_seconds_bucket"]
        les = [s.labels["le"] for s in buckets]
        assert les == ["0.1", "0.5", "1", "+Inf"]
        counts = [s.value for s in buckets]
        assert counts == [2.0, 3.0, 4.0, 5.0]  # cumulative, +Inf == count
        assert counts == sorted(counts)
        (count,) = [s for s in samples if s.name == "lat_seconds_count"]
        assert count.value == 5.0
        (total,) = [s for s in samples if s.name == "lat_seconds_sum"]
        assert total.value == pytest.approx(3.1)

    def test_one_type_line_per_name_across_label_sets(self):
        registry = self._registry()
        registry.counter("c_total", route="/a").inc()
        registry.counter("c_total", route="/b").inc()
        registry.histogram("h_seconds", buckets=(1.0,), op="x").observe(0.5)
        registry.histogram("h_seconds", buckets=(1.0,), op="y").observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert text.count("# TYPE c_total counter") == 1
        assert text.count("# TYPE h_seconds histogram") == 1
        types, samples = parse_prometheus(text)
        # every sample's base name is declared
        for sample in samples:
            assert base_name(sample.name) in types

    def test_dotted_metric_names_are_sanitised(self):
        registry = self._registry()
        registry.counter("pipeline.cache.total", op="embed").inc()
        text = render_prometheus(registry.snapshot())
        types, samples = parse_prometheus(text)
        assert "pipeline_cache_total" in types
        assert all("." not in s.name for s in samples)

    def test_empty_snapshot_renders_parseable_text(self):
        text = render_prometheus(self._registry().snapshot())
        types, samples = parse_prometheus(text)
        assert types == {} and samples == []
        assert text.endswith("\n")

    def test_extra_snapshot_keys_are_ignored(self):
        registry = self._registry()
        registry.counter("c_total").inc()
        snapshot = registry.snapshot()
        snapshot["span_sink"] = {"exported": 1, "dropped": 0}
        snapshot["spans"] = [{"name": "x"}]
        types, _ = parse_prometheus(render_prometheus(snapshot))
        assert set(types) == {"c_total"}

    def test_content_type_constant(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE


class TestMiniParserIsStrict:
    """The parser itself must reject malformed expositions, or the
    round-trip tests above prove nothing."""

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_prometheus("a_total 1")

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ValueError):
            parse_prometheus("9bad 1\n")

    def test_rejects_unquoted_label_value(self):
        with pytest.raises(ValueError):
            parse_prometheus("a{route=/x} 1\n")

    def test_rejects_bad_escape(self):
        with pytest.raises(ValueError, match="escape"):
            parse_prometheus('a{route="\\x"} 1\n')

    def test_rejects_unterminated_label_block(self):
        with pytest.raises(ValueError):
            parse_prometheus('a{route="x" 1\n')

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError):
            parse_prometheus("a_total one\n")

    def test_accepts_escaped_quote_and_brace_in_value(self):
        _, samples = parse_prometheus('a{v="x\\"}\\\\y"} 1\n')
        assert samples[0].labels["v"] == 'x"}\\y'

    def test_parses_special_float_values(self):
        _, samples = parse_prometheus("a NaN\nb +Inf\n")
        assert math.isnan(samples[0].value)
        assert samples[1].value == math.inf
