"""Tests for cross-thread trace propagation and the bounded trace store.

Covers the three layers of the stitching story: :class:`TraceContext`
capture/bind semantics, span-id assignment inside the tracer, and
:class:`TraceStore` grafting fragments from pool workers back into the
caller's tree.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.core.deadline import Deadline, current_deadline
from repro.obs.spans import SpanRecord, new_span_id
from repro.obs.tracecontext import TraceContext, current_remote_parent
from repro.obs.tracestore import TraceStore


@pytest.fixture()
def traced(fresh_obs):
    """Fresh defaults with a trace store attached to the tracer."""
    store = TraceStore()
    obs.configure(trace_store=store)
    return store


class TestTraceContextCapture:
    def test_empty_capture_outside_any_request(self, fresh_obs):
        ctx = TraceContext.capture()
        assert ctx.trace_id is None
        assert ctx.span_id is None
        assert ctx.request_id is None
        assert ctx.tenant is None
        assert ctx.deadline is None
        assert ctx.to_record() == {}

    def test_capture_inside_open_span(self, traced):
        with obs.span("outer") as rec:
            ctx = TraceContext.capture()
            assert ctx.trace_id == rec.trace_id
            assert ctx.span_id == rec.span_id

    def test_capture_prefers_innermost_span(self, traced):
        with obs.span("outer"):
            with obs.span("inner") as inner:
                ctx = TraceContext.capture()
                assert ctx.span_id == inner.span_id
                assert ctx.trace_id == inner.trace_id

    def test_capture_snapshots_request_id_tenant_deadline(self, traced):
        deadline = Deadline(30.0)
        with obs.bind_request_id("req-1"), obs.bind_tenant("acme"):
            from repro.core.deadline import bind_deadline

            with bind_deadline(deadline):
                ctx = TraceContext.capture()
        assert ctx.request_id == "req-1"
        assert ctx.tenant == "acme"
        assert ctx.deadline is deadline

    def test_capture_falls_back_to_remote_parent(self, traced):
        parent = TraceContext(trace_id="t" * 16, span_id="s" * 16)
        with parent.bind():
            # No local span open: the propagated pair is re-captured, so
            # a second pool hop still parents to the original span.
            ctx = TraceContext.capture()
        assert ctx.trace_id == "t" * 16
        assert ctx.span_id == "s" * 16


class TestTraceContextBind:
    def test_bind_sets_and_restores_remote_parent(self, fresh_obs):
        ctx = TraceContext(trace_id="abc", span_id="def")
        assert current_remote_parent() is None
        with ctx.bind():
            assert current_remote_parent() == ("abc", "def")
        assert current_remote_parent() is None

    def test_bind_rebinds_request_id_and_tenant(self, fresh_obs):
        ctx = TraceContext(request_id="req-9", tenant="globex")
        with ctx.bind():
            assert obs.current_request_id() == "req-9"
            assert obs.current_tenant() == "globex"
        assert obs.current_request_id() is None

    def test_empty_bind_does_not_clobber_ambient_bindings(self, fresh_obs):
        ctx = TraceContext()
        with obs.bind_request_id("ambient"):
            with ctx.bind():
                assert obs.current_request_id() == "ambient"

    def test_bind_propagates_deadline(self, fresh_obs):
        deadline = Deadline(5.0)
        ctx = TraceContext(deadline=deadline)
        with ctx.bind():
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_run_convenience(self, fresh_obs):
        ctx = TraceContext(request_id="run-req")
        assert ctx.run(obs.current_request_id) == "run-req"

    def test_to_record_reports_remaining_deadline(self, fresh_obs):
        ctx = TraceContext(
            trace_id="t1", request_id="r1", deadline=Deadline(60.0)
        )
        record = ctx.to_record()
        assert record["trace_id"] == "t1"
        assert record["request_id"] == "r1"
        assert 0 < record["deadline_remaining_seconds"] <= 60.0


class TestCrossThreadStitching:
    def test_worker_span_grafts_into_callers_tree(self, traced):
        store = traced
        with ThreadPoolExecutor(max_workers=2) as pool:
            with obs.span("request") as root:
                ctx = TraceContext.capture()

                def shard_task(i):
                    with ctx.bind(), obs.span("db.shard", shard=i):
                        return i

                futures = [pool.submit(shard_task, i) for i in range(3)]
                assert sorted(f.result() for f in futures) == [0, 1, 2]
        tree = store.get(root.trace_id)
        assert tree is not None
        shard_spans = [s for s in tree.walk() if s.name == "db.shard"]
        assert len(shard_spans) == 3
        assert {s.parent_id for s in shard_spans} == {root.span_id}
        assert {s.trace_id for s in shard_spans} == {root.trace_id}

    def test_worker_logs_carry_propagated_request_id(self, traced):
        store = traced
        seen: list[str | None] = []
        with obs.bind_request_id("req-shard"):
            with obs.span("request") as root:
                ctx = TraceContext.capture()
                with ThreadPoolExecutor(max_workers=1) as pool:
                    def task():
                        with ctx.bind(), obs.span("work") as rec:
                            seen.append(obs.current_request_id())
                            return rec

                    worker_rec = pool.submit(task).result()
        assert seen == ["req-shard"]
        assert worker_rec.request_id == "req-shard"
        tree = store.get(root.trace_id)
        assert any(s.name == "work" for s in tree.walk())

    def test_nested_scatter_two_hops(self, traced):
        store = traced
        with ThreadPoolExecutor(max_workers=2) as pool:
            with obs.span("request") as root:
                ctx = TraceContext.capture()

                def outer_task():
                    with ctx.bind(), obs.span("hop1") as hop1:
                        inner_ctx = TraceContext.capture()
                        assert inner_ctx.span_id == hop1.span_id

                        def inner():
                            with inner_ctx.bind(), obs.span("hop2"):
                                pass

                        pool.submit(inner).result()

                pool.submit(outer_task).result()
        tree = store.get(root.trace_id)
        names = {s.name for s in tree.walk()}
        assert {"request", "hop1", "hop2"} <= names
        hop1 = next(s for s in tree.walk() if s.name == "hop1")
        hop2 = next(s for s in tree.walk() if s.name == "hop2")
        assert hop2.parent_id == hop1.span_id


class TestTraceStore:
    def _root(self, trace_id, name="root"):
        rec = SpanRecord(name=name, tags={}, start=0.0)
        rec.trace_id = trace_id
        rec.span_id = new_span_id()
        return rec

    def _fragment(self, root, name="frag"):
        rec = SpanRecord(name=name, tags={}, start=0.0)
        rec.trace_id = root.trace_id
        rec.span_id = new_span_id()
        rec.parent_id = root.span_id
        return rec

    def test_late_fragment_grafts_immediately(self):
        store = TraceStore()
        root = self._root("t1")
        store.add_trace(root)
        frag = self._fragment(root)
        store.add_fragment(frag)
        assert frag in store.get("t1").children

    def test_orphan_fragment_attaches_under_root(self):
        store = TraceStore()
        frag = SpanRecord(name="orphan", tags={}, start=0.0)
        frag.trace_id = "t2"
        frag.span_id = new_span_id()
        frag.parent_id = "no-such-span"
        store.add_fragment(frag)
        root = self._root("t2")
        store.add_trace(root)
        assert frag in store.get("t2").children

    def test_eviction_keeps_newest(self):
        store = TraceStore(max_traces=2)
        for i in range(4):
            store.add_trace(self._root(f"t{i}"))
        assert len(store) == 2
        assert store.get("t0") is None
        assert store.get("t3") is not None

    def test_pending_cap_counts_drops(self):
        store = TraceStore(max_pending=2)
        root = self._root("t-burst")
        for _ in range(5):
            store.add_fragment(self._fragment(root))
        assert store.dropped_fragments == 3
        store.add_trace(root)
        assert len(root.children) == 2

    def test_traces_filters(self):
        store = TraceStore()
        a = self._root("ta")
        a.request_id, a.tenant, a.duration = "req-a", "acme", 0.5
        b = self._root("tb")
        b.request_id, b.tenant, b.duration = "req-b", "globex", 0.001
        store.add_trace(a)
        store.add_trace(b)
        assert [r.trace_id for r in store.traces()] == ["tb", "ta"]
        assert [r.trace_id for r in store.traces(request_id="req-a")] == ["ta"]
        assert [r.trace_id for r in store.traces(tenant="globex")] == ["tb"]
        assert [r.trace_id for r in store.traces(min_duration_ms=100)] == ["ta"]
        assert len(store.traces(limit=1)) == 1

    def test_clear(self):
        store = TraceStore()
        store.add_trace(self._root("tc"))
        store.clear()
        assert len(store) == 0

    def test_ids_survive_to_record(self):
        store = TraceStore()
        root = self._root("tr")
        frag = self._fragment(root, name="child")
        store.add_fragment(frag)
        store.add_trace(root)
        record = store.get("tr").to_record()
        assert record["trace_id"] == "tr"
        assert record["children"][0]["parent_id"] == root.span_id
