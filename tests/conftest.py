"""Shared fixtures.

City datasets and sessions are expensive; the standard ones are
session-scoped and must be treated as read-only by tests (tests that need
to mutate build their own).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.db.engine import EnergyDatabase
from repro.resilience import faults


@pytest.fixture(scope="session", autouse=True)
def _chaos_plan_from_env():
    """Arm a fault plan for the whole run when REPRO_FAULT_PLAN is set.

    The CI chaos-smoke job sets it (e.g.
    ``storage.load.readings=error:0.1,stream.tick=error:0.1``) and
    re-runs the tier-1 storage/stream suites: the retry layer must
    absorb the injected faults without any test noticing.  Tests that
    arm their own plans via ``faults.injected`` temporarily replace (and
    then restore) this one.
    """
    spec = os.environ.get("REPRO_FAULT_PLAN")
    if not spec:
        yield None
        return
    seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
    with faults.injected(faults.FaultPlan.load(spec, seed=seed)) as injector:
        yield injector


@pytest.fixture(scope="session")
def small_city():
    """60 customers x 3 weeks — fast, exercises every archetype/zone."""
    return generate_city(CityConfig(n_customers=60, n_days=21, seed=101))


@pytest.fixture(scope="session")
def year_city():
    """120 customers x 1 year — seasonal effects (bimodal) visible."""
    return generate_city(CityConfig(n_customers=120, n_days=365, seed=202))


@pytest.fixture(scope="session")
def small_db(small_city):
    return EnergyDatabase(small_city.customers, small_city.raw)


@pytest.fixture(scope="session")
def small_session(small_city):
    return VapSession.from_city(small_city)


@pytest.fixture(scope="session")
def year_session(year_city):
    return VapSession.from_city(year_city)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
