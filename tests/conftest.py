"""Shared fixtures.

City datasets and sessions are expensive; the standard ones are
session-scoped and must be treated as read-only by tests (tests that need
to mutate build their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.db.engine import EnergyDatabase


@pytest.fixture(scope="session")
def small_city():
    """60 customers x 3 weeks — fast, exercises every archetype/zone."""
    return generate_city(CityConfig(n_customers=60, n_days=21, seed=101))


@pytest.fixture(scope="session")
def year_city():
    """120 customers x 1 year — seasonal effects (bimodal) visible."""
    return generate_city(CityConfig(n_customers=120, n_days=365, seed=202))


@pytest.fixture(scope="session")
def small_db(small_city):
    return EnergyDatabase(small_city.customers, small_city.raw)


@pytest.fixture(scope="session")
def small_session(small_city):
    return VapSession.from_city(small_city)


@pytest.fixture(scope="session")
def year_session(year_city):
    return VapSession.from_city(year_city)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
