"""The perf-regression gate: speedup-ratio comparison and the CLI paths."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    compare_documents,
    headline_speedups,
    main,
)
from repro.cli import main as cli_main


def _doc(**kernels):
    return {
        "schema": 1,
        "kernels": {
            name: {"runs": runs} for name, runs in kernels.items()
        },
    }


class TestHeadlineSpeedups:
    def test_keyed_by_kernel_and_size(self):
        doc = _doc(
            tsne=[{"n": 500, "speedup": 3.0}, {"n": 1000, "speedup": 5.0}],
            dtw=[{"length": 168, "speedup": 40.0}],
        )
        assert headline_speedups(doc) == {
            ("tsne", 500): 3.0,
            ("tsne", 1000): 5.0,
            ("dtw", 168): 40.0,
        }

    def test_runs_without_speedup_skipped(self):
        doc = _doc(landmark=[{"n": 50_000, "fast_seconds": 30.0}])
        assert headline_speedups(doc) == {}


class TestCompareDocuments:
    def test_no_regression_when_ratios_hold(self):
        base = _doc(tsne=[{"n": 500, "speedup": 4.0}])
        fresh = _doc(tsne=[{"n": 500, "speedup": 3.5}])
        assert compare_documents(fresh, base) == []

    def test_regression_beyond_threshold_reported(self):
        base = _doc(tsne=[{"n": 500, "speedup": 4.0}])
        fresh = _doc(tsne=[{"n": 500, "speedup": 2.0}])
        problems = compare_documents(fresh, base)
        assert len(problems) == 1
        assert "tsne @ 500" in problems[0]

    def test_boundary_is_exactly_the_threshold(self):
        base = _doc(kde=[{"n": 10_000, "speedup": 10.0}])
        at = _doc(kde=[{"n": 10_000, "speedup": 10.0 * (1 - DEFAULT_THRESHOLD)}])
        assert compare_documents(at, base) == []
        below = _doc(kde=[{"n": 10_000, "speedup": 7.4}])
        assert len(compare_documents(below, base)) == 1

    def test_only_intersecting_keys_compared(self):
        # A size only the full document measures is not a regression.
        base = _doc(tsne=[{"n": 500, "speedup": 4.0}, {"n": 2000, "speedup": 9.0}])
        fresh = _doc(tsne=[{"n": 500, "speedup": 4.0}])
        assert compare_documents(fresh, base) == []

    def test_faster_is_never_a_regression(self):
        base = _doc(dtw=[{"length": 168, "speedup": 10.0}])
        fresh = _doc(dtw=[{"length": 168, "speedup": 90.0}])
        assert compare_documents(fresh, base) == []


class TestCompareMain:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _doc(tsne=[{"n": 500, "speedup": 4.0}]))
        fresh = self._write(tmp_path / "f.json", _doc(tsne=[{"n": 500, "speedup": 4.2}]))
        assert main([fresh, base]) == 0
        assert "no perf regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _doc(tsne=[{"n": 500, "speedup": 4.0}]))
        fresh = self._write(tmp_path / "f.json", _doc(tsne=[{"n": 500, "speedup": 1.0}]))
        assert main([fresh, base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_escape_hatch_env(self, tmp_path, monkeypatch, capsys):
        base = self._write(tmp_path / "b.json", _doc(tsne=[{"n": 500, "speedup": 4.0}]))
        fresh = self._write(tmp_path / "f.json", _doc(tsne=[{"n": 500, "speedup": 1.0}]))
        monkeypatch.setenv("REPRO_BENCH_ALLOW_REGRESSION", "1")
        assert main([fresh, base]) == 0
        assert "not failing the gate" in capsys.readouterr().out

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "f.json", _doc())
        assert main([fresh, str(tmp_path / "absent.json")]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_usage_error(self, capsys):
        assert main(["one.json"]) == 2


class TestBenchJsonFlag:
    def test_json_goes_to_stdout_not_disk(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = cli_main(
            ["bench", "--quick", "--kernel", "dtw", "--no-profiler", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["schema"] == 1
        assert "dtw" in document["kernels"]
        assert list(tmp_path.iterdir()) == []  # nothing written

    def test_json_document_feeds_the_comparator(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert cli_main(
            ["bench", "--quick", "--kernel", "dtw", "--no-profiler", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(document))
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(document))
        # A document always passes against itself.
        assert main([str(fresh), str(baseline)]) == 0
