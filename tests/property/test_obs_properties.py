"""Property-based tests for the observability layer and its KDE contract.

Two invariants: the weighted KDE's normalisation makes the density scale-free
in the raw consumption values (doubling every meter reading changes nothing),
and histograms conserve observations — every ``observe`` lands in exactly one
bucket, for any bucket layout.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density, normalize_weights
from repro.db.spatial import BBox
from repro.obs import MetricsRegistry

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestHistogramConservation:
    @given(
        bounds=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        values=st.lists(finite_floats, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_observation_lands_in_exactly_one_bucket(
        self, bounds, values
    ):
        hist = MetricsRegistry().histogram(
            "h", buckets=tuple(sorted(bounds))
        )
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert sum(hist.bucket_counts) == len(values)
        assert hist.sum == sum(values)

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_buckets_are_monotone_cumulative_free(self, values):
        """Snapshot bucket counts are per-bucket (not cumulative) and sum to
        the observation count, so any consumer can rebuild the CDF."""
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(-1.0, 0.0, 1.0, 10.0))
        for v in values:
            hist.observe(v)
        record = reg.snapshot()["histograms"][0]
        assert sum(b["count"] for b in record["buckets"]) == len(values)
        assert record["buckets"][-1]["le"] == "+Inf"


class TestKdeWeightScaleInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        n=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_uniform_weight_scaling_leaves_density_unchanged(
        self, seed, scale, n
    ):
        """normalize_weights divides by the total, so c -> a*c (same meter
        units, different scale) must yield the identical density surface."""
        rng = np.random.default_rng(seed)
        positions = np.column_stack(
            [rng.uniform(11.6, 13.4, n), rng.uniform(54.6, 56.4, n)]
        )
        consumption = rng.uniform(0.1, 5.0, n)
        spec = GridSpec(BBox(11.5, 54.5, 13.5, 56.5), nx=10, ny=10)
        base = kde_density(
            positions, normalize_weights(consumption), spec, bandwidth_m=800.0
        )
        scaled = kde_density(
            positions,
            normalize_weights(consumption * scale),
            spec,
            bandwidth_m=800.0,
        )
        np.testing.assert_allclose(scaled.values, base.values, rtol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_uniform_consumption_matches_unweighted_kde(self, seed):
        rng = np.random.default_rng(seed)
        positions = np.column_stack(
            [rng.uniform(11.6, 13.4, 8), rng.uniform(54.6, 56.4, 8)]
        )
        spec = GridSpec(BBox(11.5, 54.5, 13.5, 56.5), nx=10, ny=10)
        weighted = kde_density(
            positions,
            normalize_weights(np.full(8, 3.7)),
            spec,
            bandwidth_m=800.0,
        )
        unweighted = kde_density(positions, None, spec, bandwidth_m=800.0)
        np.testing.assert_allclose(
            weighted.values, unweighted.values, rtol=1e-9
        )
