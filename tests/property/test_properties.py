"""Property-based tests (hypothesis) on core invariants.

Each property states a mathematical guarantee of a model or data structure
and lets hypothesis search for counterexamples: KDE mass/positivity, shift
zero-sum, distance-matrix axioms, t-SNE P-matrix normalisation, k-means
assignment optimality, resampling sum preservation, selection set algebra,
imputation idempotence and spatial-index agreement with brute force.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.cluster.kmeans import kmeans
from repro.core.patterns.selection import RadiusSelection, RectSelection
from repro.core.reduction.distances import pearson_distance_matrix
from repro.core.reduction.tsne import joint_probabilities
from repro.core.shift.flow import ShiftField
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density, normalize_weights
from repro.data.timeseries import Resolution, SeriesSet
from repro.db.index.grid import GridIndex
from repro.db.index.quadtree import QuadTree
from repro.db.index.rtree import RTree
from repro.db.spatial import BBox
from repro.preprocess.imputation import impute
from repro.preprocess.normalize import normalize_matrix
from repro.preprocess.resample import resample

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def feature_matrices(draw, min_rows=3, max_rows=12, min_cols=4, max_cols=20):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(
        npst.arrays(np.float64, (rows, cols), elements=finite_floats)
    )


@st.composite
def point_clouds(draw, min_points=2, max_points=60):
    n = draw(st.integers(min_points, max_points))
    lons = draw(
        npst.arrays(
            np.float64,
            (n,),
            elements=st.floats(12.0, 13.0, allow_nan=False),
        )
    )
    lats = draw(
        npst.arrays(
            np.float64,
            (n,),
            elements=st.floats(55.0, 56.0, allow_nan=False),
        )
    )
    return lons, lats


@st.composite
def gapped_series(draw):
    n_rows = draw(st.integers(1, 5))
    n_cols = draw(st.integers(4, 60))
    matrix = draw(
        npst.arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(0.0, 50.0, allow_nan=False),
        )
    )
    mask = draw(
        npst.arrays(np.bool_, (n_rows, n_cols), elements=st.booleans())
    )
    matrix = matrix.copy()
    matrix[mask] = np.nan
    return SeriesSet(list(range(n_rows)), draw(st.integers(0, 100)), matrix)


# ---------------------------------------------------------------------------
# distances / embeddings
# ---------------------------------------------------------------------------


class TestDistanceProperties:
    @given(feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_pearson_is_valid_dissimilarity(self, feats):
        dist = pearson_distance_matrix(feats)
        assert (dist >= 0).all()
        assert (dist <= 2.0 + 1e-9).all()
        np.testing.assert_array_equal(dist, dist.T)
        np.testing.assert_allclose(np.diag(dist), 0.0, atol=1e-12)

    @given(feature_matrices(min_rows=4, max_rows=10))
    @settings(max_examples=15, deadline=None)
    def test_joint_probabilities_normalised(self, feats):
        dist = pearson_distance_matrix(feats)
        p = joint_probabilities(dist, perplexity=2.0)
        assert p.sum() == pytest.approx(1.0, abs=1e-6)
        np.testing.assert_allclose(p, p.T, atol=1e-15)
        assert (p > 0).all()


# ---------------------------------------------------------------------------
# KDE / shift
# ---------------------------------------------------------------------------


class TestKdeProperties:
    @given(point_clouds(), st.floats(100.0, 3000.0))
    @settings(max_examples=25, deadline=None)
    def test_density_nonnegative_and_finite(self, cloud, bandwidth):
        lons, lats = cloud
        positions = np.column_stack([lons, lats])
        spec = GridSpec(BBox(11.5, 54.5, 13.5, 56.5), nx=16, ny=16)
        grid = kde_density(positions, None, spec, bandwidth_m=bandwidth)
        assert np.isfinite(grid.values).all()
        assert (grid.values >= 0).all()

    @given(point_clouds())
    @settings(max_examples=25, deadline=None)
    def test_shift_of_identical_densities_is_zero(self, cloud):
        lons, lats = cloud
        positions = np.column_stack([lons, lats])
        spec = GridSpec(BBox(11.5, 54.5, 13.5, 56.5), nx=12, ny=12)
        a = kde_density(positions, None, spec, bandwidth_m=500.0)
        b = kde_density(positions, None, spec, bandwidth_m=500.0)
        field = ShiftField.between(a, b)
        assert field.energy() == 0.0

    @given(
        npst.arrays(
            np.float64,
            st.integers(1, 50),
            elements=st.floats(-10.0, 10.0, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_normalize_weights_sums_to_n(self, values):
        w = normalize_weights(values)
        assert w.shape == values.shape
        assert (w >= 0).all()
        assert w.sum() == pytest.approx(values.size)


# ---------------------------------------------------------------------------
# clustering
# ---------------------------------------------------------------------------


class TestKmeansProperties:
    @given(feature_matrices(min_rows=4, max_rows=15), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_assignments_are_nearest_centroid(self, feats, k):
        k = min(k, feats.shape[0])
        result = kmeans(feats, k=k, n_init=1, seed=0)
        d2 = ((feats[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
        best = d2.min(axis=1)
        chosen = d2[np.arange(feats.shape[0]), result.labels]
        np.testing.assert_allclose(chosen, best, atol=1e-9)

    @given(feature_matrices(min_rows=4, max_rows=15))
    @settings(max_examples=20, deadline=None)
    def test_inertia_never_increases(self, feats):
        result = kmeans(feats, k=2, n_init=1, seed=1)
        trace = result.inertia_trace
        assert all(a >= b - 1e-6 for a, b in zip(trace, trace[1:]))


# ---------------------------------------------------------------------------
# preprocessing
# ---------------------------------------------------------------------------


class TestPreprocessProperties:
    @given(gapped_series())
    @settings(max_examples=30, deadline=None)
    def test_impute_removes_all_nan_and_is_idempotent(self, series):
        filled = impute(series)
        assert not np.isnan(filled.matrix).any()
        again = impute(filled)
        np.testing.assert_array_equal(again.matrix, filled.matrix)

    @given(gapped_series())
    @settings(max_examples=30, deadline=None)
    def test_impute_preserves_observed_cells(self, series):
        filled = impute(series)
        observed = ~np.isnan(series.matrix)
        np.testing.assert_array_equal(
            filled.matrix[observed], series.matrix[observed]
        )

    @given(gapped_series())
    @settings(max_examples=30, deadline=None)
    def test_resample_sum_preserves_observed_total(self, series):
        out = resample(series, Resolution.DAILY, aggregate="sum")
        want = np.nansum(series.matrix)
        got = np.nansum(out.matrix)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)

    @given(feature_matrices())
    @settings(max_examples=30, deadline=None)
    def test_zscore_bounds(self, feats):
        out = normalize_matrix(feats, "zscore")
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-7)


# ---------------------------------------------------------------------------
# selection set algebra
# ---------------------------------------------------------------------------


class TestSelectionProperties:
    @given(
        npst.arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        ),
        st.floats(-5.0, 5.0),
        st.floats(-5.0, 5.0),
        # Sub-ulp radii make d^2 underflow to zero while the rectangle
        # bounds stay exact; such gestures are not physically drawable.
        st.floats(1e-6, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_radius_subset_of_enclosing_rect(self, emb, x, y, radius):
        inside_circle = set(RadiusSelection(x, y, radius).apply(emb).tolist())
        # Pad the rectangle by one part in 10^9: points on the circle's
        # boundary can round inside the circle test while sitting a ulp
        # outside the exact enclosing square.
        pad = radius * (1.0 + 1e-9) + 1e-12
        inside_rect = set(
            RectSelection(x - pad, y - pad, x + pad, y + pad)
            .apply(emb)
            .tolist()
        )
        assert inside_circle <= inside_rect

    @given(
        npst.arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.just(2)),
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_growing_rect_is_monotone(self, emb):
        small = set(RectSelection(-1, -1, 1, 1).apply(emb).tolist())
        large = set(RectSelection(-2, -2, 2, 2).apply(emb).tolist())
        assert small <= large


# ---------------------------------------------------------------------------
# spatial indexes vs brute force
# ---------------------------------------------------------------------------


class TestIndexProperties:
    @given(
        point_clouds(min_points=2, max_points=40),
        st.floats(12.0, 13.0),
        st.floats(55.0, 56.0),
        st.floats(12.0, 13.0),
        st.floats(55.0, 56.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_indexes_agree_with_brute_force(self, cloud, x0, y0, x1, y1):
        lons, lats = cloud
        ids = np.arange(lons.size)
        box = BBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        want = sorted(ids[box.contains_many(lons, lats)].tolist())
        for cls in (GridIndex, QuadTree, RTree):
            index = cls(ids, lons, lats)
            assert index.query_bbox(box).tolist() == want


# ---------------------------------------------------------------------------
# SQL dialect vs query algebra
# ---------------------------------------------------------------------------


class TestSqlProperties:
    @st.composite
    @staticmethod
    def _tables(draw):
        from repro.db.table import ColumnSpec, Schema, Table

        n = draw(st.integers(1, 30))
        table = Table(
            "t",
            Schema([ColumnSpec("a", "int"), ColumnSpec("b", "float")]),
        )
        table.insert_columns(
            {
                "a": draw(
                    npst.arrays(
                        np.int64, (n,), elements=st.integers(-5, 5)
                    )
                ).tolist(),
                "b": draw(
                    npst.arrays(
                        np.float64, (n,), elements=st.floats(-3.0, 3.0,
                                                             allow_nan=False),
                    )
                ).tolist(),
            }
        )
        return table

    @given(
        _tables(),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(-5, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_sql_where_matches_algebra(self, table, op, value):
        from repro.db.query import Compare, Query
        from repro.db.sql import execute_sql

        sql_rows = execute_sql(
            {"t": table}, f"SELECT a FROM t WHERE a {op} {value}"
        )
        algebra_op = {"=": "=="}.get(op, op)
        algebra = (
            Query(table).where(Compare("a", algebra_op, value)).select("a").rows()
        )
        assert [r["a"] for r in sql_rows] == [r["a"] for r in algebra]

    @given(_tables(), st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_sql_between_is_closed_interval(self, table, lo, hi):
        from repro.db.sql import execute_sql

        lo, hi = min(lo, hi), max(lo, hi)
        rows = execute_sql(
            {"t": table}, f"SELECT a FROM t WHERE a BETWEEN {lo} AND {hi}"
        )
        column = table.column("a")
        want = [int(v) for v in column if lo <= v <= hi]
        assert [r["a"] for r in rows] == want

    @given(_tables())
    @settings(max_examples=30, deadline=None)
    def test_sql_group_counts_partition_the_table(self, table):
        from repro.db.sql import execute_sql

        rows = execute_sql(
            {"t": table}, "SELECT a, count(*) AS n FROM t GROUP BY a"
        )
        assert sum(r["n"] for r in rows) == len(table)


# ---------------------------------------------------------------------------
# Procrustes invariance
# ---------------------------------------------------------------------------


class TestProcrustesProperties:
    @given(
        npst.arrays(
            np.float64,
            st.tuples(st.integers(3, 25), st.just(2)),
            elements=st.floats(-10.0, 10.0, allow_nan=False),
        ),
        st.floats(0.0, 2 * np.pi),
        st.floats(0.5, 3.0),
        st.floats(-5.0, 5.0),
        st.floats(-5.0, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_similarity_transforms_align_perfectly(
        self, points, theta, scale, dx, dy
    ):
        from hypothesis import assume

        from repro.core.reduction.procrustes import procrustes_align

        # Degenerate (all-coincident) configurations are rejected by the
        # aligner; skip them.
        assume(np.ptp(points[:, 0]) + np.ptp(points[:, 1]) > 1e-6)
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        transformed = scale * (points @ rot) + np.array([dx, dy])
        _, disparity = procrustes_align(transformed, points)
        assert disparity == pytest.approx(0.0, abs=1e-9)
