"""Single-flight waiters clamp their wait to the request deadline.

The bugfix sweep: a waiter with a 30s timeout but 50ms of deadline left
must give up after ~50ms, and :class:`WaitTimeout` reports *which* bound
fired so the serving layer can tell a slow leader from an exhausted
request budget.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.deadline import Deadline, bind_deadline
from repro.core.singleflight import SingleFlightCache, WaitTimeout


@pytest.fixture()
def leader_gate():
    """A cache with one in-flight leader parked on an event."""
    cache = SingleFlightCache()
    release = threading.Event()
    leading = threading.Event()

    def compute():
        leading.set()
        release.wait(10.0)
        return "value"

    thread = threading.Thread(
        target=cache.get_or_compute, args=("key", compute), daemon=True
    )
    thread.start()
    assert leading.wait(5.0), "leader never started"
    yield cache
    release.set()
    thread.join(timeout=5.0)


class TestWaiterDeadlineClamp:
    def test_deadline_tighter_than_timeout_fires_first(self, leader_gate):
        deadline = Deadline(0.05)
        start = time.monotonic()
        with bind_deadline(deadline):
            with pytest.raises(WaitTimeout) as excinfo:
                leader_gate.get_or_compute("key", lambda: "x", timeout=30.0)
        elapsed = time.monotonic() - start
        assert excinfo.value.bound == "deadline"
        assert elapsed < 5.0, "waiter ignored the deadline clamp"

    def test_deadline_bounds_an_unbounded_wait(self, leader_gate):
        with bind_deadline(Deadline(0.05)):
            with pytest.raises(WaitTimeout) as excinfo:
                leader_gate.get_or_compute("key", lambda: "x", timeout=None)
        assert excinfo.value.bound == "deadline"

    def test_expired_deadline_waits_zero_not_negative(self, leader_gate):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        assert deadline.expired
        with bind_deadline(deadline):
            with pytest.raises(WaitTimeout) as excinfo:
                leader_gate.get_or_compute("key", lambda: "x", timeout=30.0)
        assert excinfo.value.bound == "deadline"

    def test_timeout_tighter_than_deadline_reports_timeout(self, leader_gate):
        with bind_deadline(Deadline(30.0)):
            with pytest.raises(WaitTimeout) as excinfo:
                leader_gate.get_or_compute("key", lambda: "x", timeout=0.05)
        assert excinfo.value.bound == "timeout"

    def test_no_deadline_keeps_plain_timeout(self, leader_gate):
        with pytest.raises(WaitTimeout) as excinfo:
            leader_gate.get_or_compute("key", lambda: "x", timeout=0.05)
        assert excinfo.value.bound == "timeout"

    def test_message_names_the_bound(self, leader_gate):
        with bind_deadline(Deadline(0.05)):
            with pytest.raises(WaitTimeout, match="deadline bound"):
                leader_gate.get_or_compute("key", lambda: "x", timeout=30.0)
