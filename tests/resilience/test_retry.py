"""RetryPolicy: backoff bounds, jitter determinism, deadline awareness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.deadline import Deadline, DeadlineExceeded, bind_deadline
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    RetryExhausted,
    RetryPolicy,
)


def _policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("sleeper", lambda s: None)
    kwargs.setdefault("metrics", obs.MetricsRegistry())
    return RetryPolicy(**kwargs)


class TestBackoff:
    @given(
        attempt=st.integers(min_value=0, max_value=30),
        base=st.floats(min_value=1e-4, max_value=1.0),
        cap=st.floats(min_value=1e-3, max_value=60.0),
        mult=st.floats(min_value=1.0, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200, deadline=None)
    def test_delay_within_bounds(self, attempt, base, cap, mult, seed):
        """Full jitter: every delay lies in [0, min(cap, base*mult^k)]."""
        policy = _policy(
            base_delay=base, max_delay=cap, multiplier=mult, seed=seed
        )
        delay = policy.next_delay(attempt)
        assert 0.0 <= delay <= min(cap, base * mult**attempt)

    def test_cap_grows_exponentially_then_plateaus(self):
        policy = _policy(base_delay=0.1, max_delay=0.4, multiplier=2.0)
        assert policy.backoff_cap(0) == pytest.approx(0.1)
        assert policy.backoff_cap(1) == pytest.approx(0.2)
        assert policy.backoff_cap(2) == pytest.approx(0.4)
        assert policy.backoff_cap(10) == pytest.approx(0.4)  # capped

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_jitter_deterministic_under_seed(self, seed):
        """Two policies with the same seed draw identical delay streams."""
        a = _policy(seed=seed)
        b = _policy(seed=seed)
        assert [a.next_delay(i) for i in range(8)] == [
            b.next_delay(i) for i in range(8)
        ]

    def test_different_seeds_differ(self):
        a = [_policy(seed=1).next_delay(i) for i in range(8)]
        b = [_policy(seed=2).next_delay(i) for i in range(8)]
        assert a != b


class TestCall:
    def test_success_first_try_records_no_retries(self):
        registry = obs.MetricsRegistry()
        policy = _policy(metrics=registry)
        assert policy.call(lambda: 42, site="op") == 42
        assert registry.counter("retry_attempts_total", site="op").value == 0

    def test_transient_fault_absorbed(self):
        registry = obs.MetricsRegistry()
        policy = _policy(max_attempts=4, metrics=registry)
        failures = iter([OSError("flaky"), OSError("flaky")])

        def fn():
            try:
                raise next(failures)
            except StopIteration:
                return "ok"

        assert policy.call(fn, site="op") == "ok"
        assert registry.counter("retry_attempts_total", site="op").value == 2

    def test_exhaustion_raises_with_last_error(self):
        policy = _policy(max_attempts=3)
        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(OSError("dead")), site="x")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last, OSError)
        assert "x" in str(excinfo.value)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("bad input")

        policy = _policy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.call(fn)
        assert len(calls) == 1

    def test_default_retryable_classes(self):
        policy = _policy()
        assert policy.is_retryable(OSError())
        assert policy.is_retryable(TimeoutError())
        assert policy.is_retryable(ConnectionError())  # OSError subclass
        assert not policy.is_retryable(ValueError())
        assert not policy.is_retryable(KeyError())
        assert DEFAULT_RETRYABLE == (OSError, TimeoutError)

    def test_max_attempts_one_never_retries(self):
        calls = []

        def fn():
            calls.append(1)
            raise OSError("nope")

        with pytest.raises(RetryExhausted):
            _policy(max_attempts=1).call(fn)
        assert len(calls) == 1


class TestDeadlineAwareness:
    def test_gives_up_when_deadline_cannot_cover_backoff(self):
        """A retry whose backoff would outlive the deadline raises
        DeadlineExceeded instead of sleeping past the budget."""
        now = [0.0]
        clock = lambda: now[0]  # noqa: E731
        slept: list[float] = []
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=10.0,  # backoff certainly exceeds the budget
            max_delay=10.0,
            seed=1,
            sleeper=slept.append,
            clock=clock,
            metrics=obs.MetricsRegistry(),
        )
        with bind_deadline(Deadline(0.001, clock=clock)):
            with pytest.raises(DeadlineExceeded):
                policy.call(lambda: (_ for _ in ()).throw(OSError()), site="op")
        assert slept == []  # never slept past the deadline

    def test_retries_freely_without_deadline(self):
        policy = _policy(max_attempts=3)
        with pytest.raises(RetryExhausted):
            policy.call(lambda: (_ for _ in ()).throw(OSError()))


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _policy(max_attempts=0)
        with pytest.raises(ValueError):
            _policy(base_delay=-1.0)
        with pytest.raises(ValueError):
            _policy(multiplier=0.5)
