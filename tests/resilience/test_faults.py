"""Fault injection: plan parsing, determinism, and the site API."""

from __future__ import annotations

import pytest

from repro import obs
from repro.resilience import faults
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_bytes,
    fault_point,
)


class TestPlanParsing:
    def test_compact_spec(self):
        plan = FaultPlan.parse(
            "storage.load.readings=error:0.2,stream.tick=latency:0.1:0.05",
            seed=7,
        )
        assert plan.seed == 7
        assert plan.specs[0] == FaultSpec(
            site="storage.load.readings", kind="error", rate=0.2
        )
        assert plan.specs[1].kind == "latency"
        assert plan.specs[1].seconds == pytest.approx(0.05)

    def test_compact_spec_defaults(self):
        (spec,) = FaultPlan.parse("storage.save=error").specs
        assert spec.rate == 1.0

    @pytest.mark.parametrize(
        "text",
        ["", "noequals", "=error", "a=error:x", "a=error:0.1:0.01:extra"],
    )
    def test_compact_spec_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="a", kind="error", rate=0.5, max_faults=3),
                FaultSpec(site="b", kind="truncate"),
            ),
            seed=11,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_dispatches_on_shape(self, tmp_path):
        doc = '{"seed": 3, "faults": [{"site": "x", "kind": "error"}]}'
        # Inline JSON.
        assert FaultPlan.load(doc).seed == 3
        # File path.
        path = tmp_path / "plan.json"
        path.write_text(doc)
        assert FaultPlan.load(str(path)).seed == 3
        # Compact spec (seed comes from the argument).
        assert FaultPlan.load("x=error:0.5", seed=9).seed == 9

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="error", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="error", max_faults=0)


def _injector(plan, **kwargs) -> FaultInjector:
    kwargs.setdefault("metrics", obs.MetricsRegistry())
    return FaultInjector(plan, **kwargs)


class TestInjector:
    def test_decisions_deterministic_per_seed(self):
        plan = FaultPlan.parse("site.a=error:0.3", seed=42)

        def decisions(injector, n=200):
            out = []
            for _ in range(n):
                try:
                    injector.check("site.a")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first = decisions(_injector(plan))
        second = decisions(_injector(plan))
        assert first == second
        assert any(first)  # some faults fired at 30%
        assert not all(first)

        other = decisions(_injector(FaultPlan.parse("site.a=error:0.3", seed=43)))
        assert other != first

    def test_site_streams_independent_of_interleaving(self):
        """Each site's decision stream depends only on its own call order."""
        plan = FaultPlan.parse("a=error:0.5,b=error:0.5", seed=1)

        def site_decisions(injector, order):
            out = {"a": [], "b": []}
            for site in order:
                try:
                    injector.check(site)
                    out[site].append(False)
                except InjectedFault:
                    out[site].append(True)
            return out

        interleaved = site_decisions(_injector(plan), ["a", "b"] * 50)
        grouped = site_decisions(_injector(plan), ["a"] * 50 + ["b"] * 50)
        assert interleaved == grouped

    def test_rate_roughly_respected(self):
        plan = FaultPlan.parse("s=error:0.1", seed=5)
        injector = _injector(plan)
        fired = 0
        for _ in range(1000):
            try:
                injector.check("s")
            except InjectedFault:
                fired += 1
        assert 50 <= fired <= 200  # ~10%, generous bounds

    def test_max_faults_caps_injections(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="s", kind="error", rate=1.0, max_faults=2),)
        )
        injector = _injector(plan)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.check("s")
        for _ in range(10):
            injector.check("s")  # cap reached: no more faults
        assert injector.n_injected == 2

    def test_latency_uses_sleeper(self):
        slept: list[float] = []
        plan = FaultPlan.parse("s=latency:1.0:0.25")
        injector = _injector(plan, sleeper=slept.append)
        injector.check("s")
        assert slept == [pytest.approx(0.25)]

    def test_truncate_shortens_payload(self):
        plan = FaultPlan.parse("s=truncate:1.0")
        injector = _injector(plan)
        data = b"0123456789"
        mangled = injector.mangle("s", data)
        assert len(mangled) < len(data)
        assert data.startswith(mangled)
        # Truncate specs never fire through check() (byte sites only).
        injector.check("s")

    def test_counts_and_metrics(self):
        registry = obs.MetricsRegistry()
        plan = FaultPlan.parse("s=error:1.0")
        injector = _injector(plan, metrics=registry)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.check("s")
        assert injector.counts() == {"s:error": 3}
        assert (
            registry.counter("faults_injected_total", site="s", kind="error").value
            == 3
        )

    def test_unknown_site_never_fires(self):
        injector = _injector(FaultPlan.parse("s=error:1.0"))
        injector.check("elsewhere")
        assert injector.n_injected == 0


class TestModuleGlobals:
    def test_fault_point_noop_without_plan(self):
        assert faults.active_injector() is None or True  # env plan may be armed
        # With no plan of our own installed, a fresh site is a no-op either
        # way (env plans target storage/stream sites, not this one).
        fault_point("tests.nonexistent.site")
        assert fault_bytes("tests.nonexistent.site", b"abc") == b"abc"

    def test_injected_context_arms_and_restores(self):
        previous = faults.active_injector()
        plan = FaultPlan.parse("ctx.site=error:1.0")
        with faults.injected(plan, metrics=obs.MetricsRegistry()) as injector:
            assert faults.active_injector() is injector
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("ctx.site")
            assert excinfo.value.site == "ctx.site"
        assert faults.active_injector() is previous

    def test_injected_contexts_nest(self):
        a = FaultPlan.parse("a=error:1.0")
        b = FaultPlan.parse("b=error:1.0")
        registry = obs.MetricsRegistry()
        with faults.injected(a, metrics=registry) as outer:
            with faults.injected(b, metrics=registry) as inner:
                assert faults.active_injector() is inner
                fault_point("a")  # inner plan doesn't cover site "a"
            assert faults.active_injector() is outer

    def test_disarmed_suspends_and_restores_same_injector(self):
        plan = FaultPlan.parse("d.site=error:1.0")
        with faults.injected(plan, metrics=obs.MetricsRegistry()) as injector:
            with faults.disarmed():
                assert faults.active_injector() is None
                fault_point("d.site")  # no-op while disarmed
            assert faults.active_injector() is injector
            with pytest.raises(InjectedFault):
                fault_point("d.site")

    def test_fault_bytes_mangles_under_plan(self):
        plan = FaultPlan.parse("bytes.site=truncate:1.0")
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            out = fault_bytes("bytes.site", b"0123456789")
        assert out == b"01234"
