"""CircuitBreaker state machine under an injected clock."""

from __future__ import annotations

import pytest

from repro import obs
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    BreakerOpen,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def _breaker(clock, **kwargs) -> CircuitBreaker:
    kwargs.setdefault("name", "test")
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("min_calls", 4)
    kwargs.setdefault("open_seconds", 30.0)
    kwargs.setdefault("metrics", obs.MetricsRegistry())
    return CircuitBreaker(clock=clock, **kwargs)


def _boom():
    raise OSError("dependency down")


class TestClosedToOpen:
    def test_stays_closed_below_min_calls(self, clock):
        """A 100% failure rate on too few calls must not trip the breaker."""
        breaker = _breaker(clock, min_calls=4)
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_threshold_with_volume(self, clock):
        breaker = _breaker(clock, min_calls=4, failure_threshold=0.5)
        for _ in range(2):
            breaker.call(lambda: "ok")
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.state == OPEN  # 2/4 = 0.5 >= 0.5

    def test_stays_closed_below_threshold(self, clock):
        breaker = _breaker(clock, min_calls=4, failure_threshold=0.5)
        for _ in range(3):
            breaker.call(lambda: "ok")
        with pytest.raises(OSError):
            breaker.call(_boom)
        assert breaker.state == CLOSED  # 1/4 = 0.25 < 0.5

    def test_uncounted_exceptions_do_not_trip(self, clock):
        """Input errors pass through without charging the breaker."""
        breaker = _breaker(clock, min_calls=1, failure_threshold=0.1)
        for _ in range(10):
            with pytest.raises(ValueError):
                breaker.call(lambda: (_ for _ in ()).throw(ValueError("bad")))
        assert breaker.state == CLOSED
        assert breaker.failure_rate == 0.0


class TestOpenBehaviour:
    def _tripped(self, clock, **kwargs) -> CircuitBreaker:
        breaker = _breaker(clock, min_calls=2, **kwargs)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.state == OPEN
        return breaker

    def test_open_refuses_without_calling(self, clock):
        breaker = self._tripped(clock)
        calls = []
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.call(lambda: calls.append(1))
        assert calls == []
        assert excinfo.value.name == "test"
        assert not breaker.allow()

    def test_cooldown_moves_to_half_open(self, clock):
        breaker = self._tripped(clock, open_seconds=30.0)
        clock.advance(29.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_budget_limits_trials(self, clock):
        breaker = self._tripped(clock, open_seconds=30.0, half_open_max_calls=1)
        clock.advance(31.0)
        assert breaker.allow()  # the one trial slot
        assert not breaker.allow()  # budget spent

    def test_half_open_success_closes_and_clears_window(self, clock):
        breaker = self._tripped(clock, open_seconds=30.0)
        clock.advance(31.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED
        # The window was reset: the old failures no longer poison the rate.
        assert breaker.failure_rate == 0.0

    def test_half_open_failure_reopens_for_full_cooldown(self, clock):
        breaker = self._tripped(clock, open_seconds=30.0)
        clock.advance(31.0)
        with pytest.raises(OSError):
            breaker.call(_boom)
        assert breaker.state == OPEN
        clock.advance(29.0)
        assert breaker.state == OPEN  # cooldown restarted at the re-open
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN


class TestTelemetry:
    def test_state_gauge_tracks_transitions(self, clock):
        registry = obs.MetricsRegistry()
        breaker = _breaker(clock, min_calls=2, metrics=registry)
        gauge = registry.gauge("breaker_state", breaker="test")
        assert gauge.value == STATE_VALUES[CLOSED]
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert gauge.value == STATE_VALUES[OPEN]
        clock.advance(31.0)
        assert breaker.state == HALF_OPEN
        assert gauge.value == STATE_VALUES[HALF_OPEN]
        breaker.call(lambda: "ok")
        assert gauge.value == STATE_VALUES[CLOSED]

    def test_transition_counter(self, clock):
        registry = obs.MetricsRegistry()
        breaker = _breaker(clock, min_calls=2, metrics=registry)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert (
            registry.counter(
                "breaker_transitions_total", breaker="test", to=OPEN
            ).value
            == 1
        )

    def test_to_record_snapshot(self, clock):
        breaker = _breaker(clock, min_calls=4)
        breaker.call(lambda: "ok")
        with pytest.raises(OSError):
            breaker.call(_boom)
        record = breaker.to_record()
        assert record["name"] == "test"
        assert record["state"] == CLOSED
        assert record["windowed_calls"] == 2
        assert record["failure_rate"] == pytest.approx(0.5)


class TestValidation:
    def test_rejects_bad_parameters(self, clock):
        with pytest.raises(ValueError):
            _breaker(clock, failure_threshold=0.0)
        with pytest.raises(ValueError):
            _breaker(clock, failure_threshold=1.5)
        with pytest.raises(ValueError):
            _breaker(clock, min_calls=0)
        with pytest.raises(ValueError):
            _breaker(clock, open_seconds=0.0)
