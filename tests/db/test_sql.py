"""Tests for the SQL SELECT dialect."""

import numpy as np
import pytest

from repro.db.sql import SqlError, execute_sql, parse_select, tokenize
from repro.db.table import ColumnSpec, Schema, Table


@pytest.fixture()
def tables():
    schema = Schema(
        [
            ColumnSpec("pid", "int"),
            ColumnSpec("height", "float"),
            ColumnSpec("city", "str"),
        ]
    )
    table = Table("people", schema)
    table.insert(
        [
            {"pid": 1, "height": 1.80, "city": "cph"},
            {"pid": 2, "height": 1.65, "city": "aar"},
            {"pid": 3, "height": 1.75, "city": "cph"},
            {"pid": 4, "height": 1.90, "city": "odn"},
            {"pid": 5, "height": 1.70, "city": "aar"},
        ]
    )
    return {"people": table}


class TestTokenizer:
    def test_token_kinds(self):
        tokens = tokenize("SELECT a, 'it''s', 3.5, -2 FROM t WHERE x >= 1")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert "string" in kinds and "number" in kinds
        string = next(t for t in tokens if t.kind == "string")
        assert string.value == "it's"

    def test_negative_numbers(self):
        tokens = tokenize("-3 -4.5")
        assert [t.value for t in tokens] == [-3, -4.5]

    def test_rejects_bad_character(self):
        with pytest.raises(SqlError, match="unexpected character"):
            tokenize("SELECT @ FROM t")


class TestParser:
    def test_full_statement_shape(self):
        stmt = parse_select(
            "SELECT city, count(*) AS n FROM people WHERE height > 1.7 "
            "GROUP BY city ORDER BY n DESC LIMIT 2"
        )
        assert stmt.table == "people"
        assert stmt.group_by == "city"
        assert stmt.order_by == "n"
        assert stmt.descending is True
        assert stmt.limit == 2

    def test_select_star(self):
        assert parse_select("SELECT * FROM t").items is None

    def test_errors(self):
        for bad in (
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t LIMIT -1",
            "SELECT median(a) FROM t",
            "SELECT sum(*) FROM t",
            "SELECT a FROM t extra",
            "SELECT a FROM t WHERE a LIKE 'x'",
        ):
            with pytest.raises(SqlError):
                parse_select(bad)


class TestExecution:
    def test_select_star(self, tables):
        rows = execute_sql(tables, "SELECT * FROM people")
        assert len(rows) == 5
        assert set(rows[0]) == {"pid", "height", "city"}

    def test_projection_and_alias(self, tables):
        rows = execute_sql(tables, "SELECT pid AS id, city FROM people LIMIT 1")
        assert rows[0] == {"id": 1, "city": "cph"}

    def test_where_and_or_not(self, tables):
        rows = execute_sql(
            tables,
            "SELECT pid FROM people WHERE (city = 'cph' OR city = 'aar') "
            "AND NOT height < 1.7",
        )
        assert sorted(r["pid"] for r in rows) == [1, 3, 5]

    def test_in_and_between(self, tables):
        rows = execute_sql(
            tables,
            "SELECT pid FROM people WHERE city IN ('aar', 'odn') "
            "AND height BETWEEN 1.6 AND 1.7",
        )
        assert sorted(r["pid"] for r in rows) == [2, 5]

    def test_order_and_limit(self, tables):
        rows = execute_sql(
            tables, "SELECT pid FROM people ORDER BY height DESC LIMIT 2"
        )
        assert [r["pid"] for r in rows] == [4, 1]

    def test_inequality_operators(self, tables):
        rows = execute_sql(tables, "SELECT pid FROM people WHERE pid <> 3")
        assert len(rows) == 4
        rows = execute_sql(tables, "SELECT pid FROM people WHERE pid != 3")
        assert len(rows) == 4

    def test_global_aggregates(self, tables):
        rows = execute_sql(
            tables,
            "SELECT count(*) AS n, avg(height) AS mean_h, max(height) AS top "
            "FROM people WHERE city = 'cph'",
        )
        assert rows == [
            {"n": 2, "mean_h": pytest.approx(1.775), "top": 1.80}
        ]

    def test_group_by_with_aggregates(self, tables):
        rows = execute_sql(
            tables,
            "SELECT city, count(*) AS n, min(height) AS low FROM people "
            "GROUP BY city ORDER BY n DESC",
        )
        assert rows[0]["city"] in ("cph", "aar")
        assert rows[0]["n"] == 2
        by_city = {r["city"]: r for r in rows}
        assert by_city["odn"]["n"] == 1
        assert by_city["aar"]["low"] == 1.65

    def test_group_by_key_alias(self, tables):
        rows = execute_sql(
            tables, "SELECT city AS town, count(*) AS n FROM people GROUP BY city"
        )
        assert "town" in rows[0]

    def test_semantic_errors(self, tables):
        with pytest.raises(SqlError, match="unknown table"):
            execute_sql(tables, "SELECT * FROM nope")
        with pytest.raises(SqlError, match="no column"):
            execute_sql(tables, "SELECT wat FROM people")
        with pytest.raises(SqlError, match="GROUP BY"):
            execute_sql(tables, "SELECT pid, count(*) FROM people")
        with pytest.raises(SqlError, match="GROUP BY key"):
            execute_sql(
                tables, "SELECT pid, count(*) AS n FROM people GROUP BY city"
            )
        with pytest.raises(SqlError):
            execute_sql(
                tables, "SELECT * FROM people GROUP BY city"
            )


class TestDatabaseIntegration:
    def test_sql_against_energy_database(self, small_db):
        rows = small_db.sql(
            "SELECT zone, count(*) AS n, avg(lat) AS mid FROM customers "
            "GROUP BY zone ORDER BY n DESC"
        )
        total = sum(r["n"] for r in rows)
        assert total == len(small_db)
        want = len(small_db.ids_in_zone(rows[0]["zone"]))
        assert rows[0]["n"] == want

    def test_sql_where_matches_query_api(self, small_db):
        rows = small_db.sql(
            "SELECT customer_id FROM customers WHERE zone = 'residential' "
            "AND lon > 12.55"
        )
        from repro.db.query import Compare

        want = (
            small_db.query()
            .where(Compare("zone", "==", "residential"))
            .where(Compare("lon", ">", 12.55))
            .count()
        )
        assert len(rows) == want

    def test_rest_endpoint(self, small_session, small_city):
        from repro.server import TestClient, VapApp

        client = TestClient(VapApp(small_session))
        resp = client.post(
            "/api/sql",
            json={"query": "SELECT archetype, count(*) AS n FROM customers GROUP BY archetype"},
        )
        assert resp.ok
        assert sum(r["n"] for r in resp.json["rows"]) == len(small_session.db)
        bad = client.post("/api/sql", json={"query": "DROP TABLE customers"})
        assert bad.status == 400
        missing = client.post("/api/sql", json={})
        assert missing.status == 400
