"""Tests for the three spatial indexes, validated against brute force."""

import numpy as np
import pytest

from repro.db.index.grid import GridIndex
from repro.db.index.quadtree import QuadTree
from repro.db.index.rtree import RTree
from repro.db.spatial import BBox, Circle, Point

INDEX_CLASSES = [GridIndex, QuadTree, RTree]


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(77)
    n = 400
    # Skewed distribution: dense blob + sparse background, plus duplicates.
    blob = rng.normal([12.57, 55.68], 0.005, size=(n // 2, 2))
    sparse = rng.uniform([12.40, 55.55], [12.75, 55.80], size=(n // 2 - 3, 2))
    duplicates = np.tile([[12.50, 55.60]], (3, 1))
    pts = np.vstack([blob, sparse, duplicates])
    ids = np.arange(pts.shape[0]) * 7 + 3  # non-contiguous ids
    return ids, pts[:, 0], pts[:, 1]


def brute_bbox(ids, lons, lats, box):
    hit = box.contains_many(lons, lats)
    return sorted(ids[hit].tolist())


def brute_radius(ids, lons, lats, circle):
    hit = circle.contains_many(lons, lats)
    return sorted(ids[hit].tolist())


def brute_knn(ids, lons, lats, lon, lat, k):
    d2 = (lons - lon) ** 2 + (lats - lat) ** 2
    order = np.argsort(d2, kind="stable")[:k]
    return ids[order]


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestIndexCorrectness:
    def test_len(self, cls, cloud):
        ids, lons, lats = cloud
        assert len(cls(ids, lons, lats)) == ids.size

    def test_bbox_queries_match_brute_force(self, cls, cloud, rng):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        for _ in range(25):
            x0, x1 = sorted(rng.uniform(12.35, 12.80, 2))
            y0, y1 = sorted(rng.uniform(55.50, 55.85, 2))
            box = BBox(x0, y0, x1, y1)
            assert index.query_bbox(box).tolist() == brute_bbox(
                ids, lons, lats, box
            )

    def test_empty_bbox_result(self, cls, cloud):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        out = index.query_bbox(BBox(0.0, 0.0, 1.0, 1.0))
        assert out.size == 0

    def test_radius_queries_match_brute_force(self, cls, cloud, rng):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        for _ in range(25):
            circle = Circle(
                Point(rng.uniform(12.4, 12.75), rng.uniform(55.55, 55.8)),
                rng.uniform(0.001, 0.1),
            )
            assert index.query_radius(circle).tolist() == brute_radius(
                ids, lons, lats, circle
            )

    def test_geodesic_radius(self, cls, cloud):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        circle = Circle(Point(12.57, 55.68), 0.0, radius_m=800.0)
        assert index.query_radius(circle).tolist() == brute_radius(
            ids, lons, lats, circle
        )

    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_knn_distances_match_brute_force(self, cls, cloud, rng, k):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        pos_of = {int(i): p for p, i in enumerate(ids)}
        for _ in range(10):
            lon = rng.uniform(12.4, 12.75)
            lat = rng.uniform(55.55, 55.8)
            got = index.nearest(lon, lat, k=k)
            want = brute_knn(ids, lons, lats, lon, lat, k)
            # Distances must match exactly (ties may reorder ids).
            def dist(seq):
                rows = [pos_of[int(i)] for i in seq]
                return np.sort(
                    (lons[rows] - lon) ** 2 + (lats[rows] - lat) ** 2
                )
            np.testing.assert_allclose(dist(got), dist(want))

    def test_knn_k_larger_than_n(self, cls):
        index = cls([1, 2, 3], [0.0, 1.0, 2.0], [0.0, 0.0, 0.0])
        assert index.nearest(0.0, 0.0, k=10).size == 3

    def test_knn_rejects_bad_k(self, cls, cloud):
        ids, lons, lats = cloud
        index = cls(ids, lons, lats)
        with pytest.raises(ValueError):
            index.nearest(0.0, 0.0, k=0)

    def test_rejects_empty(self, cls):
        with pytest.raises(ValueError):
            cls([], [], [])

    def test_rejects_duplicate_ids(self, cls):
        with pytest.raises(ValueError, match="duplicates"):
            cls([1, 1], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_ragged_input(self, cls):
        with pytest.raises(ValueError):
            cls([1, 2], [0.0], [0.0, 1.0])

    def test_single_point(self, cls):
        index = cls([9], [12.5], [55.6])
        assert index.query_bbox(BBox(12.0, 55.0, 13.0, 56.0)).tolist() == [9]
        assert index.nearest(0.0, 0.0, k=1).tolist() == [9]

    def test_collinear_points(self, cls):
        """Degenerate extent on one axis must not break construction."""
        n = 20
        index = cls(list(range(n)), np.linspace(0, 1, n), np.zeros(n))
        box = BBox(0.2, -0.1, 0.4, 0.1)
        got = index.query_bbox(box).tolist()
        want = [i for i, x in enumerate(np.linspace(0, 1, n)) if 0.2 <= x <= 0.4]
        assert got == want

    def test_coincident_points(self, cls):
        """Many identical positions (quadtree split guard)."""
        n = 40
        index = cls(list(range(n)), np.full(n, 1.0), np.full(n, 2.0))
        out = index.query_bbox(BBox(0.9, 1.9, 1.1, 2.1))
        assert out.size == n
        assert index.nearest(1.0, 2.0, k=5).size == 5
