"""Tests for the on-disk database format."""

import json

import numpy as np
import pytest

from repro.db.storage import (
    META_FILE,
    READINGS_FILE,
    StorageError,
    load_database,
    save_database,
)


class TestRoundTrip:
    def test_exact_round_trip(self, small_db, tmp_path):
        save_database(small_db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert len(loaded) == len(small_db)
        assert loaded.index_kind == small_db.index_kind
        np.testing.assert_array_equal(
            loaded.readings.customer_ids, small_db.readings.customer_ids
        )
        # NaN cells and values round-trip bit-exactly via npz.
        np.testing.assert_array_equal(
            loaded.readings.matrix, small_db.readings.matrix
        )
        cid = small_db.customer_ids[0]
        assert loaded.customer(cid) == small_db.customer(cid)

    def test_queries_identical_after_reload(self, small_db, tmp_path):
        save_database(small_db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        box = small_db.bounding_box()
        mid = box.center
        from repro.db.spatial import BBox

        query = BBox(box.min_lon, box.min_lat, mid.lon, mid.lat)
        np.testing.assert_array_equal(
            loaded.ids_in_bbox(query), small_db.ids_in_bbox(query)
        )

    def test_overwrite_save(self, small_db, tmp_path):
        target = tmp_path / "store"
        save_database(small_db, target)
        save_database(small_db, target)  # no error on re-save
        assert load_database(target).readings.n_steps == small_db.readings.n_steps


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError, match="meta.json"):
            load_database(tmp_path / "nope")

    def test_corrupt_meta(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        (target / META_FILE).write_text("{not json")
        with pytest.raises(StorageError, match="JSON"):
            load_database(target)

    def test_wrong_version(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        meta["format_version"] = 99
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            load_database(target)

    def test_missing_readings_file(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        (target / READINGS_FILE).unlink()
        with pytest.raises(StorageError, match=READINGS_FILE):
            load_database(target)

    def test_shape_mismatch_detected(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        meta["n_steps"] = 1
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="disagrees"):
            load_database(target)
