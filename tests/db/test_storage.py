"""Tests for the on-disk database format."""

import json

import numpy as np
import pytest

from repro import obs
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy
from repro.db.storage import (
    CUSTOMERS_FILE,
    META_FILE,
    READINGS_FILE,
    StorageError,
    load_database,
    save_database,
)


class TestRoundTrip:
    def test_exact_round_trip(self, small_db, tmp_path):
        save_database(small_db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert len(loaded) == len(small_db)
        assert loaded.index_kind == small_db.index_kind
        np.testing.assert_array_equal(
            loaded.readings.customer_ids, small_db.readings.customer_ids
        )
        # NaN cells and values round-trip bit-exactly via npz.
        np.testing.assert_array_equal(
            loaded.readings.matrix, small_db.readings.matrix
        )
        cid = small_db.customer_ids[0]
        assert loaded.customer(cid) == small_db.customer(cid)

    def test_queries_identical_after_reload(self, small_db, tmp_path):
        save_database(small_db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        box = small_db.bounding_box()
        mid = box.center
        from repro.db.spatial import BBox

        query = BBox(box.min_lon, box.min_lat, mid.lon, mid.lat)
        np.testing.assert_array_equal(
            loaded.ids_in_bbox(query), small_db.ids_in_bbox(query)
        )

    def test_overwrite_save(self, small_db, tmp_path):
        target = tmp_path / "store"
        save_database(small_db, target)
        save_database(small_db, target)  # no error on re-save
        assert load_database(target).readings.n_steps == small_db.readings.n_steps


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError, match="meta.json"):
            load_database(tmp_path / "nope")

    def test_corrupt_meta(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        (target / META_FILE).write_text("{not json")
        with pytest.raises(StorageError, match="JSON"):
            load_database(target)

    def test_wrong_version(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        meta["format_version"] = 99
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="version"):
            load_database(target)

    def test_missing_readings_file(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        (target / READINGS_FILE).unlink()
        with pytest.raises(StorageError, match=READINGS_FILE):
            load_database(target)

    def test_shape_mismatch_detected(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        meta["n_steps"] = 1
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="disagrees"):
            load_database(target)

    @pytest.mark.parametrize("key", ["n_customers", "n_steps"])
    def test_missing_meta_key_is_storage_error(self, small_db, tmp_path, key):
        """Regression: a truncated meta.json used to escape as a bare
        KeyError; it must surface as a StorageError naming the key."""
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        del meta[key]
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match=key):
            load_database(target)

    def test_non_integer_meta_key_rejected(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        meta = json.loads((target / META_FILE).read_text())
        meta["n_customers"] = "sixty"
        (target / META_FILE).write_text(json.dumps(meta))
        with pytest.raises(StorageError, match="non-negative integer"):
            load_database(target)

    def test_customer_count_cross_check(self, small_db, tmp_path):
        """customers.csv torn to fewer rows than readings.npz covers."""
        target = save_database(small_db, tmp_path / "store")
        csv_path = target / CUSTOMERS_FILE
        lines = csv_path.read_text().splitlines(keepends=True)
        csv_path.write_text("".join(lines[:-3]))  # drop the last rows
        meta = json.loads((target / META_FILE).read_text())
        meta["n_customers"] = len(lines) - 4  # keep meta self-consistent
        with pytest.raises(StorageError, match="torn"):
            load_database(target)

    def test_customer_id_cross_check(self, small_db, tmp_path):
        """Same counts but different ids across the two payload files."""
        target = save_database(small_db, tmp_path / "store")
        with np.load(target / READINGS_FILE) as payload:
            ids = payload["customer_ids"].copy()
            matrix = payload["matrix"]
            start_hour = payload["start_hour"]
            ids[0] = 999_999  # an id customers.csv does not list
            np.savez_compressed(
                target / READINGS_FILE,
                customer_ids=ids,
                matrix=matrix,
                start_hour=start_hour,
            )
        with pytest.raises(StorageError, match="999999"):
            load_database(target)


def _fail_fast_policy() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=4,
        base_delay=0.0,
        max_delay=0.0,
        sleeper=lambda s: None,
        metrics=obs.MetricsRegistry(),
    )


class TestCrashSafety:
    @pytest.mark.parametrize(
        "site",
        ["storage.save.customers", "storage.save.readings"],
    )
    def test_torn_save_leaves_old_data_intact(self, small_db, tmp_path, site):
        """Regression for the torn-save bug: killing a save mid-way must
        leave the previous data set fully loadable, with no staging
        leftovers to confuse the next save."""
        with faults.disarmed():  # setup must not see an env chaos plan
            target = save_database(small_db, tmp_path / "store")
            before = load_database(target, retry=None)
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(site=site, kind="error", rate=1.0),)
        )
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            with pytest.raises(OSError):
                save_database(small_db, target, retry=None)
        # Old data still loads, bit-for-bit.
        with faults.disarmed():
            after = load_database(target, retry=None)
        assert len(after) == len(before)
        np.testing.assert_array_equal(
            after.readings.matrix, before.readings.matrix
        )
        # The failed save cleaned up after itself.
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "store"]
        assert leftovers == []

    def test_torn_meta_write_detected_on_load(self, small_db, tmp_path):
        """A truncated meta.json (torn byte write) is caught on load as a
        StorageError, never a KeyError/JSONDecodeError escaping raw."""
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(site="storage.save.meta", kind="truncate"),
            )
        )
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            target = save_database(small_db, tmp_path / "store", retry=None)
        with faults.disarmed(), pytest.raises(StorageError):
            load_database(target, retry=None)

    def test_save_retries_through_transient_faults(self, small_db, tmp_path):
        """One injected fault, then success: the default-on retry makes the
        save complete without the caller noticing."""
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    site="storage.save.readings",
                    kind="error",
                    rate=1.0,
                    max_faults=1,
                ),
            )
        )
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            target = save_database(
                small_db, tmp_path / "store", retry=_fail_fast_policy()
            )
        with faults.disarmed():
            assert len(load_database(target, retry=None)) == len(small_db)

    def test_load_retries_through_transient_faults(self, small_db, tmp_path):
        target = save_database(small_db, tmp_path / "store")
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    site="storage.load.readings",
                    kind="error",
                    rate=1.0,
                    max_faults=2,
                ),
            )
        )
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            loaded = load_database(target, retry=_fail_fast_policy())
        assert len(loaded) == len(small_db)

    def test_interrupted_save_staging_is_reused_safely(self, small_db, tmp_path):
        """A crash that somehow leaves a stale staging dir behind must not
        poison the next save."""
        target = tmp_path / "store"
        save_database(small_db, target)
        staging = tmp_path / ".store.staging"
        staging.mkdir()
        (staging / "garbage").write_text("stale")
        save_database(small_db, target)
        assert not staging.exists()
        with faults.disarmed():
            assert len(load_database(target, retry=None)) == len(small_db)


class TestShardedRoundTrip:
    """The on-disk format is shard-count-agnostic.

    A sharded database saves as one flat artifact; loading may pick any
    shard count (including 1) and must reproduce the same data
    bit-exactly.  The CI chaos job runs these under an injected fault
    plan, so the sharded paths also prove they sit on the retrying,
    crash-safe save/load core.
    """

    def test_save_sharded_load_any_shard_count(self, small_city, tmp_path):
        from repro.db.sharding import ShardedEnergyDatabase

        db = ShardedEnergyDatabase(small_city.customers, small_city.raw, n_shards=4)
        save_database(db, tmp_path / "store")
        flat = load_database(tmp_path / "store")
        assert not hasattr(flat, "shard_ids")
        np.testing.assert_array_equal(flat.readings.matrix, db.readings.matrix)
        # shards=1 keeps the single-lock engine, like build_database.
        assert not hasattr(
            load_database(tmp_path / "store", shards=1), "shard_ids"
        )
        for n in (3, 8):
            loaded = load_database(tmp_path / "store", shards=n)
            assert loaded.n_shards == n
            assert loaded.customer_ids == db.customer_ids
            np.testing.assert_array_equal(
                np.asarray(loaded.readings.customer_ids),
                np.asarray(db.readings.customer_ids),
            )
            np.testing.assert_array_equal(
                loaded.readings.matrix, db.readings.matrix
            )

    def test_save_flat_load_sharded(self, small_db, tmp_path):
        save_database(small_db, tmp_path / "store")
        loaded = load_database(tmp_path / "store", shards=2)
        assert loaded.n_shards == 2
        assert loaded.index_kind == small_db.index_kind
        np.testing.assert_array_equal(
            loaded.readings.matrix, small_db.readings.matrix
        )
        box = small_db.bounding_box()
        assert loaded.bounding_box() == box


class TestTenantStorage:
    def test_tenant_directories_are_isolated(self, small_city, tmp_path):
        from repro.data.generator.simulate import CityConfig, generate_city
        from repro.db.engine import EnergyDatabase
        from repro.db.storage import (
            list_tenant_databases,
            load_tenant_database,
            save_tenant_database,
        )

        other_city = generate_city(CityConfig(n_customers=30, n_days=7, seed=9))
        acme = EnergyDatabase(small_city.customers, small_city.raw)
        globex = EnergyDatabase(other_city.customers, other_city.raw)
        root = tmp_path / "tenants"
        save_tenant_database(acme, root, "acme")
        save_tenant_database(globex, root, "globex")
        assert list_tenant_databases(root) == ["acme", "globex"]

        back_acme = load_tenant_database(root, "acme")
        back_globex = load_tenant_database(root, "globex", shards=3)
        assert len(back_acme) == len(acme)
        assert len(back_globex) == len(globex)
        np.testing.assert_array_equal(
            back_acme.readings.matrix, acme.readings.matrix
        )
        np.testing.assert_array_equal(
            back_globex.readings.matrix, globex.readings.matrix
        )
        # Re-saving one tenant never touches the other's files.
        before = sorted(
            p.relative_to(root) for p in (root / "globex").rglob("*")
        )
        save_tenant_database(acme, root, "acme")
        after = sorted(
            p.relative_to(root) for p in (root / "globex").rglob("*")
        )
        assert before == after

    def test_hostile_tenant_id_cannot_escape_root(self, small_db, tmp_path):
        from repro.db.storage import save_tenant_database, tenant_directory

        for bad in ("../evil", "a/b", "", ".hidden", "x" * 65):
            with pytest.raises(ValueError, match="tenant id"):
                tenant_directory(tmp_path, bad)
            with pytest.raises(ValueError, match="tenant id"):
                save_tenant_database(small_db, tmp_path, bad)
        assert list(tmp_path.iterdir()) == []
