"""Differential equivalence: sharded results are bit-identical to unsharded.

The sharded data plane's contract is not "approximately the same answer"
but *the same bytes*: for every query family (bbox/radius/zone spatial
lookups, time-range reads, demand aggregation, group-by, top-k, SQL) a
:class:`~repro.db.sharding.ShardedEnergyDatabase` at any shard count must
reproduce the single-shard :class:`~repro.db.engine.EnergyDatabase`
exactly.  Hypothesis generates the query workloads; the assertions compare
raw buffer bytes (``tobytes``), which catches even NaN-payload or signed
zero drift that ``==`` would miss.

Shard counts {1, 2, 3, 8} cover the degenerate single-shard wrapper, a
count that divides the population unevenly, and one sparse enough to leave
hash gaps.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.timeseries import HourWindow
from repro.db.engine import DEMAND_STATISTICS, EnergyDatabase
from repro.db.query import Between, Compare, IsIn
from repro.db.sharding import ShardedEnergyDatabase, shard_of
from repro.db.spatial import BBox, Circle, Point

SHARD_COUNTS = (1, 2, 3, 8)

UNIT = st.floats(0.0, 1.0, allow_nan=False)


@functools.lru_cache(maxsize=1)
def _fixtures():
    """One city, one reference engine, one sharded db per shard count.

    Built lazily at module level (not as pytest fixtures) so hypothesis
    can reuse them across examples without function-scoped-fixture
    health-check noise.  Read-only: mutation tests build their own city.
    """
    city = generate_city(CityConfig(n_customers=60, n_days=21, seed=101))
    ref = EnergyDatabase(city.customers, city.raw)
    sharded = {
        n: ShardedEnergyDatabase(city.customers, city.raw, n_shards=n)
        for n in SHARD_COUNTS
    }
    return city, ref, sharded


def _bits(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array).tobytes()


def _assert_same_array(a: np.ndarray, b: np.ndarray) -> None:
    """Bit-identical: same dtype, same shape, same buffer bytes."""
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert _bits(a) == _bits(b)


def _bbox_from(fracs) -> BBox:
    _, ref, _ = _fixtures()
    full = ref.bounding_box()
    lons = sorted(
        full.min_lon + f * (full.max_lon - full.min_lon) for f in fracs[:2]
    )
    lats = sorted(
        full.min_lat + f * (full.max_lat - full.min_lat) for f in fracs[2:]
    )
    return BBox(lons[0], lats[0], lons[1], lats[1])


def _window_from(fracs, min_width: int = 1) -> HourWindow:
    _, ref, _ = _fixtures()
    span = ref.time_span
    a, b = sorted(
        span.start_hour + int(f * (span.n_hours - min_width)) for f in fracs
    )
    return HourWindow(a, b + min_width)


class TestShardAssignment:
    def test_fnv1a_pinned(self):
        # Saved shard layouts and replayed streams depend on this hash
        # never changing — pin concrete values, not just properties.
        assert [shard_of(i, 8) for i in range(10)] == [
            5, 4, 7, 6, 1, 0, 3, 2, 5, 4,
        ]
        assert [shard_of(i, 3) for i in range(10)] == [
            1, 0, 0, 2, 0, 2, 2, 1, 2, 1,
        ]
        assert shard_of(123456789, 16) == 9

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of(1, 0)

    def test_shards_partition_the_population(self):
        _, ref, sharded = _fixtures()
        for n, db in sharded.items():
            sizes = db.shard_sizes()
            assert sum(sizes.values()) == len(ref)
            gathered: set[int] = set()
            for sid in db.shard_ids:
                members = set(db.shard(sid).customer_ids)
                assert not (gathered & members), "shards overlap"
                assert all(shard_of(cid, n) == sid for cid in members)
                gathered |= members
            assert gathered == set(ref.customer_ids)


class TestStaticEquivalence:
    """Whole-database views, no hypothesis needed."""

    def test_metadata(self):
        _, ref, sharded = _fixtures()
        for db in sharded.values():
            assert len(db) == len(ref)
            assert db.customer_ids == sorted(ref.customer_ids)
            assert db.time_span == ref.time_span
            assert db.bounding_box() == ref.bounding_box()

    def test_readings_bit_identical(self):
        _, ref, sharded = _fixtures()
        want = ref.readings
        assert np.isnan(want.matrix).any(), "raw city should contain gaps"
        for db in sharded.values():
            got = db.readings
            assert list(got.customer_ids) == list(want.customer_ids)
            assert got.start_hour == want.start_hour
            _assert_same_array(got.matrix, want.matrix)

    def test_table_keeps_insertion_order(self):
        _, ref, sharded = _fixtures()
        for db in sharded.values():
            for name in ("customer_id", "lon", "lat", "zone", "archetype"):
                _assert_same_array(db.table.column(name), ref.table.column(name))

    def test_sql(self):
        _, ref, sharded = _fixtures()
        statements = [
            "SELECT customer_id, lon, lat FROM customers WHERE lat > 0 "
            "ORDER BY customer_id",
            "SELECT zone, count(*) AS n, avg(lat) AS lat FROM customers "
            "GROUP BY zone",
        ]
        for statement in statements:
            want = ref.sql(statement)
            for db in sharded.values():
                assert db.sql(statement) == want

    def test_customer_lookup_and_errors(self):
        _, ref, sharded = _fixtures()
        cid = ref.customer_ids[0]
        missing = max(ref.customer_ids) + 1
        for db in sharded.values():
            assert db.customer(cid) == ref.customer(cid)
            with pytest.raises(KeyError):
                db.customer(missing)
            with pytest.raises(KeyError):
                db.shard_of_customer(missing)

    def test_parallel_false_matches_parallel_true(self):
        city, _, sharded = _fixtures()
        serial = ShardedEnergyDatabase(
            city.customers, city.raw, n_shards=3, parallel=False
        )
        window = HourWindow(0, 24 * 7)
        _assert_same_array(serial.readings.matrix, sharded[3].readings.matrix)
        _assert_same_array(
            serial.demand(window, None, "mean")[1],
            sharded[3].demand(window, None, "mean")[1],
        )
        assert (
            serial.group_by("zone", {"n": ("customer_id", "count")})
            == sharded[3].group_by("zone", {"n": ("customer_id", "count")})
        )


class TestSpatialWorkloads:
    @settings(max_examples=25, deadline=None)
    @given(fracs=st.tuples(UNIT, UNIT, UNIT, UNIT))
    def test_bbox(self, fracs):
        _, ref, sharded = _fixtures()
        box = _bbox_from(fracs)
        want = np.sort(np.asarray(ref.ids_in_bbox(box), dtype=np.int64))
        for db in sharded.values():
            _assert_same_array(db.ids_in_bbox(box), want)

    @settings(max_examples=25, deadline=None)
    @given(fracs=st.tuples(UNIT, UNIT), radius=st.floats(1.0, 5000.0))
    def test_radius(self, fracs, radius):
        _, ref, sharded = _fixtures()
        full = ref.bounding_box()
        center = Point(
            full.min_lon + fracs[0] * (full.max_lon - full.min_lon),
            full.min_lat + fracs[1] * (full.max_lat - full.min_lat),
        )
        circle = Circle(center, radius)
        want = np.sort(np.asarray(ref.ids_in_radius(circle), dtype=np.int64))
        for db in sharded.values():
            _assert_same_array(db.ids_in_radius(circle), want)

    def test_zone(self):
        _, ref, sharded = _fixtures()
        zones = sorted(set(ref.table.column("zone").tolist()))
        assert zones
        for zone in zones + ["no-such-zone"]:
            want = np.sort(np.asarray(ref.ids_in_zone(zone), dtype=np.int64))
            for db in sharded.values():
                _assert_same_array(db.ids_in_zone(zone), want)

    @settings(max_examples=25, deadline=None)
    @given(fracs=st.tuples(UNIT, UNIT), k=st.integers(1, 10))
    def test_nearest_matches_canonical_order(self, fracs, k):
        _, ref, sharded = _fixtures()
        full = ref.bounding_box()
        lon = full.min_lon + fracs[0] * (full.max_lon - full.min_lon)
        lat = full.min_lat + fracs[1] * (full.max_lat - full.min_lat)
        # Canonical answer straight from the data: total order (d², id).
        ranked = sorted(
            ((c.lon - lon) ** 2 + (c.lat - lat) ** 2, cid)
            for cid in ref.customer_ids
            for c in [ref.customer(cid)]
        )
        # A distance tie at the k boundary makes the *set* ambiguous;
        # the engine breaks such ties by traversal order, so skip them.
        assume(k >= len(ranked) or ranked[k - 1][0] < ranked[k][0])
        want = np.asarray([cid for _, cid in ranked[:k]], dtype=np.int64)
        for db in sharded.values():
            _assert_same_array(db.nearest(lon, lat, k=k), want)
        assert set(ref.nearest(lon, lat, k=k).tolist()) == set(want.tolist())


class TestTemporalWorkloads:
    @settings(max_examples=25, deadline=None)
    @given(
        fracs=st.tuples(UNIT, UNIT),
        indices=st.lists(st.integers(0, 59), min_size=1, max_size=20, unique=True),
    )
    def test_time_range_reads(self, fracs, indices):
        _, ref, sharded = _fixtures()
        window = _window_from(fracs)
        ids = [ref.readings.customer_ids[i] for i in indices]
        want = ref.readings_for(ids, window)
        for db in sharded.values():
            got = db.readings_for(ids, window)
            assert list(got.customer_ids) == list(want.customer_ids)
            assert got.start_hour == want.start_hour
            _assert_same_array(got.matrix, want.matrix)

    @settings(max_examples=25, deadline=None)
    @given(fracs=st.tuples(UNIT, UNIT))
    def test_full_window_reads(self, fracs):
        _, ref, sharded = _fixtures()
        window = _window_from(fracs)
        want = ref.readings_for(None, window)
        for db in sharded.values():
            got = db.readings_for(None, window)
            assert list(got.customer_ids) == list(want.customer_ids)
            _assert_same_array(got.matrix, want.matrix)

    @settings(max_examples=25, deadline=None)
    @given(
        fracs=st.tuples(UNIT, UNIT),
        statistic=st.sampled_from(DEMAND_STATISTICS),
        indices=st.lists(st.integers(0, 59), min_size=0, max_size=15, unique=True),
    )
    def test_demand(self, fracs, statistic, indices):
        _, ref, sharded = _fixtures()
        window = _window_from(fracs)
        ids = [ref.readings.customer_ids[i] for i in indices] or None
        want_pos, want_val = ref.demand(window, ids, statistic)
        for db in sharded.values():
            pos, val = db.demand(window, ids, statistic)
            _assert_same_array(pos, want_pos)
            _assert_same_array(val, want_val)

    @settings(max_examples=25, deadline=None)
    @given(
        fracs=st.tuples(UNIT, UNIT),
        k=st.integers(1, 70),
        statistic=st.sampled_from(DEMAND_STATISTICS),
    )
    def test_top_k(self, fracs, k, statistic):
        _, ref, sharded = _fixtures()
        window = _window_from(fracs, min_width=24)
        want_ids, want_vals = ref.top_consumers(window, k=k, statistic=statistic)
        for db in sharded.values():
            ids, vals = db.top_consumers(window, k=k, statistic=statistic)
            _assert_same_array(ids, want_ids)
            _assert_same_array(vals, want_vals)


def _predicates():
    """A small predicate algebra over the customers table."""
    _, ref, _ = _fixtures()
    full = ref.bounding_box()
    zones = sorted(set(ref.table.column("zone").tolist()))
    lon = st.floats(full.min_lon, full.max_lon, allow_nan=False)
    lat = st.floats(full.min_lat, full.max_lat, allow_nan=False)
    simple = st.one_of(
        st.builds(Compare, st.just("lon"), st.sampled_from(("<", ">=")), lon),
        st.builds(Compare, st.just("lat"), st.sampled_from(("<=", ">")), lat),
        st.builds(
            IsIn,
            st.just("zone"),
            st.lists(st.sampled_from(zones), min_size=0, max_size=3, unique=True),
        ),
        st.builds(
            lambda a, b: Between("lat", *sorted((a, b))), lat, lat
        ),
    )
    combined = st.one_of(
        simple,
        st.builds(lambda a, b: a & b, simple, simple),
        st.builds(lambda a, b: a | b, simple, simple),
        st.builds(lambda a: ~a, simple),
    )
    return st.one_of(st.none(), combined)


class TestGroupByWorkloads:
    @settings(max_examples=30, deadline=None)
    @given(
        key=st.sampled_from(("zone", "archetype")),
        aggregates=st.dictionaries(
            st.sampled_from(("n", "total", "low", "high", "avg")),
            st.tuples(
                st.sampled_from(("lon", "lat", "customer_id")),
                st.sampled_from(("count", "sum", "mean", "min", "max")),
            ),
            min_size=1,
            max_size=4,
        ),
        predicate=st.deferred(_predicates),
    )
    def test_group_by(self, key, aggregates, predicate):
        _, ref, sharded = _fixtures()
        want = (
            ref.query().where(predicate).group_by(key, aggregates)
            if predicate is not None
            else ref.query().group_by(key, aggregates)
        )
        for db in sharded.values():
            got = db.group_by(key, aggregates, predicate=predicate)
            # Exact comparison, floats included: the gather recomputes
            # the same numpy reduction over the same operand order.
            assert got == want


class TestIngestEquivalence:
    def test_ingest_tick_matches_unsharded_append(self):
        city = generate_city(CityConfig(n_customers=16, n_days=4, seed=5))
        total = city.raw.n_steps
        half = total // 2
        head = city.raw.slice_hours(0, half)
        ref = EnergyDatabase(city.customers, head)
        sharded = ShardedEnergyDatabase(city.customers, head, n_shards=3)
        ids = [int(c) for c in city.raw.customer_ids]
        for start in range(half, total, 2):
            chunk = city.raw.matrix[:, start - 0 : start + 2]
            ref.ingest_hours(chunk, start, customer_ids=ids)
            end = sharded.ingest_tick(ids, chunk, start)
            assert end == ref.time_span.end_hour
        assert sharded.time_span == ref.time_span
        _assert_same_array(sharded.readings.matrix, ref.readings.matrix)
        window = HourWindow(half - 3, total)
        _assert_same_array(
            sharded.readings_for(ids[:5], window).matrix,
            ref.readings_for(ids[:5], window).matrix,
        )

    def test_partial_shard_tick_rejected(self):
        city = generate_city(CityConfig(n_customers=16, n_days=2, seed=5))
        sharded = ShardedEnergyDatabase(city.customers, city.raw, n_shards=3)
        sid = sharded.shard_ids[0]
        members = sharded.shard(sid).customer_ids
        assert len(members) > 1
        with pytest.raises(ValueError, match="cover exactly"):
            sharded.ingest_tick(
                members[:1],
                np.zeros((1, 2)),
                sharded.time_span.end_hour,
            )
