"""Tests for geodesy and geometry types."""

import numpy as np
import pytest

from repro.db.geo import (
    EARTH_RADIUS_M,
    haversine_m,
    inverse_mercator,
    mercator_xy,
    meters_per_degree,
)
from repro.db.spatial import BBox, Circle, Point, Polygon


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(12.5, 55.7, 12.5, 55.7) == 0.0

    def test_known_distance_copenhagen_to_aarhus(self):
        # ~157 km great-circle.
        d = haversine_m(12.568, 55.676, 10.203, 56.162)
        assert d == pytest.approx(157_000, rel=0.05)

    def test_one_degree_latitude(self):
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M / 180.0, rel=1e-6)

    def test_symmetry(self):
        a = haversine_m(10.0, 50.0, 11.0, 51.0)
        b = haversine_m(11.0, 51.0, 10.0, 50.0)
        assert a == pytest.approx(b)

    def test_broadcasts(self):
        lons = np.array([0.0, 1.0, 2.0])
        d = haversine_m(0.0, 0.0, lons, np.zeros(3))
        assert d.shape == (3,)
        assert d[0] == 0.0 and d[1] < d[2]


class TestMercator:
    def test_round_trip(self):
        lon, lat = 12.57, 55.68
        x, y = mercator_xy(lon, lat)
        lon2, lat2 = inverse_mercator(x, y)
        assert lon2 == pytest.approx(lon, abs=1e-9)
        assert lat2 == pytest.approx(lat, abs=1e-9)

    def test_equator_origin(self):
        x, y = mercator_xy(0.0, 0.0)
        assert x == 0.0
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_polar_clamp(self):
        _, y_89 = mercator_xy(0.0, 89.0)
        _, y_90 = mercator_xy(0.0, 90.0)
        assert np.isfinite(y_90)
        assert y_90 >= y_89

    def test_meters_per_degree_shrinks_with_latitude(self):
        lon_eq, lat_eq = meters_per_degree(0.0)
        lon_north, lat_north = meters_per_degree(60.0)
        assert lon_north == pytest.approx(lon_eq / 2.0, rel=1e-3)
        assert lat_north == pytest.approx(lat_eq)


class TestBBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            BBox(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            BBox(0.0, 1.0, 1.0, 0.0)

    def test_from_points(self):
        box = BBox.from_points([1.0, 3.0, 2.0], [5.0, 4.0, 6.0])
        assert (box.min_lon, box.max_lon) == (1.0, 3.0)
        assert (box.min_lat, box.max_lat) == (4.0, 6.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            BBox.from_points([], [])

    def test_contains_inclusive_edges(self):
        box = BBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.0, 0.0) and box.contains(1.0, 1.0)
        assert not box.contains(1.0001, 0.5)

    def test_contains_many_matches_scalar(self, rng):
        box = BBox(0.2, 0.2, 0.8, 0.8)
        lons = rng.random(100)
        lats = rng.random(100)
        vector = box.contains_many(lons, lats)
        scalar = [box.contains(x, y) for x, y in zip(lons, lats)]
        assert vector.tolist() == scalar

    def test_intersects(self):
        a = BBox(0.0, 0.0, 1.0, 1.0)
        assert a.intersects(BBox(0.5, 0.5, 2.0, 2.0))
        assert a.intersects(BBox(1.0, 1.0, 2.0, 2.0))  # touching counts
        assert not a.intersects(BBox(1.1, 1.1, 2.0, 2.0))

    def test_union_and_expand(self):
        a = BBox(0.0, 0.0, 1.0, 1.0)
        b = BBox(2.0, -1.0, 3.0, 0.5)
        u = a.union(b)
        assert (u.min_lon, u.min_lat, u.max_lon, u.max_lat) == (0.0, -1.0, 3.0, 1.0)
        e = a.expanded(0.5)
        assert e.width == pytest.approx(2.0)
        with pytest.raises(ValueError):
            a.expanded(-0.1)

    def test_center_and_area(self):
        box = BBox(0.0, 0.0, 2.0, 4.0)
        assert box.center == Point(1.0, 2.0)
        assert box.area() == 8.0


class TestCircle:
    def test_planar_containment(self):
        c = Circle(Point(0.0, 0.0), 1.0)
        assert c.contains(0.5, 0.5)
        assert not c.contains(1.0, 1.0)

    def test_geodesic_containment(self):
        c = Circle(Point(12.57, 55.68), 0.0, radius_m=1000.0)
        assert c.contains(12.57, 55.68)
        # ~0.01 degrees latitude is ~1.1 km.
        assert not c.contains(12.57, 55.69)

    def test_geodesic_bbox_is_conservative(self, rng):
        c = Circle(Point(12.57, 55.68), 0.0, radius_m=2000.0)
        box = c.bbox()
        for _ in range(200):
            lon = rng.uniform(12.5, 12.65)
            lat = rng.uniform(55.6, 55.76)
            if c.contains(lon, lat):
                assert box.contains(lon, lat)

    def test_validation(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)
        with pytest.raises(ValueError):
            Circle(Point(0, 0), 1.0, radius_m=-5.0)


class TestPolygon:
    def test_triangle_containment(self):
        tri = Polygon([(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)])
        assert tri.contains(1.0, 0.5)
        assert not tri.contains(2.0, 2.0)

    def test_concave_polygon(self):
        # A "U" shape: the notch interior must be outside.
        u = Polygon(
            [(0, 0), (3, 0), (3, 3), (2, 3), (2, 1), (1, 1), (1, 3), (0, 3)]
        )
        assert u.contains(0.5, 2.0)
        assert u.contains(2.5, 2.0)
        assert not u.contains(1.5, 2.0)  # inside the notch

    def test_closing_vertex_dropped(self):
        tri = Polygon([(0, 0), (1, 0), (0, 1), (0, 0)])
        assert tri.vertices.shape == (3, 2)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_area_shoelace(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.area() == 4.0

    def test_contains_many_matches_scalar(self, rng):
        poly = Polygon([(0, 0), (4, 1), (3, 4), (1, 3)])
        lons = rng.uniform(-1, 5, 200)
        lats = rng.uniform(-1, 5, 200)
        vec = poly.contains_many(lons, lats)
        assert vec.tolist() == [poly.contains(x, y) for x, y in zip(lons, lats)]

    def test_bbox(self):
        poly = Polygon([(0, 0), (4, 1), (3, 4)])
        box = poly.bbox()
        assert (box.min_lon, box.max_lat) == (0.0, 4.0)
