"""Regression tests: scatter-gather workers keep the caller's context.

ContextVars do not follow work into the shared shard pool, so before the
:class:`~repro.obs.tracecontext.TraceContext` propagation every shard-side
log line carried ``request_id: None``, shard spans opened as disconnected
roots, and slow-op records could not be correlated back to the HTTP
request that caused them.  These tests pin the fixed behaviour at the
database layer (the HTTP-level acceptance lives in the server tests).
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.data.timeseries import HourWindow
from repro.db.sharding import ShardedEnergyDatabase
from repro.obs import JsonLogger, SlowOpLog, TraceStore


@pytest.fixture()
def traced_obs():
    """Fresh defaults: trace store, captured log stream, fresh slow log."""
    previous_registry, previous_tracer = obs.get_registry(), obs.get_tracer()
    previous_logger = obs.get_logger()
    previous_window, previous_slow = obs.get_window_store(), obs.get_slow_log()
    obs.reset()
    stream = io.StringIO()
    store = TraceStore()
    slow_log = SlowOpLog()
    obs.configure(
        trace_store=store,
        logger=JsonLogger(stream=stream),
        slow_log=slow_log,
    )
    try:
        yield store, stream, slow_log
    finally:
        obs.configure(
            registry=previous_registry,
            tracer=previous_tracer,
            logger=previous_logger,
            window_store=previous_window,
            slow_log=previous_slow,
        )


@pytest.fixture(scope="module")
def city(small_city):
    return small_city


def _sharded(city, **kwargs):
    kwargs.setdefault("n_shards", 4)
    return ShardedEnergyDatabase(city.customers, city.raw, **kwargs)


def _log_events(stream, event):
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if json.loads(line)["event"] == event
    ]


class TestScatterContextPropagation:
    def test_shard_spans_join_callers_trace(self, traced_obs, city):
        store, _, _ = traced_obs
        db = _sharded(city)
        with obs.span("http.request") as root:
            db.demand(HourWindow(8, 12))
        tree = store.get(root.trace_id)
        assert tree is not None
        shard_spans = [s for s in tree.walk() if s.name == "db.shard"]
        assert len(shard_spans) == len(db.shard_ids)
        assert {s.tags["shard"] for s in shard_spans} == set(db.shard_ids)
        assert all(s.trace_id == root.trace_id for s in shard_spans)

    def test_shard_slow_query_log_carries_request_id(self, traced_obs, city):
        _, stream, _ = traced_obs
        # Near-zero threshold: every shard query logs db.slow_query from
        # the pool worker — where the request id used to come out None.
        db = _sharded(city, slow_query_seconds=1e-9)
        with obs.bind_request_id("req-from-http"), obs.bind_tenant("acme"):
            db.demand(HourWindow(8, 12))
        events = _log_events(stream, "db.slow_query")
        assert events, "expected shard-side slow-query log records"
        assert all(e["request_id"] == "req-from-http" for e in events)
        assert all(e["tenant"] == "acme" for e in events)

    def test_shard_slow_op_records_carry_request_id_and_tenant(
        self, traced_obs, city
    ):
        _, _, slow_log = traced_obs
        db = _sharded(city, slow_query_seconds=1e-9)
        with obs.bind_request_id("req-slow"), obs.bind_tenant("globex"):
            db.demand(HourWindow(0, 24))
        records = [
            r for r in slow_log.records() if r["name"] == "db.demand"
        ]
        assert records
        assert all(r["request_id"] == "req-slow" for r in records)
        assert all(r["tenant"] == "globex" for r in records)

    def test_single_shard_path_stays_inline(self, traced_obs, city):
        store, _, _ = traced_obs
        db = _sharded(city, n_shards=1)
        with obs.span("http.request") as root:
            db.demand(HourWindow(8, 12))
        tree = store.get(root.trace_id)
        # Inline execution: no pool hop, so no db.shard fragments.
        assert all(s.name != "db.shard" for s in tree.walk())

    def test_scatter_without_tracing_still_works(self, city):
        # No store configured at all: the propagation layer must be
        # pass-through, not a new requirement.
        db = _sharded(city)
        positions, values = db.demand(HourWindow(8, 12))
        assert len(positions) == len(values) == len(db)
