"""Concurrency stress: parallel per-shard writers against scatter readers.

Eight writer threads replay one shard's feed each (so every write takes
only its own shard's lock) while eight reader threads hammer the
scatter-gather paths.  The assertions pin the consistency model down:

- **no torn reads** — any window fully inside the pre-loaded prefix must
  come back byte-identical to the source matrix, no matter how many
  ticks land mid-read; full-width gathers must always be a *prefix* of
  the final data (trimmed to the slowest shard, never interleaved);
- **no global-lock serialization** — a point read on shard A completes
  while another thread holds shard B's lock, and the per-shard
  ``db_query_seconds{shard=...}`` / ``db_ingest_hours_total{shard=...}``
  series prove every shard served queries and writes independently.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.data.generator.simulate import CityConfig, generate_city
from repro.data.timeseries import HourWindow
from repro.db.sharding import ShardedEnergyDatabase
from repro.stream import ReplayFeed, ShardRouter, shard_feed

N_SHARDS = 8
N_READERS = 8
READER_ITERATIONS = 30


@pytest.fixture()
def stress_city():
    return generate_city(CityConfig(n_customers=64, n_days=14, seed=7))


def _bits(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array).tobytes()


class TestWritersVersusReaders:
    def test_no_torn_reads_under_parallel_ingest(self, stress_city):
        total = stress_city.raw.n_steps
        half = total // 2
        head = stress_city.raw.slice_hours(0, half)
        registry = obs.MetricsRegistry()
        db = ShardedEnergyDatabase(
            stress_city.customers,
            head,
            n_shards=N_SHARDS,
            metrics=registry,
        )
        assert len(db.shard_ids) >= 2, "need real fan-out for this test"
        source = stress_city.raw
        source_ids = [int(cid) for cid in source.customer_ids]
        row_of = {cid: i for i, cid in enumerate(source_ids)}
        stable = HourWindow(0, half)
        stable_ids = source_ids[::3]
        stable_want = _bits(
            source.matrix[[row_of[cid] for cid in stable_ids], :half]
        )

        rest = source.slice_hours(half, total)
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def record(exc: BaseException) -> None:
            with errors_lock:
                errors.append(exc)

        def writer(feed: ReplayFeed) -> None:
            try:
                ShardRouter(db, feed.series_set.customer_ids).replay(feed)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                record(exc)

        def reader() -> None:
            try:
                for _ in range(READER_ITERATIONS):
                    # Stable-prefix window: immune to concurrent ticks.
                    got = db.readings_for(stable_ids, stable)
                    assert _bits(got.matrix) == stable_want, "torn read"
                    # Full gather: must be a clean column prefix of the
                    # final data — a torn row would mix tick boundaries.
                    snap = db.readings
                    width = snap.n_steps
                    assert half <= width <= total
                    rows = [row_of[int(c)] for c in snap.customer_ids]
                    assert _bits(snap.matrix) == _bits(
                        source.matrix[rows, :width]
                    ), "gathered matrix is not a source prefix"
                    # Scatter paths stay live mid-ingest.
                    db.demand(stable, stable_ids, "mean")
                    db.top_consumers(stable, k=5)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                record(exc)

        feeds = [
            feed
            for sid in range(N_SHARDS)
            if (feed := shard_feed(rest, sid, N_SHARDS, hours_per_tick=4))
        ]
        assert len(feeds) == len(db.shard_ids)
        threads = [
            threading.Thread(target=writer, args=(feed,)) for feed in feeds
        ] + [threading.Thread(target=reader) for _ in range(N_READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "stress thread deadlocked"
        assert not errors, errors[:3]

        # Every tick landed: the final state equals the full source.
        assert db.time_span.end_hour == total
        final = db.readings
        rows = [row_of[int(c)] for c in final.customer_ids]
        assert _bits(final.matrix) == _bits(source.matrix[rows, :])

        # Per-shard instrument labels prove the work fanned out: every
        # populated shard both served queries and absorbed writes under
        # its own lock (a global RLock would funnel all samples through
        # one unlabelled series).
        snapshot = registry.snapshot()
        query_shards = {
            record["labels"]["shard"]
            for record in snapshot["histograms"]
            if record["name"] == "db_query_seconds"
            and "shard" in record["labels"]
        }
        ingest_shards = {
            record["labels"]["shard"]
            for record in snapshot["counters"]
            if record["name"] == "db_ingest_hours_total"
            and "shard" in record["labels"]
        }
        want_shards = {str(sid) for sid in db.shard_ids}
        assert query_shards == want_shards
        assert ingest_shards == want_shards
        ticks = [
            record["value"]
            for record in snapshot["counters"]
            if record["name"] == "db_ingest_ticks_total"
        ]
        assert ticks and ticks[0] == sum(feed.n_ticks for feed in feeds)


class TestPerShardLocks:
    def test_point_read_ignores_other_shards_lock(self, stress_city):
        """A read on shard A completes while shard B's lock is held.

        This is the no-global-lock property stated directly: single-
        target scatters take exactly the owning shard's lock, so one
        stuck (or merely busy) shard cannot stall point queries routed
        elsewhere.
        """
        db = ShardedEnergyDatabase(
            stress_city.customers, stress_city.raw, n_shards=N_SHARDS
        )
        shard_a, shard_b = db.shard_ids[0], db.shard_ids[1]
        cid_a = db.shard(shard_a).customer_ids[0]
        window = HourWindow(0, 24)

        locked = threading.Event()
        release = threading.Event()

        def hold_shard_b() -> None:
            with db.shard(shard_b)._read_lock:
                locked.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold_shard_b)
        holder.start()
        try:
            assert locked.wait(timeout=10)
            done = threading.Event()
            result: list[np.ndarray] = []

            def read_shard_a() -> None:
                result.append(db.readings_for([cid_a], window).matrix)
                done.set()

            reader = threading.Thread(target=read_shard_a)
            reader.start()
            completed = done.wait(timeout=10)
            assert completed, (
                "shard-A read blocked behind shard-B's lock — "
                "reads are serializing on a global lock"
            )
            reader.join(timeout=10)
            assert result and result[0].shape == (1, 24)
        finally:
            release.set()
            holder.join(timeout=10)
