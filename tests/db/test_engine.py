"""Tests for the EnergyDatabase facade."""

import numpy as np
import pytest

from repro.data.timeseries import HourWindow
from repro.db.engine import EnergyDatabase
from repro.db.query import Compare
from repro.db.spatial import BBox, Circle, Point, Polygon


class TestConstruction:
    def test_rejects_mismatched_ids(self, small_city):
        readings = small_city.raw.select_customers(
            [int(c) for c in small_city.raw.customer_ids[:-1]]
        )
        with pytest.raises(ValueError, match="different ids"):
            EnergyDatabase(small_city.customers, readings)

    def test_rejects_unknown_index(self, small_city):
        with pytest.raises(ValueError, match="index_kind"):
            EnergyDatabase(small_city.customers, small_city.raw, index_kind="btree")

    def test_rejects_empty(self, small_city):
        with pytest.raises(ValueError):
            EnergyDatabase([], small_city.raw)

    @pytest.mark.parametrize("kind", ["grid", "quadtree", "rtree"])
    def test_all_index_kinds(self, small_city, kind):
        db = EnergyDatabase(small_city.customers, small_city.raw, index_kind=kind)
        assert db.index_kind == kind
        assert len(db) == len(small_city.customers)


class TestSpatialQueries:
    def test_bbox_matches_brute_force(self, small_db, small_city):
        box = small_db.bounding_box()
        mid = box.center
        query = BBox(box.min_lon, box.min_lat, mid.lon, mid.lat)
        got = small_db.ids_in_bbox(query).tolist()
        want = sorted(
            c.customer_id
            for c in small_city.customers
            if query.contains(c.lon, c.lat)
        )
        assert got == want

    def test_polygon_query(self, small_db, small_city):
        box = small_db.bounding_box()
        mid = box.center
        triangle = Polygon(
            [
                (box.min_lon, box.min_lat),
                (box.max_lon, box.min_lat),
                (mid.lon, box.max_lat),
            ]
        )
        got = set(small_db.ids_in_polygon(triangle).tolist())
        want = {
            c.customer_id
            for c in small_city.customers
            if triangle.contains(c.lon, c.lat)
        }
        assert got == want

    def test_radius_query(self, small_db, small_city):
        center = small_db.bounding_box().center
        circle = Circle(Point(center.lon, center.lat), 0.015)
        got = small_db.ids_in_radius(circle).tolist()
        want = sorted(
            c.customer_id
            for c in small_city.customers
            if circle.contains(c.lon, c.lat)
        )
        assert got == want

    def test_zone_query(self, small_db, small_city):
        got = small_db.ids_in_zone("commercial").tolist()
        want = sorted(
            c.customer_id
            for c in small_city.customers
            if c.zone.value == "commercial"
        )
        assert got == want

    def test_nearest(self, small_db, small_city):
        target = small_city.customers[0]
        nn = small_db.nearest(target.lon, target.lat, k=1)
        assert nn[0] == target.customer_id

    def test_positions_of_order(self, small_db, small_city):
        ids = [small_city.customers[2].customer_id, small_city.customers[0].customer_id]
        pos = small_db.positions_of(ids)
        assert pos[0, 0] == small_city.customers[2].lon
        assert pos[1, 0] == small_city.customers[0].lon


class TestTemporalQueries:
    def test_readings_for_subset_and_window(self, small_db):
        ids = small_db.customer_ids[:3]
        window = HourWindow(24, 72)
        out = small_db.readings_for(ids, window)
        assert out.n_customers == 3
        assert out.start_hour == 24
        assert out.n_steps == 48

    def test_demand_statistics(self, small_db):
        window = HourWindow(0, 24)
        pos, mean_v = small_db.demand(window, statistic="mean")
        _, sum_v = small_db.demand(window, statistic="sum")
        _, max_v = small_db.demand(window, statistic="max")
        assert pos.shape == (len(small_db), 2)
        # Manual NaN-aware reference for the first few customers.
        raw = small_db.readings_for(small_db.customer_ids, window).matrix
        for row in range(5):
            observed = raw[row][~np.isnan(raw[row])]
            if observed.size == 0:
                assert sum_v[row] == 0.0
                continue
            assert sum_v[row] == pytest.approx(observed.sum())
            assert mean_v[row] == pytest.approx(observed.mean())
            assert max_v[row] == pytest.approx(observed.max())

    def test_demand_unknown_statistic(self, small_db):
        with pytest.raises(ValueError, match="statistic"):
            small_db.demand(HourWindow(0, 24), statistic="p95")

    def test_demand_empty_window_is_zero(self, small_db):
        span = small_db.time_span
        _, values = small_db.demand(HourWindow(span.end_hour + 5, span.end_hour + 6))
        assert (values == 0).all()

    def test_customer_lookup(self, small_db):
        cid = small_db.customer_ids[0]
        assert small_db.customer(cid).customer_id == cid
        with pytest.raises(KeyError):
            small_db.customer(10**9)

    def test_query_integration(self, small_db):
        n = (
            small_db.query()
            .where(Compare("zone", "==", "residential"))
            .count()
        )
        want = len(small_db.ids_in_zone("residential"))
        assert n == want
