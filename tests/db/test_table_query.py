"""Tests for the column-table engine and the query layer."""

import numpy as np
import pytest

from repro.db.query import And, Between, Compare, IsIn, Not, Or, Query
from repro.db.table import ColumnSpec, Schema, Table


@pytest.fixture()
def people():
    schema = Schema(
        [
            ColumnSpec("pid", "int"),
            ColumnSpec("height", "float"),
            ColumnSpec("city", "str"),
        ]
    )
    table = Table("people", schema)
    table.insert(
        [
            {"pid": 1, "height": 1.80, "city": "cph"},
            {"pid": 2, "height": 1.65, "city": "aar"},
            {"pid": 3, "height": 1.75, "city": "cph"},
            {"pid": 4, "height": 1.90, "city": "odn"},
        ]
    )
    return table


class TestSchema:
    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([ColumnSpec("a", "int"), ColumnSpec("a", "float")])

    def test_rejects_bad_names_and_kinds(self):
        with pytest.raises(ValueError):
            ColumnSpec("1bad", "int")
        with pytest.raises(ValueError):
            ColumnSpec("x", "decimal")

    def test_lookup(self):
        schema = Schema([ColumnSpec("a", "int")])
        assert "a" in schema and "b" not in schema
        with pytest.raises(KeyError):
            schema.column("b")


class TestTable:
    def test_insert_and_len(self, people):
        assert len(people) == 4

    def test_column_types(self, people):
        assert people.column("pid").dtype == np.int64
        assert people.column("height").dtype == np.float64

    def test_insert_missing_column(self, people):
        with pytest.raises(KeyError, match="height"):
            people.insert([{"pid": 9, "city": "cph"}])

    def test_insert_bad_type(self, people):
        with pytest.raises(ValueError, match="height"):
            people.insert([{"pid": 9, "height": "tall", "city": "cph"}])

    def test_insert_empty_is_noop(self, people):
        assert people.insert([]) == 0
        assert len(people) == 4

    def test_chunked_inserts_consolidate(self, people):
        people.insert([{"pid": 5, "height": 1.7, "city": "cph"}])
        people.insert([{"pid": 6, "height": 1.6, "city": "aar"}])
        assert people.column("pid").tolist() == [1, 2, 3, 4, 5, 6]

    def test_insert_columns_bulk(self):
        table = Table("t", Schema([ColumnSpec("a", "int")]))
        assert table.insert_columns({"a": [1, 2, 3]}) == 3
        assert len(table) == 3

    def test_insert_columns_ragged(self):
        schema = Schema([ColumnSpec("a", "int"), ColumnSpec("b", "int")])
        table = Table("t", schema)
        with pytest.raises(ValueError, match="ragged"):
            table.insert_columns({"a": [1], "b": [1, 2]})

    def test_row_access(self, people):
        row = people.row(1)
        assert row == {"pid": 2, "height": 1.65, "city": "aar"}
        with pytest.raises(IndexError):
            people.row(99)

    def test_empty_table_columns(self):
        table = Table("t", Schema([ColumnSpec("a", "float")]))
        assert table.column("a").size == 0


class TestPredicates:
    def test_compare_operators(self, people):
        assert Compare("height", ">", 1.7).mask(people).sum() == 3
        assert Compare("city", "==", "cph").mask(people).sum() == 2
        assert Compare("pid", "!=", 1).mask(people).sum() == 3

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Compare("a", "~", 1)

    def test_isin(self, people):
        assert IsIn("city", ["cph", "odn"]).mask(people).sum() == 3

    def test_between_inclusive(self, people):
        assert Between("height", 1.65, 1.80).mask(people).sum() == 3

    def test_combinators(self, people):
        p = Compare("city", "==", "cph") & Compare("height", ">", 1.78)
        assert p.mask(people).sum() == 1
        q = Compare("city", "==", "aar") | Compare("city", "==", "odn")
        assert q.mask(people).sum() == 2
        assert (~q).mask(people).sum() == 2
        assert isinstance(~q, Not)
        assert isinstance(p, And) and isinstance(q, Or)


class TestQuery:
    def test_where_order_limit(self, people):
        rows = (
            Query(people)
            .where(Compare("height", ">", 1.6))
            .order_by("height", descending=True)
            .limit(2)
            .rows()
        )
        assert [r["pid"] for r in rows] == [4, 1]

    def test_select_projection(self, people):
        cols = Query(people).select("pid").columns()
        assert list(cols) == ["pid"]

    def test_select_unknown_column(self, people):
        with pytest.raises(KeyError):
            Query(people).select("age")

    def test_chained_where_is_and(self, people):
        q = (
            Query(people)
            .where(Compare("city", "==", "cph"))
            .where(Compare("height", "<", 1.78))
        )
        assert q.count() == 1

    def test_negative_limit(self, people):
        with pytest.raises(ValueError):
            Query(people).limit(-1)

    def test_group_by(self, people):
        rows = Query(people).group_by(
            "city",
            {
                "n": ("pid", "count"),
                "tallest": ("height", "max"),
                "avg": ("height", "mean"),
            },
        )
        by_city = {r["city"]: r for r in rows}
        assert by_city["cph"]["n"] == 2
        assert by_city["cph"]["tallest"] == 1.80
        assert by_city["aar"]["avg"] == pytest.approx(1.65)

    def test_group_by_respects_where(self, people):
        rows = (
            Query(people)
            .where(Compare("height", ">", 1.7))
            .group_by("city", {"n": ("pid", "count")})
        )
        assert {r["city"] for r in rows} == {"cph", "odn"}

    def test_group_by_unknown_func(self, people):
        with pytest.raises(ValueError, match="func"):
            Query(people).group_by("city", {"x": ("height", "median")})

    def test_rows_are_python_scalars(self, people):
        row = Query(people).limit(1).rows()[0]
        assert isinstance(row["pid"], int)
        assert isinstance(row["height"], float)
        assert isinstance(row["city"], str)
