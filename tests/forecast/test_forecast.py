"""Tests for the forecasting subsystem."""

import numpy as np
import pytest

from repro.forecast.backtest import backtest
from repro.forecast.baselines import DriftForecaster, NaiveForecaster, SeasonalNaive
from repro.forecast.holtwinters import HoltWinters
from repro.forecast.metrics import mae, mape, mase, rmse, smape
from repro.forecast.profile import ProfileForecaster
from repro.preprocess import impute, remove_anomalies


@pytest.fixture(scope="module")
def sinusoid():
    """Four weeks of a clean daily sinusoid with weekly modulation."""
    hours = np.arange(28 * 24)
    daily = 2.0 + np.sin(2 * np.pi * hours / 24)
    weekly = 1.0 + 0.3 * np.sin(2 * np.pi * hours / 168)
    return daily * weekly


class TestBaselines:
    def test_naive_repeats_last(self):
        model = NaiveForecaster().fit(np.array([1.0, 2.0, 7.0]))
        np.testing.assert_array_equal(model.predict(3), [7.0, 7.0, 7.0])

    def test_seasonal_naive_repeats_season(self):
        history = np.tile(np.arange(24.0), 3)
        model = SeasonalNaive(season=24).fit(history)
        np.testing.assert_array_equal(model.predict(48), np.tile(np.arange(24.0), 2))

    def test_seasonal_naive_partial_horizon(self):
        model = SeasonalNaive(season=24).fit(np.tile(np.arange(24.0), 2))
        assert model.predict(5).tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_drift_extrapolates_and_floors(self):
        down = np.linspace(10.0, 1.0, 10)
        model = DriftForecaster().fit(down)
        forecast = model.predict(30)
        assert forecast[0] < 1.0
        assert (forecast >= 0.0).all()

    def test_contract_errors(self):
        with pytest.raises(RuntimeError):
            NaiveForecaster().predict(3)
        with pytest.raises(ValueError):
            NaiveForecaster().fit(np.array([1.0])).predict(0)
        with pytest.raises(ValueError, match="NaN"):
            NaiveForecaster().fit(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            SeasonalNaive(season=24).fit(np.arange(10.0))


class TestHoltWinters:
    def test_tracks_seasonal_signal(self, sinusoid):
        model = HoltWinters(season=24).fit(sinusoid)
        forecast = model.predict(24)
        actual = 2.0 + np.sin(2 * np.pi * (np.arange(28 * 24, 29 * 24)) / 24)
        actual = actual * (1.0 + 0.3 * np.sin(2 * np.pi * np.arange(28 * 24, 29 * 24) / 168))
        assert smape(actual, forecast) < 0.15

    def test_phase_continuity(self):
        """Forecast hour 0 must continue the season, not restart it."""
        history = np.tile(np.arange(24.0), 4)[: 4 * 24 - 6]  # ends mid-season
        model = HoltWinters(season=24, alpha=0.3, beta=0.1, gamma=0.3).fit(history)
        forecast = model.predict(6)
        # The next hours of the pattern are 18..23 (ascending ramp).
        assert np.all(np.diff(forecast) > 0)

    def test_beats_naive_on_seasonal_data(self, sinusoid):
        actual = sinusoid[-24:]
        history = sinusoid[:-24]
        hw = HoltWinters(season=24).fit(history).predict(24)
        naive = NaiveForecaster().fit(history).predict(24)
        assert mae(actual, hw) < mae(actual, naive)

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWinters(season=1)
        with pytest.raises(ValueError):
            HoltWinters(alpha=1.5)
        with pytest.raises(ValueError):
            HoltWinters(season=24).fit(np.arange(30.0))


class TestProfileForecaster:
    def test_perfect_on_exact_weekly_signal(self):
        week = 2.0 + np.sin(2 * np.pi * np.arange(168) / 168)
        history = np.tile(week, 4)
        model = ProfileForecaster().fit(history)
        np.testing.assert_allclose(model.predict(168), week, rtol=1e-9)

    def test_level_adaptation(self):
        """A customer whose level doubled recently is forecast at the new
        level while keeping the shape."""
        week = 1.0 + 0.5 * np.sin(2 * np.pi * np.arange(168) / 24)
        history = np.concatenate([np.tile(week, 3), 2.0 * np.tile(week, 1)])
        model = ProfileForecaster(level_window=168).fit(history)
        forecast = model.predict(168)
        # Profile mixes old and new level; the scale must push it well
        # above the historical week.
        assert forecast.mean() > 1.4 * week.mean()

    def test_group_profile_needs_little_history(self):
        week = 1.0 + 0.5 * np.sin(2 * np.pi * np.arange(168) / 24)
        model = ProfileForecaster(group_profile=week, level_window=48)
        model.fit(2.0 * week[:72], start_phase=0)
        forecast = model.predict(24)
        np.testing.assert_allclose(forecast, 2.0 * week[72:96], rtol=0.05)

    def test_start_phase_alignment(self):
        week = np.arange(168, dtype=float)
        history = np.tile(week, 2)[24:]  # starts at phase 24
        model = ProfileForecaster().fit(history, start_phase=24)
        forecast = model.predict(5)
        np.testing.assert_allclose(forecast, [0.0, 1.0, 2.0, 3.0, 4.0], atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            ProfileForecaster(season=24, group_profile=np.ones(10))
        with pytest.raises(ValueError):
            ProfileForecaster().fit(np.ones(10))


class TestMetrics:
    def test_known_values(self):
        actual = np.array([1.0, 2.0, 4.0])
        predicted = np.array([1.0, 3.0, 2.0])
        assert mae(actual, predicted) == pytest.approx(1.0)
        assert rmse(actual, predicted) == pytest.approx(np.sqrt(5 / 3))
        assert mape(actual, predicted) == pytest.approx((0 + 0.5 + 0.5) / 3)

    def test_smape_bounds_and_zero_case(self):
        assert smape(np.array([0.0]), np.array([0.0])) == 0.0
        assert smape(np.array([0.0]), np.array([5.0])) == pytest.approx(2.0)

    def test_mape_undefined_for_zero_actuals(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.ones(3))

    def test_mase_scale(self):
        rng = np.random.default_rng(0)
        history = np.tile(np.arange(24.0), 8) + rng.normal(0, 0.5, 8 * 24)
        actual = np.arange(24.0)
        # Perfect forecast scores 0; a forecast with MAE equal to the
        # in-sample seasonal error scores 1.
        assert mase(actual, actual, history, season=24) == 0.0
        scale = np.abs(history[24:] - history[:-24]).mean()
        off = actual + scale
        assert mase(actual, off, history, season=24) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="constant"):
            mase(actual, actual, np.ones(400), season=24)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.ones(3), np.ones(4))


class TestBacktest:
    @pytest.fixture(scope="class")
    def fleet(self, small_city):
        return impute(remove_anomalies(small_city.raw)[0])

    def test_profile_beats_naive_on_fleet(self, fleet):
        results = backtest(
            fleet,
            {
                "naive": NaiveForecaster,
                "seasonal": lambda: SeasonalNaive(168),
                "profile": lambda: ProfileForecaster(),
            },
            horizon=24,
            n_folds=2,
            min_history=14 * 24,
        )
        by_name = {r.model: r for r in results}
        assert by_name["profile"].mae < by_name["naive"].mae
        assert by_name["profile"].smape < by_name["seasonal"].smape

    def test_too_short_series_rejected(self, fleet):
        short = fleet.slice_hours(0, 100)
        with pytest.raises(ValueError, match="folds"):
            backtest(short, {"naive": NaiveForecaster}, min_history=90)

    def test_result_rows_format(self, fleet):
        results = backtest(
            fleet, {"naive": NaiveForecaster}, horizon=12, n_folds=1,
            min_history=14 * 24,
        )
        assert "naive" in results[0].row()
        assert results[0].n_customers == fleet.n_customers
