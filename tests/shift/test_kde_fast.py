"""Parity and dispatch tests for the binned KDE engine."""

import numpy as np
import pytest

from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import BINNED_THRESHOLD, kde_density


def _random_city(n, seed=0):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [116.0 + rng.random(n) * 0.1, 39.0 + rng.random(n) * 0.1]
    )
    return pos, rng.gamma(2.0, 1.0, n)


def _clustered_city(n, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.column_stack(
        [116.0 + rng.random(6) * 0.1, 39.0 + rng.random(6) * 0.1]
    )
    pos = centers[rng.integers(0, 6, n)] + rng.normal(0, 0.004, (n, 2))
    return pos, rng.gamma(2.0, 1.0, n)


def _max_rel_error(a, b):
    return float(np.abs(a.values - b.values).max() / b.values.max())


class TestBinnedParity:
    @pytest.mark.parametrize("maker", [_random_city, _clustered_city])
    def test_binned_matches_exact(self, maker):
        pos, weights = maker(4000)
        spec = GridSpec.covering(pos, nx=96, ny=96)
        exact = kde_density(pos, weights, spec, method="exact")
        binned = kde_density(pos, weights, spec, method="binned")
        assert _max_rel_error(binned, exact) < 1e-3

    def test_unweighted_and_explicit_bandwidth(self):
        pos, _ = _clustered_city(3000, seed=5)
        spec = GridSpec.covering(pos, nx=64, ny=64)
        exact = kde_density(pos, None, spec, bandwidth_m=600.0, method="exact")
        binned = kde_density(pos, None, spec, bandwidth_m=600.0, method="binned")
        assert _max_rel_error(binned, exact) < 1e-3

    def test_points_outside_grid_still_contribute(self):
        # Density grids cover a sub-window; off-grid mass must still flow
        # into nearby cells under both engines.
        pos, weights = _random_city(2500, seed=7)
        inner = GridSpec.covering(pos[:500], nx=48, ny=48)
        exact = kde_density(pos, weights, inner, method="exact")
        binned = kde_density(pos, weights, inner, method="binned")
        assert _max_rel_error(binned, exact) < 1e-3

    def test_mass_conserved(self):
        pos, weights = _clustered_city(5000, seed=1)
        spec = GridSpec.covering(pos, nx=96, ny=96)
        exact = kde_density(pos, weights, spec, method="exact")
        binned = kde_density(pos, weights, spec, method="binned")
        assert binned.total_mass() == pytest.approx(
            exact.total_mass(), rel=1e-3
        )


class TestDispatch:
    def test_auto_small_is_exact(self):
        pos, weights = _random_city(300)
        spec = GridSpec.covering(pos, nx=48, ny=48)
        auto = kde_density(pos, weights, spec, method="auto")
        exact = kde_density(pos, weights, spec, method="exact")
        np.testing.assert_array_equal(auto.values, exact.values)

    def test_auto_large_is_binned(self):
        pos, weights = _random_city(BINNED_THRESHOLD + 500)
        spec = GridSpec.covering(pos, nx=64, ny=64)
        auto = kde_density(pos, weights, spec, method="auto")
        binned = kde_density(pos, weights, spec, method="binned")
        np.testing.assert_array_equal(auto.values, binned.values)

    def test_auto_narrow_bandwidth_falls_back_to_exact(self):
        # A bandwidth under two cells cannot be represented well on the
        # lattice; auto must not silently pick the binned engine there.
        pos, weights = _random_city(BINNED_THRESHOLD + 500)
        spec = GridSpec.covering(pos, nx=64, ny=64)
        auto = kde_density(pos, weights, spec, bandwidth_m=50.0, method="auto")
        exact = kde_density(pos, weights, spec, bandwidth_m=50.0, method="exact")
        np.testing.assert_array_equal(auto.values, exact.values)

    def test_binned_rejects_subcell_bandwidth(self):
        pos, weights = _random_city(1000)
        spec = GridSpec.covering(pos, nx=64, ny=64)
        with pytest.raises(ValueError, match="binned"):
            kde_density(pos, weights, spec, bandwidth_m=1.0, method="binned")

    def test_unknown_method(self):
        pos, weights = _random_city(100)
        spec = GridSpec.covering(pos, nx=32, ny=32)
        with pytest.raises(ValueError, match="method"):
            kde_density(pos, weights, spec, method="fft")
