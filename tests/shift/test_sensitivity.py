"""Tests for the S2 sensitivity sweeps."""

import numpy as np
import pytest

from repro.core.shift.grids import GridSpec
from repro.core.shift.sensitivity import granularity_sweep, quantile_sweep
from repro.data.timeseries import HourWindow, Resolution


@pytest.fixture(scope="module")
def sweep_spec(small_db):
    return GridSpec.covering(
        small_db.positions_of(small_db.customer_ids), nx=40, ny=40
    )


class TestGranularitySweep:
    def test_covers_requested_resolutions(self, small_db, sweep_spec):
        resolutions = (Resolution.HOURLY, Resolution.DAILY, Resolution.WEEKLY)
        results = granularity_sweep(
            small_db, resolutions, spec=sweep_spec, max_pairs_per_resolution=3
        )
        assert [r.resolution for r in results] == list(resolutions)
        for r in results:
            assert r.n_window_pairs >= 1
            assert np.isfinite(r.mean_energy)
            assert r.peak_gain > 0 > r.peak_loss

    def test_too_coarse_resolution_yields_nan(self, small_db, sweep_spec):
        # 3 weeks of data has only one yearly bucket -> no pairs.
        results = granularity_sweep(
            small_db, (Resolution.YEARLY,), spec=sweep_spec
        )
        assert results[0].n_window_pairs == 0
        assert np.isnan(results[0].mean_energy)

    def test_pair_cap_respected(self, small_db, sweep_spec):
        results = granularity_sweep(
            small_db, (Resolution.HOURLY,), spec=sweep_spec,
            max_pairs_per_resolution=2,
        )
        assert results[0].n_window_pairs == 2

    def test_rejects_bad_cap(self, small_db, sweep_spec):
        with pytest.raises(ValueError):
            granularity_sweep(small_db, spec=sweep_spec, max_pairs_per_resolution=0)

    def test_hourly_energy_exceeds_weekly(self, small_db, sweep_spec):
        """The S2 finding: short windows catch diurnal churn that weekly
        averaging smooths away (weekly pairs differ only by noise and
        seasonality)."""
        results = granularity_sweep(
            small_db,
            (Resolution.HOURLY, Resolution.WEEKLY),
            spec=sweep_spec,
            max_pairs_per_resolution=6,
        )
        hourly, weekly = results
        assert hourly.mean_energy > weekly.mean_energy


class TestQuantileSweep:
    def test_customer_counts_decrease(self, small_db, sweep_spec):
        t1 = HourWindow(61, 63)
        t2 = HourWindow(67, 69)
        results = quantile_sweep(
            small_db, t1, t2, quantiles=(0.3, 0.6, 0.9), spec=sweep_spec
        )
        counts = [r.n_customers for r in results]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_all_results_have_energy(self, small_db, sweep_spec):
        results = quantile_sweep(
            small_db,
            HourWindow(61, 63),
            HourWindow(67, 69),
            quantiles=(0.3, 0.5, 0.7),
            spec=sweep_spec,
        )
        for r in results:
            assert np.isfinite(r.energy)
            assert r.n_flows >= 0

    def test_rejects_bad_quantiles(self, small_db, sweep_spec):
        with pytest.raises(ValueError):
            quantile_sweep(
                small_db,
                HourWindow(0, 2),
                HourWindow(2, 4),
                quantiles=(1.0,),
                spec=sweep_spec,
            )

    def test_default_grid_built_when_omitted(self, small_db):
        results = quantile_sweep(
            small_db, HourWindow(61, 63), HourWindow(67, 69), quantiles=(0.5,)
        )
        assert len(results) == 1
