"""Tests for shift fields, flow extraction and O-D smoothing (Eq. 4)."""

import numpy as np
import pytest

from repro.core.shift.flow import (
    FlowArrow,
    ShiftField,
    flow_vectors,
    major_flows,
)
from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.core.shift.odflow import smooth_od_flows
from repro.db.spatial import BBox


@pytest.fixture()
def spec():
    return GridSpec(BBox(0.0, 0.0, 1.0, 1.0), nx=48, ny=48)


@pytest.fixture()
def two_blob_shift(spec):
    """Demand moves from a west blob (t1) to an east blob (t2) — the
    schematic of the paper's Figure 2."""
    west = np.array([[0.25, 0.5]])
    east = np.array([[0.75, 0.5]])
    # Narrow kernels relative to the ~55 km blob separation keep the
    # difference surface's extrema at the blob centres.
    h = 12_000.0  # metres; the unit box is ~111 km wide
    before = kde_density(west, None, spec, bandwidth_m=h)
    after = kde_density(east, None, spec, bandwidth_m=h)
    return ShiftField.between(before, after)


class TestShiftField:
    def test_between_requires_same_spec(self, spec, two_blob_shift):
        other = GridSpec(BBox(0.0, 0.0, 1.0, 1.0), nx=24, ny=24)
        west = np.array([[0.25, 0.5]])
        a = kde_density(west, None, spec, bandwidth_m=1e4)
        b = kde_density(west, None, other, bandwidth_m=1e4)
        with pytest.raises(ValueError, match="spec"):
            ShiftField.between(a, b)

    def test_shift_sums_to_zero(self, two_blob_shift):
        """Mass is conserved: the difference of two unit-mass densities has
        (near) zero integral — gain equals loss."""
        assert two_blob_shift.values.sum() == pytest.approx(0.0, abs=1e-6)

    def test_peaks_at_blob_centres(self, two_blob_shift):
        lon_gain, lat_gain, gain = two_blob_shift.peak_gain()
        lon_loss, lat_loss, loss = two_blob_shift.peak_loss()
        assert gain > 0 > loss
        assert abs(lon_gain - 0.75) < 0.05 and abs(lat_gain - 0.5) < 0.05
        assert abs(lon_loss - 0.25) < 0.05 and abs(lat_loss - 0.5) < 0.05

    def test_energy_positive_for_real_shift(self, two_blob_shift):
        assert two_blob_shift.energy() > 0

    def test_identical_windows_zero_field(self, spec):
        pts = np.array([[0.5, 0.5], [0.3, 0.7]])
        d = kde_density(pts, None, spec, bandwidth_m=2e4)
        field = ShiftField.between(d, d)
        assert field.energy() == 0.0
        assert major_flows(field) == []
        assert flow_vectors(field) == []


class TestFlowVectors:
    def test_arrows_point_west_to_east(self, two_blob_shift):
        arrows = flow_vectors(two_blob_shift, stride=4)
        assert arrows
        # Weighted by magnitude, the field flows east (positive dlon).
        total = sum(a.magnitude for a in arrows)
        mean_dlon = sum(a.dlon * a.magnitude for a in arrows) / total
        assert mean_dlon > 0

    def test_quantile_filters_weak_arrows(self, two_blob_shift):
        all_arrows = flow_vectors(two_blob_shift, stride=4, min_magnitude_quantile=0.0)
        strong = flow_vectors(two_blob_shift, stride=4, min_magnitude_quantile=0.9)
        assert len(strong) < len(all_arrows)
        min_strong = min(a.magnitude for a in strong)
        assert all(a.magnitude <= min_strong or a in strong for a in all_arrows)

    def test_validation(self, two_blob_shift):
        with pytest.raises(ValueError, match="stride"):
            flow_vectors(two_blob_shift, stride=0)
        with pytest.raises(ValueError, match="quantile"):
            flow_vectors(two_blob_shift, min_magnitude_quantile=1.5)


class TestMajorFlows:
    def test_single_transport_arrow(self, two_blob_shift):
        flows = major_flows(two_blob_shift, max_flows=3)
        assert len(flows) >= 1
        main = flows[0]
        # From the loss blob to the gain blob.
        assert main.lon < 0.5 < main.tip[0]
        assert main.magnitude > 0

    def test_flows_sorted_by_magnitude(self, spec):
        losses = np.array([[0.2, 0.2], [0.2, 0.8]])
        gains = np.array([[0.8, 0.2], [0.8, 0.8]])
        before = kde_density(losses, np.array([3.0, 1.0]), spec, bandwidth_m=3e4)
        after = kde_density(gains, np.array([3.0, 1.0]), spec, bandwidth_m=3e4)
        flows = major_flows(ShiftField.between(before, after), max_flows=4)
        mags = [f.magnitude for f in flows]
        assert mags == sorted(mags, reverse=True)

    def test_validation(self, two_blob_shift):
        with pytest.raises(ValueError):
            major_flows(two_blob_shift, max_flows=0)
        with pytest.raises(ValueError):
            major_flows(two_blob_shift, threshold_quantile=1.0)


class TestFlowArrow:
    def test_tip(self):
        arrow = FlowArrow(1.0, 2.0, 0.5, -0.5, 1.0)
        assert arrow.tip == (1.5, 1.5)


class TestOdSmoothing:
    def _arrow(self, lon, lat, dlon, dlat, mag):
        return FlowArrow(lon, lat, dlon, dlat, mag)

    def test_merges_near_duplicates(self):
        a = self._arrow(0.0, 0.0, 1.0, 0.0, 2.0)
        b = self._arrow(0.01, 0.0, 0.99, 0.0, 1.0)
        merged = smooth_od_flows([a, b], endpoint_scale=0.1)
        assert len(merged) == 1
        assert merged[0].magnitude == pytest.approx(3.0)

    def test_keeps_distinct_flows(self):
        a = self._arrow(0.0, 0.0, 1.0, 0.0, 2.0)
        b = self._arrow(0.0, 5.0, 1.0, 0.0, 1.0)
        merged = smooth_od_flows([a, b], endpoint_scale=0.1)
        assert len(merged) == 2

    def test_total_magnitude_conserved(self, two_blob_shift):
        arrows = flow_vectors(two_blob_shift, stride=3)
        merged = smooth_od_flows(arrows, endpoint_scale=0.2)
        assert sum(m.magnitude for m in merged) == pytest.approx(
            sum(a.magnitude for a in arrows)
        )
        assert len(merged) <= len(arrows)

    def test_same_origin_different_destination_not_merged(self):
        a = self._arrow(0.0, 0.0, 1.0, 0.0, 2.0)
        b = self._arrow(0.0, 0.0, -1.0, 0.0, 1.0)
        assert len(smooth_od_flows([a, b], endpoint_scale=0.1)) == 2

    def test_max_flows_cap(self, two_blob_shift):
        arrows = flow_vectors(two_blob_shift, stride=3)
        merged = smooth_od_flows(arrows, endpoint_scale=0.01, max_flows=2)
        assert len(merged) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            smooth_od_flows([], endpoint_scale=0.0)
        assert smooth_od_flows([], endpoint_scale=1.0) == []
