"""Tests for density grids and the weighted KDE (paper Eq. 3)."""

import numpy as np
import pytest

from repro.core.shift.grids import DensityGrid, GridSpec
from repro.core.shift.kde import bandwidth_silverman, kde_density, normalize_weights
from repro.db.geo import meters_per_degree
from repro.db.spatial import BBox


@pytest.fixture()
def spec():
    return GridSpec(BBox(12.50, 55.62, 12.64, 55.74), nx=64, ny=64)


class TestGridSpec:
    def test_cell_geometry(self, spec):
        assert spec.cell_width == pytest.approx(0.14 / 64)
        lons = spec.lon_centers()
        assert lons[0] == pytest.approx(12.50 + spec.cell_width / 2)
        assert lons.size == 64

    def test_mesh_shapes(self, spec):
        lons, lats = spec.mesh()
        assert lons.shape == (64, 64)
        assert lats.shape == (64, 64)

    def test_cell_of_clipping(self, spec):
        assert spec.cell_of(12.50, 55.62) == (0, 0)
        assert spec.cell_of(-50.0, -50.0) == (0, 0)
        assert spec.cell_of(200.0, 89.0) == (63, 63)

    def test_covering(self):
        pts = np.array([[12.5, 55.6], [12.6, 55.7]])
        spec = GridSpec.covering(pts, nx=32, ny=32, margin=0.1)
        assert spec.bbox.min_lon < 12.5
        assert spec.bbox.max_lat > 55.7
        assert spec.nx == 32

    def test_covering_rejects_empty(self):
        with pytest.raises(ValueError):
            GridSpec.covering(np.empty((0, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSpec(BBox(0, 0, 1, 1), nx=1)

    def test_density_grid_shape_check(self, spec):
        with pytest.raises(ValueError, match="shape"):
            DensityGrid(spec=spec, values=np.zeros((3, 3)))


class TestKde:
    def test_mass_integrates_to_one(self, spec, rng):
        """Eq. 3 with weights summing to n integrates to ~1 when the grid
        covers the kernel support."""
        pts = rng.normal([12.57, 55.68], 0.008, size=(200, 2))
        weights = rng.uniform(0.5, 2.0, 200)
        grid = kde_density(pts, weights, spec, bandwidth_m=200.0)
        assert grid.total_mass() == pytest.approx(1.0, abs=0.03)

    def test_density_nonnegative(self, spec, rng):
        pts = rng.normal([12.57, 55.68], 0.01, size=(50, 2))
        grid = kde_density(pts, None, spec)
        assert (grid.values >= 0).all()

    def test_uniform_weights_equal_unweighted(self, spec, rng):
        pts = rng.normal([12.57, 55.68], 0.01, size=(60, 2))
        unweighted = kde_density(pts, None, spec, bandwidth_m=300.0)
        weighted = kde_density(
            pts, np.full(60, 7.3), spec, bandwidth_m=300.0
        )
        np.testing.assert_allclose(weighted.values, unweighted.values, rtol=1e-9)

    def test_weight_shifts_density_toward_heavy_customers(self, spec):
        west = np.array([[12.53, 55.68]])
        east = np.array([[12.61, 55.68]])
        pts = np.vstack([west, east])
        grid = kde_density(pts, np.array([10.0, 1.0]), spec, bandwidth_m=300.0)
        lon_max, _, _ = grid.max_cell()
        assert abs(lon_max - 12.53) < 0.01

    def test_peak_at_point_mass(self, spec):
        pts = np.array([[12.57, 55.68]])
        grid = kde_density(pts, None, spec, bandwidth_m=250.0)
        lon, lat, _ = grid.max_cell()
        assert abs(lon - 12.57) < spec.cell_width
        assert abs(lat - 55.68) < spec.cell_height

    def test_bandwidth_controls_spread(self, spec):
        pts = np.array([[12.57, 55.68]])
        narrow = kde_density(pts, None, spec, bandwidth_m=100.0)
        wide = kde_density(pts, None, spec, bandwidth_m=800.0)
        assert narrow.values.max() > wide.values.max()

    def test_anisotropy_corrected(self, spec):
        """Equal metre offsets north and east must yield equal density —
        the latitude distortion of degrees is compensated."""
        m_per_lon, m_per_lat = meters_per_degree(55.68)
        center = np.array([[12.57, 55.68]])
        # Bandwidth well above the ~200 m cell size so grid quantisation
        # cannot dominate the comparison.
        grid = kde_density(center, None, spec, bandwidth_m=2000.0)
        d_north = grid.value_at(12.57, 55.68 + 2000.0 / m_per_lat)
        d_east = grid.value_at(12.57 + 2000.0 / m_per_lon, 55.68)
        assert d_north == pytest.approx(d_east, rel=0.15)

    def test_silverman_positive(self, rng):
        pts_m = rng.normal(0, 500, size=(100, 2))
        h = bandwidth_silverman(pts_m)
        assert h > 0
        with pytest.raises(ValueError):
            bandwidth_silverman(pts_m[:1])

    def test_coincident_points_fallback(self):
        pts_m = np.zeros((10, 2))
        assert bandwidth_silverman(pts_m) == 1.0

    def test_input_validation(self, spec):
        with pytest.raises(ValueError, match="positions"):
            kde_density(np.zeros((3, 3)), None, spec)
        with pytest.raises(ValueError, match="zero points"):
            kde_density(np.empty((0, 2)), None, spec)
        pts = np.array([[12.57, 55.68]])
        with pytest.raises(ValueError, match="weights"):
            kde_density(pts, np.ones(3), spec)
        with pytest.raises(ValueError, match="NaN"):
            kde_density(pts, np.array([np.nan]), spec)
        with pytest.raises(ValueError, match="bandwidth"):
            kde_density(pts, None, spec, bandwidth_m=0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -250.0])
    def test_non_finite_bandwidth_rejected(self, spec, bad):
        """A NaN bandwidth slips past ``> 0`` guards and yields a grid of
        NaNs; the kernel must reject it up front."""
        pts = np.array([[12.57, 55.68]])
        with pytest.raises(ValueError, match="bandwidth"):
            kde_density(pts, None, spec, bandwidth_m=bad)


class TestNormalizeWeights:
    def test_sums_to_n(self, rng):
        w = normalize_weights(rng.uniform(0, 5, size=40))
        assert w.sum() == pytest.approx(40.0)

    def test_all_zero_becomes_uniform(self):
        w = normalize_weights(np.zeros(5))
        np.testing.assert_array_equal(w, np.ones(5))

    def test_negative_clipped(self):
        w = normalize_weights(np.array([-1.0, 1.0]))
        assert w[0] == 0.0
        assert w.sum() == pytest.approx(2.0)
