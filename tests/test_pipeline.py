"""Tests for the VapSession facade (the logic layer)."""

import numpy as np
import pytest

from repro.core.patterns.selection import KnnSelection, RectSelection
from repro.core.pipeline import VapSession
from repro.data.timeseries import HourWindow
from repro.preprocess.features import FeatureKind


class TestConstruction:
    def test_preprocessing_runs_by_default(self, small_session):
        assert small_session.series.missing_fraction() == 0.0
        assert small_session.anomalies is not None
        assert small_session.anomalies.total > 0
        assert small_session.quality.missing_fraction > 0.0

    def test_preprocess_false_keeps_raw(self, small_city):
        session = VapSession.from_city(small_city, preprocess=False)
        assert session.series.missing_fraction() > 0.0
        assert session.anomalies is None

    def test_from_city_clean(self, small_city):
        session = VapSession.from_city(small_city, use_raw=False)
        assert session.quality.missing_fraction == 0.0


class TestEmbedding:
    def test_caching_by_parameters(self, small_session):
        a = small_session.embed(n_iter=150)
        b = small_session.embed(n_iter=150)
        assert a is b
        c = small_session.embed(n_iter=151)
        assert c is not a

    def test_methods_produce_2d(self, small_session):
        for method in ("tsne", "mds", "mds_classical"):
            info = small_session.embed(method=method, n_iter=100)
            assert info.coords.shape == (len(small_session.db), 2)
            assert np.isfinite(info.objective)

    def test_unknown_method(self, small_session):
        with pytest.raises(ValueError, match="method"):
            small_session.embed(method="umap")

    def test_feature_cache(self, small_session):
        a = small_session.features(FeatureKind.MEAN_DAY)
        b = small_session.features(FeatureKind.MEAN_DAY)
        assert a is b
        assert a.shape[1] == 24


class TestSelectionWorkflow:
    def test_select_label_profile_round_trip(self, small_session):
        info = small_session.embed(n_iter=150)
        session = small_session.selection_session(info)
        idx = session.select("g", KnnSelection(info.coords[0, 0], info.coords[0, 1], 8))
        label = small_session.pattern_of(idx)
        assert label.archetype is not None
        profile = small_session.profile_of(idx)
        assert profile.shape[0] == small_session.series.n_steps
        ids = small_session.customers_of(idx)
        assert len(ids) == 8

    def test_member_labels_cached(self, small_session):
        assert small_session.member_labels() is small_session.member_labels()

    def test_empty_profile_rejected(self, small_session):
        with pytest.raises(ValueError):
            small_session.profile_of(np.array([], dtype=np.int64))

    def test_kmeans_baseline(self, small_session):
        result = small_session.kmeans_baseline(k=4)
        assert np.unique(result.labels).size == 4


class TestShiftWorkflow:
    def test_density_and_shift(self, small_session):
        t1 = HourWindow(61, 63)
        t2 = HourWindow(67, 69)
        density = small_session.density(t2)
        assert density.total_mass() == pytest.approx(1.0, abs=0.15)
        field = small_session.shift(t1, t2)
        assert field.energy() > 0

    def test_flow_styles(self, small_session):
        t1 = HourWindow(61, 63)
        t2 = HourWindow(67, 69)
        major = small_session.flows(t1, t2, style="major")
        dense = small_session.flows(t1, t2, style="field")
        assert len(dense) > len(major) >= 1
        with pytest.raises(ValueError, match="style"):
            small_session.flows(t1, t2, style="spiral")

    def test_grid_cached_per_resolution(self, small_session):
        a = small_session.grid()
        b = small_session.grid()
        assert a is b
        c = small_session.grid(nx=32, ny=32)
        assert c is not a
        # Explicit grids are sticky now; restore the default so the
        # shared session keeps its 96x96 grid for later tests.
        restored = small_session.grid(nx=96, ny=96)
        assert (restored.nx, restored.ny) == (96, 96)

    def test_customer_subset_shift(self, small_session):
        ids = small_session.db.customer_ids[:10]
        field = small_session.shift(HourWindow(61, 63), HourWindow(67, 69), customer_ids=ids)
        assert np.isfinite(field.values).all()


class TestForecastApi:
    def test_methods_agree_on_shapes(self, small_session):
        cid = small_session.db.customer_ids[0]
        for method in ("profile", "seasonal", "naive"):
            out = small_session.forecast(cid, horizon=48, method=method)
            assert out.shape == (48,)
            assert (out >= 0).all()

    def test_profile_tracks_diurnal_shape(self, small_session):
        """The pattern forecast must vary within the day for a customer
        with a diurnal pattern."""
        import numpy as np

        means = small_session.series.per_customer_mean()
        cid = int(small_session.series.customer_ids[int(np.argmax(means))])
        out = small_session.forecast(cid, horizon=24, method="profile")
        assert out.max() > 1.05 * max(out.min(), 1e-9)

    def test_unknown_method(self, small_session):
        with pytest.raises(ValueError, match="method"):
            small_session.forecast(small_session.db.customer_ids[0], method="arima")

    def test_unknown_customer(self, small_session):
        with pytest.raises(KeyError):
            small_session.forecast(10**9)


@pytest.fixture(scope="module")
def tiny_city():
    """A minimal city for tests that need their own mutable session."""
    from repro.data.generator.simulate import CityConfig, generate_city

    return generate_city(CityConfig(n_customers=25, n_days=7, seed=33))


class TestIndexValidation:
    """Out-of-range embedding rows must fail loudly, never wrap around."""

    def test_profile_of_rejects_negative_indices(self, small_session):
        with pytest.raises(ValueError, match="indices"):
            small_session.profile_of(np.array([-1]))

    def test_profile_of_rejects_out_of_range(self, small_session):
        n = len(small_session.series.customer_ids)
        with pytest.raises(ValueError, match="indices"):
            small_session.profile_of(np.array([n]))

    def test_customers_of_rejects_negative_indices(self, small_session):
        with pytest.raises(ValueError, match="indices"):
            small_session.customers_of(np.array([0, -3]))

    def test_pattern_of_rejects_out_of_range(self, small_session):
        n = len(small_session.series.customer_ids)
        with pytest.raises(ValueError, match="indices"):
            small_session.pattern_of(np.array([n + 5]))

    def test_valid_bounds_still_work(self, small_session):
        n = len(small_session.series.customer_ids)
        ids = small_session.customers_of(np.array([0, n - 1]))
        assert len(ids) == 2


class TestGridReuse:
    def test_density_reuses_custom_grid(self, tiny_city):
        """A grid chosen explicitly must survive a later default-size
        density call instead of being rebuilt at 96x96 and dropped."""
        session = VapSession.from_city(tiny_city, preprocess=False)
        custom = session.grid(nx=32, ny=48)
        grid = session.density(HourWindow(13, 15))
        assert grid.spec is custom
        assert (grid.spec.nx, grid.spec.ny) == (32, 48)
        # And the cached spec is still what grid() returns afterwards.
        assert session.grid() is custom

    def test_same_resolution_not_rebuilt(self, tiny_city):
        session = VapSession.from_city(tiny_city, preprocess=False)
        a = session.grid(nx=32, ny=32)
        assert session.grid(nx=32, ny=32) is a


class TestCacheBehaviour:
    def test_embedding_lru_eviction(self, tiny_city):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        session = VapSession.from_city(
            tiny_city, metrics=registry, max_embeddings=2
        )
        a = session.embed(n_iter=20, perplexity=4.0, seed=0)
        session.embed(n_iter=20, perplexity=4.0, seed=1)
        session.embed(n_iter=20, perplexity=4.0, seed=2)  # evicts seed=0
        evictions = registry.counter(
            "pipeline_cache_evictions_total", cache="embed"
        )
        assert evictions.value == 1
        # seed=0 was evicted: asking again recomputes (fresh object).
        b = session.embed(n_iter=20, perplexity=4.0, seed=0)
        assert b is not a

    def test_density_cached_per_window(self, tiny_city):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        session = VapSession.from_city(
            tiny_city, preprocess=False, metrics=registry
        )
        a = session.density(HourWindow(13, 15))
        b = session.density(HourWindow(13, 15))
        assert a is b
        c = session.density(HourWindow(19, 21))
        assert c is not a
        hits = registry.counter(
            "pipeline_cache_total", op="density", result="hit"
        )
        misses = registry.counter(
            "pipeline_cache_total", op="density", result="miss"
        )
        assert hits.value == 1
        assert misses.value == 2

    def test_density_bandwidth_distinguishes_cache_keys(self, tiny_city):
        session = VapSession.from_city(tiny_city, preprocess=False)
        a = session.density(HourWindow(13, 15), bandwidth_m=5000.0)
        b = session.density(HourWindow(13, 15), bandwidth_m=9000.0)
        assert a is not b


class TestDeadlineIntegration:
    def test_expired_deadline_blocks_embed(self, tiny_city):
        from repro.core.deadline import (
            Deadline,
            DeadlineExceeded,
            bind_deadline,
        )

        session = VapSession.from_city(tiny_city)
        now = [0.0]
        deadline = Deadline(0.5, clock=lambda: now[0])
        now[0] = 1.0  # budget spent before the kernel starts
        with bind_deadline(deadline):
            with pytest.raises(DeadlineExceeded):
                session.embed(n_iter=20, perplexity=4.0)
            with pytest.raises(DeadlineExceeded):
                session.density(HourWindow(13, 15))
            with pytest.raises(DeadlineExceeded):
                session.kmeans_baseline(k=3)

    def test_unexpired_deadline_allows_work(self, tiny_city):
        from repro.core.deadline import Deadline, bind_deadline

        session = VapSession.from_city(tiny_city)
        with bind_deadline(Deadline(3600.0)):
            info = session.embed(n_iter=20, perplexity=4.0)
        assert info.coords.shape[1] == 2
