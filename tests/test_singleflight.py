"""Unit tests for the single-flight cache and request deadlines."""

import threading
import time

import pytest

from repro.core.deadline import (
    Deadline,
    DeadlineExceeded,
    bind_deadline,
    current_deadline,
)
from repro.core.singleflight import (
    HIT,
    LEADER,
    WAITER,
    SingleFlightCache,
    WaitTimeout,
)


class TestSingleFlightCacheBasics:
    def test_leader_then_hit(self):
        cache = SingleFlightCache()
        calls = []
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, outcome) == (42, LEADER)
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 43)
        assert (value, outcome) == (42, HIT)
        assert len(calls) == 1

    def test_distinct_keys_compute_separately(self):
        cache = SingleFlightCache()
        assert cache.get_or_compute("a", lambda: 1)[0] == 1
        assert cache.get_or_compute("b", lambda: 2)[0] == 2
        assert len(cache) == 2
        assert "a" in cache and "b" in cache

    def test_failed_compute_not_cached_and_retries(self):
        cache = SingleFlightCache()

        def boom():
            raise RuntimeError("kernel exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        # The key is free again: a later call retries and can succeed.
        assert cache.get_or_compute("k", lambda: 7)[0] == 7

    def test_peek_does_not_compute(self):
        cache = SingleFlightCache()
        assert cache.peek("k") is None
        cache.get_or_compute("k", lambda: 5)
        assert cache.peek("k") == 5

    def test_max_entries_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            SingleFlightCache(max_entries=0)


class TestLruEviction:
    def test_evicts_least_recently_used(self):
        evicted = []
        cache = SingleFlightCache(
            max_entries=2, on_evict=lambda k, v: evicted.append(k)
        )
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        assert evicted == ["b"]
        assert cache.keys() == ["a", "c"]
        # "b" was dropped: recomputing it is a fresh leader run.
        assert cache.get_or_compute("b", lambda: 9)[0] == 9
        assert evicted == ["b", "a"]


class TestSingleFlightConcurrency:
    def test_concurrent_misses_compute_once(self):
        cache = SingleFlightCache()
        n = 8
        barrier = threading.Barrier(n)
        computed = []
        outcomes = []
        lock = threading.Lock()

        def compute():
            computed.append(1)
            time.sleep(0.05)  # long enough for every thread to join the wait
            return "result"

        def worker():
            barrier.wait()
            value, outcome = cache.get_or_compute("k", compute)
            with lock:
                outcomes.append((value, outcome))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computed) == 1
        assert all(v == "result" for v, _ in outcomes)
        kinds = [o for _, o in outcomes]
        assert kinds.count(LEADER) == 1
        assert kinds.count(WAITER) == n - 1

    def test_leader_failure_propagates_to_waiters(self):
        cache = SingleFlightCache()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=5)
            raise RuntimeError("leader failed")

        errors = []

        def leader():
            try:
                cache.get_or_compute("k", compute)
            except RuntimeError as exc:
                errors.append(exc)

        def waiter():
            entered.wait(timeout=5)
            try:
                cache.get_or_compute("k", lambda: "never")
            except RuntimeError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=leader)
        t2 = threading.Thread(target=waiter)
        t1.start()
        entered.wait(timeout=5)
        t2.start()
        time.sleep(0.02)  # give the waiter time to park on the event
        release.set()
        t1.join()
        t2.join()
        assert len(errors) == 2
        assert "k" not in cache

    def test_waiter_timeout(self):
        cache = SingleFlightCache()
        entered = threading.Event()
        release = threading.Event()

        def compute():
            entered.set()
            release.wait(timeout=5)
            return 1

        t = threading.Thread(target=lambda: cache.get_or_compute("k", compute))
        t.start()
        entered.wait(timeout=5)
        with pytest.raises(WaitTimeout):
            cache.get_or_compute("k", lambda: 2, timeout=0.01)
        release.set()
        t.join()


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1)

    def test_remaining_and_check(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(10.0)
        deadline.check("embed")  # plenty of budget: no raise
        now[0] = 10.5
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="embed"):
            deadline.check("embed")

    def test_bind_and_unbind(self):
        assert current_deadline() is None
        deadline = Deadline(5.0)
        with bind_deadline(deadline) as bound:
            assert bound is deadline
            assert current_deadline() is deadline
            with bind_deadline(None):
                assert current_deadline() is None
            assert current_deadline() is deadline
        assert current_deadline() is None
