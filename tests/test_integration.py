"""Integration tests: the paper's workflows end to end.

Each test replays one of the demo's analysis loops across the full stack —
generator → database → preprocessing → models → (REST / viz) — asserting
the *findings* the paper narrates, not just that code runs.
"""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.cluster.metrics import adjusted_rand_index, purity
from repro.core.patterns.selection import KnnSelection
from repro.core.pipeline import VapSession
from repro.data.meter import ZoneKind
from repro.data.timeseries import HourWindow
from repro.server import TestClient, VapApp
from repro.viz.dashboard import render_dashboard


class TestFigure3Story:
    """The headline narrative: evening demand flows commercial→residential,
    and the five typical patterns are discoverable in the embedding."""

    def test_commercial_to_residential_evening_flow(self, small_session, small_city):
        # A Wednesday: 13-15h (office hours) vs 19-21h (evening).
        day = 24 * 2
        flows = small_session.flows(
            HourWindow(day + 13, day + 15), HourWindow(day + 19, day + 21)
        )
        assert flows, "expected at least one major flow"
        main = flows[0]
        src_zone = small_city.layout.nearest_zone(main.lon, main.lat)
        dst_zone = small_city.layout.nearest_zone(*main.tip)
        # In the small fixture the strongest losing blob can sit in either
        # work district (commercial core or industrial fringe); the paper's
        # claim is the direction of the mass mobility: work -> home.
        assert src_zone.kind in (ZoneKind.COMMERCIAL, ZoneKind.INDUSTRIAL)
        assert dst_zone.kind is ZoneKind.RESIDENTIAL

    def test_reverse_window_reverses_flow(self, small_session, small_city):
        day = 24 * 2
        flows = small_session.flows(
            HourWindow(day + 19, day + 21), HourWindow(day + 13, day + 15)
        )
        main = flows[0]
        src_zone = small_city.layout.nearest_zone(main.lon, main.lat)
        dst_zone = small_city.layout.nearest_zone(*main.tip)
        assert src_zone.kind is ZoneKind.RESIDENTIAL
        assert dst_zone.kind in (ZoneKind.COMMERCIAL, ZoneKind.INDUSTRIAL)

    def test_five_patterns_discoverable_by_selection(self, year_session, year_city):
        """Clicking near a known exemplar of each canonical pattern must
        recover that pattern's label — the S1 interactive loop."""
        info = year_session.embed(n_iter=400)
        truth = year_city.archetype_labels()
        consistent = 0
        checked = 0
        for pattern in ("bimodal", "energy_saving", "idle", "constant_high",
                        "suspicious"):
            exemplars = np.flatnonzero(truth == pattern)
            if exemplars.size < 3:
                continue
            seed = exemplars[0]
            idx = KnnSelection(
                info.coords[seed, 0], info.coords[seed, 1], 6
            ).apply(info.coords)
            label = year_session.pattern_of(idx)
            # The tool must name the selection consistently with what was
            # actually selected (a click can land on a cluster boundary, in
            # which case the majority — up to a tie — decides).
            values, counts = np.unique(truth[idx], return_counts=True)
            acceptable = set(values[counts >= counts.max() - 1])
            checked += 1
            if label.archetype.value in acceptable:
                consistent += 1
        assert checked == 5
        assert consistent >= 4, f"only {consistent}/5 selections consistent"


class TestS1Comparison:
    def test_visual_labeling_beats_kmeans(self, year_session, year_city):
        """S1 step 4: 'explain the advantages of using the visual analysis
        method' — template-guided labelling agrees with ground truth better
        than k-means on the same features."""
        truth = year_city.archetype_labels()
        visual = np.array(
            [p.archetype.value for p in year_session.member_labels()]
        )
        km = year_session.kmeans_baseline(k=6)
        ari_visual = adjusted_rand_index(truth, visual)
        ari_kmeans = adjusted_rand_index(truth, km.labels)
        assert ari_visual > ari_kmeans
        assert purity(truth, visual) > purity(truth, km.labels)

    def test_tsne_beats_mds_on_kl(self, small_session):
        """S1 step 3: compare reducers on the paper's Eq. 1 objective."""
        from repro.core.reduction.distances import pairwise_distances
        from repro.core.reduction.quality import kl_divergence_embedding

        tsne_info = small_session.embed(method="tsne")
        mds_info = small_session.embed(method="mds")
        dist = pairwise_distances(small_session.features(), "pearson")
        kl_mds = kl_divergence_embedding(dist, mds_info.coords)
        assert tsne_info.objective < kl_mds


class TestRestAndVizIntegration:
    def test_api_selection_matches_local_selection(self, small_session, small_city):
        client = TestClient(VapApp(small_session, layout=small_city.layout))
        emb = client.get("/api/embedding").json
        x, y = emb["points"][0]
        api_sel = client.post(
            "/api/selection", json={"type": "knn", "x": x, "y": y, "k": 5}
        ).json
        local_idx = KnnSelection(x, y, 5).apply(small_session.embed().coords)
        assert api_sel["indices"] == local_idx.tolist()
        assert api_sel["customer_ids"] == small_session.customers_of(local_idx)

    def test_dashboard_from_api_selection(self, small_session, small_city):
        client = TestClient(VapApp(small_session))
        emb = client.get("/api/embedding").json
        x, y = emb["points"][3]
        sel = client.post(
            "/api/selection", json={"type": "knn", "x": x, "y": y, "k": 7}
        ).json
        html_text = render_dashboard(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            selection=np.asarray(sel["indices"]),
            layout=small_city.layout,
        )
        for svg in re.findall(r"<svg.*?</svg>", html_text, re.S):
            ET.fromstring(svg)
        assert f"{sel['count']} customers" in html_text


class TestCsvRoundTripPipeline:
    def test_export_import_preserves_analysis(self, small_city, tmp_path):
        """Data can leave and re-enter the tool via CSV without changing
        model outputs (the warehouse-integration path)."""
        from repro.data.loader import (
            load_customers,
            load_readings_wide,
            save_customers,
            save_readings_wide,
        )
        from repro.db.engine import EnergyDatabase

        save_customers(small_city.customers, tmp_path / "c.csv")
        save_readings_wide(small_city.raw, tmp_path / "r.csv")
        customers = load_customers(tmp_path / "c.csv")
        readings = load_readings_wide(tmp_path / "r.csv")
        session_a = VapSession(EnergyDatabase(customers, readings))
        session_b = VapSession(
            EnergyDatabase(small_city.customers, small_city.raw)
        )
        a = session_a.embed(n_iter=120)
        b = session_b.embed(n_iter=120)
        np.testing.assert_allclose(a.coords, b.coords, atol=1e-9)


class TestStorageRoundTripPipeline:
    def test_saved_database_reproduces_analysis(self, small_city, tmp_path):
        """Durable storage path: save → load → identical model outputs."""
        from repro.db.engine import EnergyDatabase
        from repro.db.storage import load_database, save_database

        db = EnergyDatabase(small_city.customers, small_city.raw)
        save_database(db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        a = VapSession(db).embed(n_iter=120)
        b = VapSession(loaded).embed(n_iter=120)
        np.testing.assert_allclose(a.coords, b.coords, atol=1e-12)
