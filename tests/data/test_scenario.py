"""Tests for the EV-adoption what-if scenario."""

import numpy as np
import pytest

from repro.data.generator.scenario import EvConfig, apply_ev_adoption
from repro.data.meter import ZoneKind


class TestEvConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvConfig(charger_kw=0.0)
        with pytest.raises(ValueError):
            EvConfig(plugin_hour_range=(22, 5))
        with pytest.raises(ValueError):
            EvConfig(duration_range=(0, 3))
        with pytest.raises(ValueError):
            EvConfig(charge_probability_workday=1.5)


class TestApplyEvAdoption:
    def test_zero_adoption_is_identity(self, small_city):
        scenario, adopters = apply_ev_adoption(small_city, 0.0)
        assert adopters == []
        np.testing.assert_array_equal(
            scenario.clean.matrix, small_city.clean.matrix
        )

    def test_input_not_mutated(self, small_city):
        before = small_city.clean.matrix.copy()
        apply_ev_adoption(small_city, 0.5, seed=1)
        np.testing.assert_array_equal(small_city.clean.matrix, before)

    def test_only_residential_customers_adopt(self, small_city):
        _, adopters = apply_ev_adoption(small_city, 1.0, seed=2)
        for cid in adopters:
            assert small_city.customer(cid).zone is ZoneKind.RESIDENTIAL
        n_residential = sum(
            1 for c in small_city.customers if c.zone is ZoneKind.RESIDENTIAL
        )
        assert len(adopters) == n_residential

    def test_adoption_rate_counts(self, small_city):
        _, half = apply_ev_adoption(small_city, 0.5, seed=3)
        n_residential = sum(
            1 for c in small_city.customers if c.zone is ZoneKind.RESIDENTIAL
        )
        assert len(half) == round(0.5 * n_residential)

    def test_load_added_in_evening_hours(self, small_city):
        scenario, adopters = apply_ev_adoption(small_city, 0.6, seed=4)
        added = scenario.clean.matrix - small_city.clean.matrix
        rows = [small_city.clean.row_index(cid) for cid in adopters]
        extra = added[rows]
        assert extra.sum() > 0
        hours = np.arange(extra.shape[1]) % 24
        evening = extra[:, (hours >= 17) & (hours < 24)].sum()
        morning = extra[:, (hours >= 4) & (hours < 12)].sum()
        assert evening > 5 * morning
        # Non-adopters untouched.
        others = [r for r in range(added.shape[0]) if r not in rows]
        assert np.abs(added[others]).sum() == 0.0

    def test_raw_missing_cells_stay_missing(self, small_city):
        scenario, _ = apply_ev_adoption(small_city, 0.8, seed=5)
        np.testing.assert_array_equal(
            np.isnan(scenario.raw.matrix), np.isnan(small_city.raw.matrix)
        )

    def test_deterministic_per_seed(self, small_city):
        a, adopters_a = apply_ev_adoption(small_city, 0.4, seed=7)
        b, adopters_b = apply_ev_adoption(small_city, 0.4, seed=7)
        assert adopters_a == adopters_b
        np.testing.assert_array_equal(a.clean.matrix, b.clean.matrix)

    def test_bad_rate_rejected(self, small_city):
        with pytest.raises(ValueError):
            apply_ev_adoption(small_city, 1.5)

    def test_amplifies_evening_shift(self, small_city):
        """The planning story: EV adoption strengthens the evening
        commercial→residential shift the tool visualises."""
        from repro.core.pipeline import VapSession
        from repro.data.timeseries import HourWindow

        scenario, _ = apply_ev_adoption(small_city, 0.8, seed=6)
        day = 24 * 2
        t1, t2 = HourWindow(day + 13, day + 15), HourWindow(day + 19, day + 21)
        base = VapSession.from_city(small_city, use_raw=False, preprocess=False)
        more = VapSession.from_city(scenario, use_raw=False, preprocess=False)
        # The gain may split across several residential blobs, so compare
        # the field's total churn rather than any single arrow.
        assert more.shift(t1, t2).energy() > 1.3 * base.shift(t1, t2).energy()
        # The flow geography stays work -> home.
        main = more.flows(t1, t2)[0]
        dst = small_city.layout.nearest_zone(*main.tip)
        assert dst.kind is ZoneKind.RESIDENTIAL
