"""Tests for TimeSeries / SeriesSet / Resolution / HourWindow."""

import datetime as dt

import numpy as np
import pytest

from repro.data.timeseries import (
    ALL_RESOLUTIONS,
    EPOCH,
    HourWindow,
    Resolution,
    SeriesSet,
    TimeSeries,
    datetime_to_hour,
    hour_to_datetime,
)


class TestHourConversions:
    def test_epoch_is_hour_zero(self):
        assert datetime_to_hour(EPOCH) == 0
        assert hour_to_datetime(0) == EPOCH

    def test_round_trip(self):
        for hour in (1, 25, 9000, 24 * 365 * 3):
            assert datetime_to_hour(hour_to_datetime(hour)) == hour

    def test_rejects_unaligned_datetimes(self):
        with pytest.raises(ValueError, match="whole hour"):
            datetime_to_hour(EPOCH + dt.timedelta(minutes=30))


class TestResolution:
    def test_fixed_hours(self):
        assert Resolution.HOURLY.fixed_hours == 1
        assert Resolution.FOUR_HOURLY.fixed_hours == 4
        assert Resolution.DAILY.fixed_hours == 24
        assert Resolution.WEEKLY.fixed_hours == 168
        assert Resolution.MONTHLY.fixed_hours is None

    def test_bucket_of_fixed(self):
        assert Resolution.DAILY.bucket_of(0) == 0
        assert Resolution.DAILY.bucket_of(23) == 0
        assert Resolution.DAILY.bucket_of(24) == 1

    def test_bucket_of_monthly_uses_calendar(self):
        # January 2018 has 31 days = 744 hours.
        assert Resolution.MONTHLY.bucket_of(743) == 0
        assert Resolution.MONTHLY.bucket_of(744) == 1

    def test_bucket_of_quarterly(self):
        jan_hours = 31 * 24
        assert Resolution.QUARTERLY.bucket_of(jan_hours) == 0
        # April 1st starts Q2: Jan(31)+Feb(28)+Mar(31) days.
        q2_start = (31 + 28 + 31) * 24
        assert Resolution.QUARTERLY.bucket_of(q2_start) == 1

    def test_bucket_of_yearly(self):
        assert Resolution.YEARLY.bucket_of(24 * 364) == 0
        assert Resolution.YEARLY.bucket_of(24 * 366) == 1

    def test_sweep_order_coarsens(self):
        # Every fixed resolution in the sweep is coarser than the previous.
        fixed = [r.fixed_hours for r in ALL_RESOLUTIONS if r.fixed_hours]
        assert fixed == sorted(fixed)


class TestTimeSeries:
    def test_basic_properties(self):
        ts = TimeSeries(start_hour=5, values=[1.0, 2.0, np.nan])
        assert len(ts) == 3
        assert ts.end_hour == 8
        assert ts.hours.tolist() == [5, 6, 7]
        assert ts.missing_fraction == pytest.approx(1 / 3)

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1-D"):
            TimeSeries(0, np.zeros((2, 2)))

    def test_slice_clips_to_bounds(self):
        ts = TimeSeries(10, np.arange(5.0))
        sliced = ts.slice_hours(8, 12)
        assert sliced.start_hour == 10
        assert sliced.values.tolist() == [0.0, 1.0]

    def test_slice_empty(self):
        ts = TimeSeries(10, np.arange(5.0))
        assert len(ts.slice_hours(100, 200)) == 0

    def test_slice_rejects_reversed(self):
        with pytest.raises(ValueError):
            TimeSeries(0, np.arange(3.0)).slice_hours(5, 2)

    def test_total_and_mean_ignore_nan(self):
        ts = TimeSeries(0, [1.0, np.nan, 3.0])
        assert ts.total() == 4.0
        assert ts.mean() == 2.0

    def test_mean_of_all_missing_is_nan(self):
        assert np.isnan(TimeSeries(0, [np.nan, np.nan]).mean())


class TestSeriesSet:
    def _set(self):
        return SeriesSet(
            customer_ids=[7, 3, 9],
            start_hour=100,
            matrix=np.array(
                [[1.0, 2.0, 3.0], [4.0, np.nan, 6.0], [0.0, 0.0, 0.0]]
            ),
        )

    def test_shape_accessors(self):
        ss = self._set()
        assert (ss.n_customers, ss.n_steps) == (3, 3)
        assert ss.end_hour == 103
        assert 3 in ss and 8 not in ss

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicates"):
            SeriesSet([1, 1], 0, np.zeros((2, 2)))

    def test_rejects_mismatched_ids(self):
        with pytest.raises(ValueError):
            SeriesSet([1, 2, 3], 0, np.zeros((2, 2)))

    def test_series_extraction(self):
        ts = self._set().series(3)
        assert ts.start_hour == 100
        assert np.isnan(ts.values[1])

    def test_select_customers_preserves_order(self):
        sub = self._set().select_customers([9, 7])
        assert sub.customer_ids.tolist() == [9, 7]
        assert sub.matrix[1, 0] == 1.0

    def test_select_unknown_customer_raises(self):
        with pytest.raises(KeyError):
            self._set().select_customers([42])

    def test_slice_hours(self):
        sub = self._set().slice_hours(101, 103)
        assert sub.start_hour == 101
        assert sub.matrix.shape == (3, 2)

    def test_from_series_round_trip(self):
        ss = self._set()
        rebuilt = SeriesSet.from_series(
            (int(cid), ss.series(int(cid))) for cid in ss.customer_ids
        )
        np.testing.assert_array_equal(
            rebuilt.matrix[~np.isnan(rebuilt.matrix)],
            ss.matrix[~np.isnan(ss.matrix)],
        )

    def test_from_series_rejects_misaligned(self):
        with pytest.raises(ValueError, match="not aligned"):
            SeriesSet.from_series(
                [(1, TimeSeries(0, [1.0])), (2, TimeSeries(5, [1.0]))]
            )

    def test_from_series_rejects_empty(self):
        with pytest.raises(ValueError):
            SeriesSet.from_series([])

    def test_mean_profile_is_nan_aware(self):
        profile = self._set().mean_profile()
        assert profile[1] == pytest.approx((2.0 + 0.0) / 2)

    def test_per_customer_mean(self):
        means = self._set().per_customer_mean()
        assert means[1] == pytest.approx(5.0)
        assert means[2] == 0.0

    def test_missing_fraction(self):
        assert self._set().missing_fraction() == pytest.approx(1 / 9)

    def test_copy_is_independent(self):
        ss = self._set()
        dup = ss.copy()
        dup.matrix[0, 0] = 99.0
        assert ss.matrix[0, 0] == 1.0


class TestHourWindow:
    def test_n_hours(self):
        assert HourWindow(3, 7).n_hours == 4

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            HourWindow(5, 4)

    def test_shifted(self):
        assert HourWindow(0, 4).shifted(24) == HourWindow(24, 28)

    def test_overlaps(self):
        assert HourWindow(0, 4).overlaps(HourWindow(3, 8))
        assert not HourWindow(0, 4).overlaps(HourWindow(4, 8))

    def test_record_round_trip(self):
        w = HourWindow(10, 20)
        assert HourWindow.from_record(w.to_record()) == w
