"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro.data.loader import (
    load_customers,
    load_readings_long,
    load_readings_wide,
    save_customers,
    save_readings_long,
    save_readings_wide,
)
from repro.data.timeseries import SeriesSet


@pytest.fixture()
def sample_set():
    return SeriesSet(
        customer_ids=[4, 1],
        start_hour=7,
        matrix=np.array([[1.5, np.nan, 0.0], [2.25, 3.0, np.nan]]),
    )


class TestCustomersCsv:
    def test_round_trip(self, small_city, tmp_path):
        path = tmp_path / "customers.csv"
        written = save_customers(small_city.customers, path)
        assert written == len(small_city.customers)
        loaded = load_customers(path)
        assert loaded == small_city.customers

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("customer_id,lon,lat,zone,archetype\n")
        with pytest.raises(ValueError, match="no customer rows"):
            load_customers(path)

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "customer_id,lon,lat,zone,archetype,meter_id,resolution_minutes\n"
            "0,999.0,55.0,residential,bimodal,0,60\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_customers(path)


class TestWideCsv:
    def test_round_trip_preserves_nan_and_axis(self, sample_set, tmp_path):
        path = tmp_path / "wide.csv"
        save_readings_wide(sample_set, path)
        loaded = load_readings_wide(path)
        assert loaded.start_hour == 7
        assert loaded.customer_ids.tolist() == [4, 1]
        np.testing.assert_array_equal(
            np.isnan(loaded.matrix), np.isnan(sample_set.matrix)
        )
        np.testing.assert_allclose(
            loaded.matrix[~np.isnan(loaded.matrix)],
            sample_set.matrix[~np.isnan(sample_set.matrix)],
        )

    def test_exact_float_round_trip(self, sample_set, tmp_path):
        """repr() serialisation must be bit-exact, not approximate."""
        path = tmp_path / "wide.csv"
        save_readings_wide(sample_set, path)
        loaded = load_readings_wide(path)
        assert loaded.matrix[1, 0] == sample_set.matrix[1, 0]

    def test_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("customer_id,h0,h1\n1,1.0\n")
        with pytest.raises(ValueError, match="expected 3 cells"):
            load_readings_wide(path)

    def test_rejects_non_contiguous_hours(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("customer_id,h0,h2\n1,1.0,2.0\n")
        with pytest.raises(ValueError, match="contiguous"):
            load_readings_wide(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_readings_wide(path)


class TestLongCsv:
    def test_round_trip(self, sample_set, tmp_path):
        path = tmp_path / "long.csv"
        written = save_readings_long(sample_set, path)
        assert written == 4  # non-NaN cells only
        loaded = load_readings_long(path)
        assert loaded.start_hour == 7
        # Long format sorts customers ascending.
        assert loaded.customer_ids.tolist() == [1, 4]
        assert loaded.series(4).values[0] == 1.5
        assert np.isnan(loaded.series(4).values[1])

    def test_duplicate_keeps_last(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("customer_id,hour,kwh\n1,0,5.0\n1,0,9.0\n")
        assert load_readings_long(path).series(1).values[0] == 9.0

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("customer_id,hour,kwh\n1,zero,5.0\n")
        with pytest.raises(ValueError, match=":2:"):
            load_readings_long(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("customer_id,hour,kwh\n")
        with pytest.raises(ValueError, match="no reading rows"):
            load_readings_long(path)

    def test_city_scale_round_trip(self, small_city, tmp_path):
        path = tmp_path / "city.csv"
        save_readings_long(small_city.raw, path)
        loaded = load_readings_long(path)
        assert loaded.n_customers == small_city.raw.n_customers
        original_total = np.nansum(small_city.raw.matrix)
        assert np.nansum(loaded.matrix) == pytest.approx(original_total)
