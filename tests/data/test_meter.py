"""Tests for the customer/meter domain model."""

import pytest

from repro.data.meter import (
    CANONICAL_TYPES,
    Customer,
    CustomerType,
    Meter,
    ZoneKind,
)


class TestMeter:
    def test_defaults_to_hourly(self):
        assert Meter(3).resolution_minutes == 60

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError, match="meter_id"):
            Meter(-1)

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            Meter(1, resolution_minutes=0)

    def test_is_hashable(self):
        assert len({Meter(1), Meter(1), Meter(2)}) == 2


class TestCustomer:
    def _customer(self, **overrides):
        base = dict(
            customer_id=5,
            lon=12.5,
            lat=55.7,
            zone=ZoneKind.RESIDENTIAL,
            archetype=CustomerType.BIMODAL,
        )
        base.update(overrides)
        return Customer(**base)

    def test_position_is_lon_lat(self):
        assert self._customer().position == (12.5, 55.7)

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError, match="customer_id"):
            self._customer(customer_id=-2)

    @pytest.mark.parametrize("lon", [-181.0, 180.5, 1e6])
    def test_rejects_bad_longitude(self, lon):
        with pytest.raises(ValueError, match="longitude"):
            self._customer(lon=lon)

    @pytest.mark.parametrize("lat", [-90.1, 95.0])
    def test_rejects_bad_latitude(self, lat):
        with pytest.raises(ValueError, match="latitude"):
            self._customer(lat=lat)

    def test_record_round_trip(self):
        original = self._customer()
        assert Customer.from_record(original.to_record()) == original

    def test_from_record_rejects_unknown_zone(self):
        record = self._customer().to_record()
        record["zone"] = "swamp"
        with pytest.raises(ValueError):
            Customer.from_record(record)

    def test_from_record_accepts_string_numbers(self):
        record = self._customer().to_record()
        record["lon"] = "12.5"
        record["customer_id"] = "5"
        assert Customer.from_record(record) == self._customer()


class TestEnums:
    def test_canonical_types_are_the_paper_five(self):
        names = {t.value for t in CANONICAL_TYPES}
        assert names == {
            "bimodal",
            "energy_saving",
            "idle",
            "constant_high",
            "suspicious",
        }

    def test_early_bird_is_extra(self):
        assert CustomerType.EARLY_BIRD not in CANONICAL_TYPES

    def test_zone_kinds_cover_figure3_geography(self):
        assert {z.value for z in ZoneKind} >= {"commercial", "residential"}
