"""Tests for the synthetic-city generator (calendar, weather, profiles,
city layout, simulation)."""

import numpy as np
import pytest

from repro.data.generator.calendar import build_calendar
from repro.data.generator.city import (
    ZONE_ARCHETYPE_MIX,
    CityLayout,
    Zone,
    default_zones,
)
from repro.data.generator.profiles import (
    draw_profile_params,
    synthesize_profile,
    zone_envelope,
)
from repro.data.generator.simulate import (
    CityConfig,
    CorruptionConfig,
    generate_city,
)
from repro.data.generator.weather import (
    WeatherConfig,
    cooling_demand_factor,
    heating_demand_factor,
    synthesize_temperature,
)
from repro.data.meter import CustomerType, ZoneKind


class TestCalendar:
    def test_epoch_is_monday(self):
        cal = build_calendar(0, 24)
        assert cal.day_of_week[0] == 0

    def test_hour_of_day_cycles(self):
        cal = build_calendar(0, 48)
        assert cal.hour_of_day[23] == 23
        assert cal.hour_of_day[24] == 0

    def test_weekend_detection(self):
        cal = build_calendar(0, 24 * 7)
        # Saturday = day 5 from Monday epoch.
        assert not cal.is_workday[5 * 24]
        assert cal.is_workday[2 * 24]

    def test_holiday_is_not_workday(self):
        cal = build_calendar(0, 24)  # Jan 1 is a configured holiday
        assert not cal.is_workday.any()

    def test_negative_n_hours_rejected(self):
        with pytest.raises(ValueError):
            build_calendar(0, -1)

    def test_year_phase_range(self):
        cal = build_calendar(0, 24 * 365)
        assert cal.year_phase.min() >= 0.0
        assert cal.year_phase.max() < 2 * np.pi + 1e-9


class TestWeather:
    def test_seasonal_swing(self, rng):
        cal = build_calendar(0, 24 * 365)
        temp = synthesize_temperature(cal, WeatherConfig(noise_std=0.0), rng)
        january = temp[: 31 * 24].mean()
        july = temp[181 * 24 : 212 * 24].mean()
        assert july - january > 10.0

    def test_diurnal_swing(self, rng):
        cal = build_calendar(0, 24 * 30)
        temp = synthesize_temperature(cal, WeatherConfig(noise_std=0.0), rng)
        by_hour = temp.reshape(-1, 24).mean(axis=0)
        assert by_hour.argmax() == 14
        assert by_hour[14] > by_hour[2]

    def test_deterministic_for_seed(self):
        cal = build_calendar(0, 100)
        a = synthesize_temperature(cal, rng=np.random.default_rng(5))
        b = synthesize_temperature(cal, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_empty_calendar(self, rng):
        assert synthesize_temperature(build_calendar(0, 0), rng=rng).size == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="persistence"):
            WeatherConfig(noise_persistence=1.0)
        with pytest.raises(ValueError, match="noise_std"):
            WeatherConfig(noise_std=-1.0)

    def test_degree_factors(self):
        temps = np.array([-5.0, 15.0, 20.0, 35.0])
        heat = heating_demand_factor(temps, base_temp=15.0)
        cool = cooling_demand_factor(temps, base_temp=20.0)
        assert heat[0] == 1.0 and heat[1] == 0.0
        assert cool[2] == 0.0 and cool[3] == 1.0
        assert (heat >= 0).all() and (cool >= 0).all()
        # Defaults: heating below ~15 C, cooling above ~17 C, never both
        # at moderate temperatures.
        mild = np.array([16.0])
        assert heating_demand_factor(mild)[0] == 0.0
        assert cooling_demand_factor(mild)[0] == 0.0


class TestProfiles:
    @pytest.fixture(scope="class")
    def setup(self):
        cal = build_calendar(0, 24 * 60)
        temp = synthesize_temperature(cal, rng=np.random.default_rng(1))
        return cal, temp

    @pytest.mark.parametrize("archetype", list(CustomerType))
    @pytest.mark.parametrize("zone", list(ZoneKind))
    def test_all_combinations_nonnegative(self, setup, archetype, zone):
        cal, temp = setup
        load = synthesize_profile(
            archetype, zone, cal, temp, np.random.default_rng(2)
        )
        assert load.shape == (len(cal),)
        assert (load >= 0).all()
        assert np.isfinite(load).all()

    def test_constant_high_is_high_and_flat(self, setup):
        cal, temp = setup
        rng = np.random.default_rng(3)
        high = synthesize_profile(
            CustomerType.CONSTANT_HIGH, ZoneKind.COMMERCIAL, cal, temp, rng
        )
        idle = synthesize_profile(
            CustomerType.IDLE, ZoneKind.COMMERCIAL, cal, temp, rng
        )
        assert high.mean() > 10 * idle.mean()
        day_profile = high.reshape(-1, 24).mean(axis=0)
        assert day_profile.std() / day_profile.mean() < 0.3

    def test_early_bird_peaks_in_morning(self, setup):
        cal, temp = setup
        load = synthesize_profile(
            CustomerType.EARLY_BIRD,
            ZoneKind.RESIDENTIAL,
            cal,
            temp,
            np.random.default_rng(4),
        )
        day = load.reshape(-1, 24).mean(axis=0)
        assert day[5:8].mean() > 1.3 * day[11:15].mean()

    def test_commercial_envelope_peaks_in_office_hours(self):
        cal = build_calendar(24, 24)  # a Tuesday
        env = zone_envelope(ZoneKind.COMMERCIAL, cal)
        assert 9 <= env.argmax() <= 16

    def test_residential_envelope_peaks_in_evening(self):
        cal = build_calendar(24, 24)
        env = zone_envelope(ZoneKind.RESIDENTIAL, cal)
        assert 17 <= env.argmax() <= 22

    def test_params_deterministic_per_rng(self):
        a = draw_profile_params(CustomerType.BIMODAL, np.random.default_rng(9))
        b = draw_profile_params(CustomerType.BIMODAL, np.random.default_rng(9))
        assert a == b

    def test_misaligned_inputs_rejected(self, setup):
        cal, temp = setup
        with pytest.raises(ValueError, match="aligned"):
            synthesize_profile(
                CustomerType.IDLE,
                ZoneKind.PARK,
                cal,
                temp[:10],
                np.random.default_rng(0),
            )


class TestCityLayout:
    def test_default_zones_cover_land_uses(self):
        kinds = {z.kind for z in default_zones()}
        assert kinds == set(ZoneKind)

    def test_archetype_mixes_are_distributions(self):
        for mix in ZONE_ARCHETYPE_MIX.values():
            assert sum(mix.values()) == pytest.approx(1.0, abs=1e-6)

    def test_sample_position_within_two_radii(self, rng):
        layout = CityLayout()
        zone = layout.zones[0]
        for _ in range(50):
            lon, lat = layout.sample_position(zone, rng)
            assert zone.contains(lon, lat, slack=2.0)

    def test_nearest_zone(self):
        layout = CityLayout()
        core = layout.zones[0]
        assert layout.nearest_zone(core.center_lon, core.center_lat) is core

    def test_bounding_box_contains_all_zones(self):
        layout = CityLayout()
        min_lon, min_lat, max_lon, max_lat = layout.bounding_box()
        for zone in layout.zones:
            assert min_lon < zone.center_lon < max_lon
            assert min_lat < zone.center_lat < max_lat

    def test_zone_validation(self):
        with pytest.raises(ValueError):
            Zone("bad", ZoneKind.PARK, 0.0, 0.0, radius_deg=-1.0, weight=1.0)
        with pytest.raises(ValueError):
            CityLayout(zones=[])

    def test_boundary_polygon_closes(self):
        ring = default_zones()[0].boundary_polygon(16)
        assert ring[0] == ring[-1]
        assert len(ring) == 17


class TestGenerateCity:
    def test_shapes_and_determinism(self):
        config = CityConfig(n_customers=25, n_days=10, seed=55)
        a = generate_city(config)
        b = generate_city(config)
        assert a.raw.matrix.shape == (25, 240)
        np.testing.assert_array_equal(a.clean.matrix, b.clean.matrix)
        assert [c.archetype for c in a.customers] == [
            c.archetype for c in b.customers
        ]

    def test_different_seeds_differ(self):
        a = generate_city(CityConfig(n_customers=25, n_days=10, seed=1))
        b = generate_city(CityConfig(n_customers=25, n_days=10, seed=2))
        assert not np.array_equal(a.clean.matrix, b.clean.matrix)

    def test_raw_has_missing_but_clean_does_not(self, small_city):
        assert small_city.clean.missing_fraction() == 0.0
        assert small_city.raw.missing_fraction() > 0.0

    def test_labels_align_with_matrix_rows(self, small_city):
        labels = small_city.archetype_labels()
        assert labels.shape[0] == small_city.clean.n_customers
        first = small_city.customers[0]
        row = small_city.clean.row_index(first.customer_id)
        assert labels[row] == first.archetype.value

    def test_positions_align(self, small_city):
        positions = small_city.positions()
        first = small_city.customers[0]
        row = small_city.clean.row_index(first.customer_id)
        assert positions[row, 0] == first.lon

    def test_customer_lookup(self, small_city):
        cid = small_city.customers[3].customer_id
        assert small_city.customer(cid).customer_id == cid
        with pytest.raises(KeyError):
            small_city.customer(10**6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CityConfig(n_customers=0)
        with pytest.raises(ValueError):
            CityConfig(n_days=0)
        with pytest.raises(ValueError):
            CorruptionConfig(missing_rate=1.5)

    def test_zero_corruption_gives_clean_raw(self):
        city = generate_city(
            CityConfig(
                n_customers=10,
                n_days=5,
                seed=3,
                corruption=CorruptionConfig(
                    missing_rate=0.0,
                    gap_rate_per_customer=0.0,
                    spike_rate_per_customer=0.0,
                    stuck_rate_per_customer=0.0,
                ),
            )
        )
        np.testing.assert_array_equal(city.raw.matrix, city.clean.matrix)

    def test_commercial_day_vs_evening_shift_exists(self, small_city):
        """The mass-mobility premise of Figure 3 holds in the data itself."""
        zones = small_city.zone_labels()
        matrix = small_city.clean.matrix
        hours = np.arange(matrix.shape[1]) % 24
        workday_cols = (np.arange(matrix.shape[1]) // 24 % 7) < 5
        midday = (hours >= 12) & (hours < 15) & workday_cols
        evening = (hours >= 19) & (hours < 22) & workday_cols
        com = zones == "commercial"
        res = zones == "residential"
        com_ratio = matrix[com][:, midday].mean() / matrix[com][:, evening].mean()
        res_ratio = matrix[res][:, midday].mean() / matrix[res][:, evening].mean()
        assert com_ratio > 1.0, "commercial demand should peak midday"
        assert res_ratio < 1.0, "residential demand should peak in the evening"
