"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("cli")
    code = main(
        [
            "generate",
            "--customers", "30",
            "--days", "14",
            "--seed", "5",
            "--out-dir", str(out_dir),
        ]
    )
    assert code == 0
    return out_dir


class TestGenerate:
    def test_writes_both_csvs(self, generated):
        assert (generated / "customers.csv").exists()
        assert (generated / "readings.csv").exists()

    def test_csvs_load_back(self, generated):
        from repro.data.loader import load_customers, load_readings_wide

        customers = load_customers(generated / "customers.csv")
        readings = load_readings_wide(generated / "readings.csv")
        assert len(customers) == 30
        assert readings.n_steps == 14 * 24


class TestDashboard:
    def test_from_csvs(self, generated, tmp_path, capsys):
        out = tmp_path / "dash.html"
        code = main(
            [
                "dashboard",
                "--customers-csv", str(generated / "customers.csv"),
                "--readings-csv", str(generated / "readings.csv"),
                "--out", str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert text.count("<svg") == 3

    def test_mismatched_inputs_rejected(self, generated):
        with pytest.raises(SystemExit):
            main(
                [
                    "dashboard",
                    "--customers-csv", str(generated / "customers.csv"),
                ]
            )


class TestQuality:
    def test_prints_report(self, generated, capsys):
        code = main(["quality", str(generated / "readings.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "missing_fraction" in out
        assert "n_suspected_spikes" in out


class TestSql:
    def test_query_runs(self, generated, capsys):
        code = main(
            [
                "sql",
                str(generated / "customers.csv"),
                "SELECT zone, count(*) AS n FROM customers GROUP BY zone",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zone\tn" in out

    def test_bad_sql_is_exit_code_1(self, generated, capsys):
        code = main(["sql", str(generated / "customers.csv"), "DELETE FROM x"])
        assert code == 1
        assert "SQL error" in capsys.readouterr().err

    def test_no_rows(self, generated, capsys):
        code = main(
            [
                "sql",
                str(generated / "customers.csv"),
                "SELECT customer_id FROM customers WHERE lon > 999",
            ]
        )
        assert code == 0
        assert "(no rows)" in capsys.readouterr().out


class TestStats:
    def test_pretty_output_has_counters_and_histograms(self, capsys):
        code = main(["stats", "--customers", "20", "--days", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "http_requests_total" in out
        assert "pipeline_cache_total" in out
        assert "db_query_seconds" in out

    def test_json_output_parses(self, capsys):
        import json

        code = main(["stats", "--customers", "20", "--days", "7", "--json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "counters" in snapshot
        names = {c["name"] for c in snapshot["counters"]}
        assert "http_requests_total" in names

    def test_spans_flag_prints_trees(self, capsys):
        code = main(
            ["stats", "--customers", "20", "--days", "7", "--spans", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span trees" in out
        assert "http.request" in out

    def test_leaves_global_defaults_untouched(self):
        from repro import obs

        before_registry, before_tracer = obs.get_registry(), obs.get_tracer()
        before_window, before_slow = obs.get_window_store(), obs.get_slow_log()
        assert main(["stats", "--customers", "20", "--days", "7"]) == 0
        assert obs.get_registry() is before_registry
        assert obs.get_tracer() is before_tracer
        assert obs.get_window_store() is before_window
        assert obs.get_slow_log() is before_slow

    def test_json_output_includes_slow_ops_and_windows(self, capsys):
        import json

        code = main(["stats", "--customers", "20", "--days", "7", "--json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert any(r["name"] == "http.request" for r in snapshot["slow_ops"])
        window_names = {s["name"] for s in snapshot["windows"]}
        assert "http_request" in window_names

    def test_pretty_output_lists_slowest_operations(self, capsys):
        code = main(["stats", "--customers", "20", "--days", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slowest operations" in out
        assert "req=" in out

    def test_dashboard_flag_writes_wellformed_svg(self, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        out_svg = tmp_path / "telemetry.svg"
        code = main(
            [
                "stats", "--customers", "20", "--days", "7",
                "--dashboard", str(out_svg),
            ]
        )
        assert code == 0
        assert f"telemetry dashboard written to {out_svg}" in (
            capsys.readouterr().out
        )
        root = ET.fromstring(out_svg.read_text())
        assert root.tag.endswith("svg")
        assert "VAP telemetry" in out_svg.read_text()


class TestBench:
    def test_quick_single_kernel_writes_document(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_PERF.json"
        code = main(["bench", "--quick", "--kernel", "dtw", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "dtw" in printed
        assert f"perf document written to {out}" in printed
        document = json.loads(out.read_text())
        assert document["schema"] == 1
        assert document["quick"] is True
        run = document["kernels"]["dtw"]["runs"][0]
        assert run["identical"] is True
        assert run["exact_seconds"] >= 0.0

    def test_profiler_overhead_block_recorded(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_PERF.json"
        code = main(["bench", "--quick", "--kernel", "dtw", "--out", str(out)])
        assert code == 0
        assert "profiler overhead @ 100 hz" in capsys.readouterr().out
        prof = json.loads(out.read_text())["profiler"]
        assert prof["hz"] == 100.0
        assert prof["baseline_ops_per_s"] > 0
        assert prof["profiled_ops_per_s"] > 0
        assert prof["samples"] > 0
        assert 0.0 <= prof["overhead_pct"] <= 100.0

    def test_no_profiler_flag_skips_overhead_block(self, tmp_path, capsys):
        import json

        out = tmp_path / "b.json"
        code = main(
            ["bench", "--quick", "--kernel", "dtw", "--no-profiler",
             "--out", str(out)]
        )
        assert code == 0
        assert "profiler overhead" not in capsys.readouterr().out
        assert "profiler" not in json.loads(out.read_text())

    def test_unknown_kernel_rejected(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown kernels"):
            main(
                ["bench", "--quick", "--kernel", "sorting",
                 "--out", str(tmp_path / "b.json")]
            )


class TestRollup:
    def test_status_prints_tables(self, capsys):
        code = main(
            ["rollup", "status", "--customers", "15", "--days", "5",
             "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rollup store: 15 customers" in out
        assert "lag 0 h" in out
        assert "hourly" in out and "weekly" in out

    def test_ticks_stream_through_router(self, capsys):
        code = main(
            ["rollup", "rebuild", "--customers", "12", "--days", "4",
             "--seed", "3", "--ticks", "6", "--json"]
        )
        assert code == 0
        import json

        status = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert status["hours_applied_total"] == 6
        assert status["last_applied_hour"] == 4 * 24 + 6
        assert status["lag_hours"] == 0

    def test_sharded_build(self, capsys):
        code = main(
            ["rollup", "status", "--customers", "12", "--days", "4",
             "--seed", "3", "--shards", "2", "--json"]
        )
        assert code == 0
        import json

        status = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert status["n_customers"] == 12
        assert status["rebuilds_total"] == 1
