"""KdeAccumulator: the additive Eq. 3 decomposition behind the rollups.

The whole rollup layer rests on two algebraic facts, pinned here:

- the raw kernel sum is *additive* over hours (``grid(a + b) ==
  grid(a) + grid(b)`` up to float associativity), and
- normalising a summed grid reproduces the batch ``kde_density`` result
  bit-for-bit on the clean path and to float tolerance otherwise.
"""

import numpy as np
import pytest

from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import bandwidth_silverman, kde_density, planar_frame
from repro.rollup.kde import KdeAccumulator


@pytest.fixture(scope="module")
def frame():
    rng = np.random.default_rng(7)
    positions = rng.uniform([12.5, 55.6], [12.7, 55.8], size=(40, 2))
    spec = GridSpec.covering(positions, nx=20, ny=18)
    return positions, spec


class TestGridAdditivity:
    def test_grid_is_linear_in_values(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        rng = np.random.default_rng(1)
        a = rng.gamma(2.0, 1.0, 40)
        b = rng.gamma(2.0, 1.0, 40)
        merged = acc.grid(a + b)
        split = acc.grid(a) + acc.grid(b)
        np.testing.assert_allclose(split, merged, rtol=1e-12, atol=1e-15)

    def test_grid_shape_matches_spec(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        assert acc.grid(np.ones(40)).shape == (spec.ny, spec.nx)

    def test_grid_rejects_wrong_length(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        with pytest.raises(ValueError):
            acc.grid(np.ones(39))


class TestFieldNormalisation:
    def test_field_matches_batch_kde(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        weights = np.random.default_rng(2).gamma(2.0, 1.0, 40)
        got = acc.field(acc.grid(weights), float(weights.sum()))
        want = kde_density(positions, weights, spec, bandwidth_m=600.0)
        np.testing.assert_allclose(got.values, want.values, rtol=1e-12)
        assert got.spec == want.spec

    def test_zero_total_falls_back_to_uniform(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        got = acc.field(acc.grid(np.zeros(40)), 0.0)
        want = kde_density(positions, np.zeros(40), spec, bandwidth_m=600.0)
        np.testing.assert_allclose(got.values, want.values, rtol=1e-12)


class TestFieldFromWeights:
    """field_from_weights must be a drop-in for kde_density."""

    def test_bit_identical_at_explicit_bandwidth(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        weights = np.random.default_rng(3).gamma(2.0, 1.0, 40)
        got = acc.field_from_weights(weights, bandwidth_m=600.0)
        want = kde_density(positions, weights, spec, bandwidth_m=600.0)
        np.testing.assert_array_equal(got.values, want.values)

    def test_bit_identical_under_silverman(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec)
        weights = np.random.default_rng(4).gamma(2.0, 1.0, 40)
        got = acc.field_from_weights(weights)
        want = kde_density(positions, weights, spec)
        np.testing.assert_array_equal(got.values, want.values)

    def test_subset_rows_match_subset_kde(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        rng = np.random.default_rng(5)
        weights = rng.gamma(2.0, 1.0, 40)
        rows = np.sort(rng.choice(40, size=17, replace=False))
        got = acc.field_from_weights(
            weights[rows], rows=rows, bandwidth_m=600.0
        )
        want = kde_density(
            positions[rows], weights[rows], spec, bandwidth_m=600.0
        )
        np.testing.assert_array_equal(got.values, want.values)

    def test_subset_silverman_matches_subset_rule(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        rng = np.random.default_rng(6)
        weights = rng.gamma(2.0, 1.0, 40)
        rows = np.arange(10)
        got = acc.field_from_weights(weights[rows], rows=rows)
        want = kde_density(positions[rows], weights[rows], spec)
        np.testing.assert_array_equal(got.values, want.values)

    def test_nonfinite_weights_rejected(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec, bandwidth_m=600.0)
        bad = np.ones(40)
        bad[3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            acc.field_from_weights(bad)


class TestBandwidthPinning:
    def test_default_bandwidth_is_full_population_silverman(self, frame):
        positions, spec = frame
        acc = KdeAccumulator(positions, spec)
        px, py, _, _ = planar_frame(positions, spec)
        assert acc.bandwidth_m == bandwidth_silverman(np.column_stack([px, py]))

    def test_invalid_bandwidth_rejected(self, frame):
        positions, spec = frame
        for bad in (0.0, -5.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                KdeAccumulator(positions, spec, bandwidth_m=bad)
