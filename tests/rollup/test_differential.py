"""Differential testing: rollup-backed sweeps vs the raw batch sweeps.

Hypothesis drives randomized workloads — dyadic demand values (exact
under float addition in any association order), random missing-data
masks, random spans — through both implementations of the S2 sweeps and
requires the answers to agree to float tolerance.  The database is built
at shard counts 1 and 4 so the scatter-gather ``rollup_partials`` merge
path is differentially tested too, not just the single-engine path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.shift.grids import GridSpec
from repro.core.shift.sensitivity import (
    granularity_sweep,
    granularity_sweep_from_rollups,
    quantile_sweep,
    quantile_sweep_from_rollups,
)
from repro.data.meter import Customer, CustomerType, ZoneKind
from repro.data.timeseries import HourWindow, Resolution, SeriesSet
from repro.db import build_database
from repro.rollup import RollupStore

RESOLUTIONS = (Resolution.HOURLY, Resolution.DAILY, Resolution.WEEKLY)

_POSITIONS = np.random.default_rng(12).uniform(
    [12.5, 55.6], [12.7, 55.8], size=(9, 2)
)


@st.composite
def workloads(draw):
    n = draw(st.integers(5, 9))
    n_hours = draw(st.integers(26, 54))
    values = draw(
        npst.arrays(
            np.float64,
            (n, n_hours),
            # Dyadic rationals: sums are exact in any association order,
            # so any disagreement is a logic bug, not float noise.
            elements=st.integers(0, 64).map(lambda v: v / 4.0),
        )
    )
    mask = draw(
        npst.arrays(
            np.bool_,
            (n, n_hours),
            # ~1-in-8 missing readings.
            elements=st.sampled_from([False] * 7 + [True]),
        )
    )
    matrix = values.copy()
    matrix[mask] = np.nan
    # Every customer keeps at least one observed hour so Silverman's rule
    # sees the same populated point set on both paths.
    matrix[:, 0] = values[:, 0]
    return matrix


def _build(matrix, shards):
    n = matrix.shape[0]
    positions = _POSITIONS[:n]
    series = SeriesSet(list(range(n)), 0, matrix)
    customers = [
        Customer(
            customer_id=i,
            lon=float(positions[i, 0]),
            lat=float(positions[i, 1]),
            zone=ZoneKind.COMMERCIAL,
            archetype=next(iter(CustomerType)),
        )
        for i in range(n)
    ]
    db = build_database(customers, series, shards=shards)
    spec = GridSpec.covering(positions, nx=10, ny=10)
    store = RollupStore(
        positions, list(range(n)), spec, resolutions=RESOLUTIONS
    )
    store.rebuild_from(db)
    return db, store, spec


def _assert_granularity_agreement(raw, rolled):
    assert len(raw) == len(rolled)
    for a, b in zip(raw, rolled):
        assert a.resolution == b.resolution
        assert a.n_window_pairs == b.n_window_pairs
        for attr in ("mean_energy", "mean_flows", "peak_gain", "peak_loss"):
            np.testing.assert_allclose(
                getattr(b, attr), getattr(a, attr),
                rtol=1e-9, atol=1e-15, equal_nan=True,
                err_msg=f"{a.resolution}.{attr}",
            )


@pytest.mark.parametrize("shards", [1, 4])
class TestGranularityDifferential:
    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_rollup_sweep_equals_raw_sweep(self, shards, matrix):
        db, store, spec = _build(matrix, shards)
        raw = granularity_sweep(
            db, resolutions=RESOLUTIONS, spec=spec,
            bandwidth_m=store.bandwidth_m,
        )
        rolled = granularity_sweep_from_rollups(
            store, bandwidth_m=store.bandwidth_m
        )
        _assert_granularity_agreement(raw, rolled)


@pytest.mark.parametrize("shards", [1, 4])
class TestQuantileDifferential:
    @given(workloads(), st.integers(4, 12))
    @settings(max_examples=8, deadline=None)
    def test_rollup_sweep_equals_raw_sweep(self, shards, matrix, width):
        db, store, spec = _build(matrix, shards)
        n_hours = matrix.shape[1]
        width = min(width, n_hours // 2)
        t1 = HourWindow(0, width)
        t2 = HourWindow(width, 2 * width)
        raw = quantile_sweep(
            db, t1, t2, spec=spec, bandwidth_m=store.bandwidth_m
        )
        rolled = quantile_sweep_from_rollups(
            store, t1, t2, bandwidth_m=store.bandwidth_m
        )
        assert len(raw) == len(rolled)
        for a, b in zip(raw, rolled):
            assert a.quantile == b.quantile
            assert a.n_customers == b.n_customers
            assert a.n_flows == b.n_flows
            np.testing.assert_allclose(
                b.energy, a.energy, rtol=1e-9, atol=1e-15, equal_nan=True
            )
