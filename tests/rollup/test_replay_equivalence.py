"""Replay equivalence: incremental maintenance == batch recomputation.

The PR's headline claim is that the incremental paths (the monitor's
ring-buffer KDE accumulators, the store's per-tick folds) answer exactly
what a from-scratch batch computation over the same hours answers.  This
suite replays long tick sequences — 50+ ticks, NaN hours included, and
once more under the CI chaos fault plan — and pins incremental against
the exact oracle at every single tick, not just at the end.

Tolerance: the incremental field accumulates one float add/subtract pair
per tick; drift is bounded by periodic refolds.  ``RTOL`` pins both the
equivalence and the drift bound — loosening it is a regression.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.shift.grids import GridSpec
from repro.data.timeseries import Resolution, SeriesSet
from repro.resilience import faults
from repro.rollup import RollupStore
from repro.resilience.retry import RetryPolicy
from repro.stream.feed import ReplayFeed
from repro.stream.online import OnlineShiftMonitor, run_replay

RTOL = 1e-9
N_TICKS = 60  # >= 50 per the acceptance scenario


def _fast_policy(max_attempts=6) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.0,
        max_delay=0.0,
        sleeper=lambda s: None,
        metrics=obs.MetricsRegistry(),
    )


def _workload(n_customers=25, n_hours=N_TICKS, seed=77, nan_rate=0.05):
    rng = np.random.default_rng(seed)
    positions = rng.uniform([12.5, 55.6], [12.7, 55.8], size=(n_customers, 2))
    matrix = rng.gamma(2.0, 1.5, size=(n_customers, n_hours))
    matrix[rng.random(matrix.shape) < nan_rate] = np.nan
    spec = GridSpec.covering(positions, nx=16, ny=16)
    return positions, matrix, spec


class TestMonitorEquivalence:
    def _replay_both(self, refold_every, nan_rate=0.05):
        positions, matrix, spec = _workload(nan_rate=nan_rate)
        monitor = OnlineShiftMonitor(
            positions, spec, window_hours=4, bandwidth_m=500.0,
            refold_every=refold_every,
        )
        diffs = []
        for j in range(matrix.shape[1]):
            monitor.feed_hour(matrix[:, j])
            if monitor.ready:
                got = monitor.current_field()
                want = monitor.current_field_exact()
                denom = max(np.abs(want.values).max(), 1e-300)
                diffs.append(
                    np.abs(got.values - want.values).max() / denom
                )
        return diffs

    def test_every_tick_matches_exact_oracle(self):
        diffs = self._replay_both(refold_every=64)
        assert len(diffs) >= 50
        assert max(diffs) < RTOL

    def test_drift_stays_bounded_without_frequent_refolds(self):
        # One refold per 256 adds: the add/subtract chain runs much
        # longer, drift must still sit far below the pinned tolerance.
        diffs = self._replay_both(refold_every=256)
        assert max(diffs) < RTOL

    def test_nan_free_replay_is_near_exact(self):
        diffs = self._replay_both(refold_every=64, nan_rate=0.0)
        assert max(diffs) < RTOL

    def test_incremental_flag_off_uses_exact_path(self):
        positions, matrix, spec = _workload(n_hours=12)
        monitor = OnlineShiftMonitor(
            positions, spec, window_hours=4, bandwidth_m=500.0,
            incremental=False,
        )
        for j in range(12):
            monitor.feed_hour(matrix[:, j])
        got = monitor.current_field()
        want = monitor.current_field_exact()
        np.testing.assert_array_equal(got.values, want.values)


class TestMonitorEquivalenceUnderChaos:
    def test_equivalence_survives_the_ci_fault_plan(self):
        """The CI chaos plan injects kernel faults; after the retry layer
        absorbs them the incremental answers must still match batch."""
        positions, matrix, spec = _workload()
        plan = faults.FaultPlan.parse(
            "stream.tick=error:0.15,kernel.kde=error:0.1", seed=99
        )
        series = SeriesSet(
            list(range(positions.shape[0])), 0, matrix
        )

        def replay(retry):
            feed = ReplayFeed(series, hours_per_tick=1, retry=retry)
            return run_replay(
                feed, positions, spec, window_hours=4,
                bandwidth_m=500.0, retry=retry,
            )

        with faults.disarmed():
            clean = replay(None)
        with faults.injected(plan, metrics=obs.MetricsRegistry()) as inj:
            chaotic = replay(_fast_policy(8))
        assert inj.n_injected > 0, "the plan must actually inject faults"
        assert len(chaotic) == len(clean) >= 50
        np.testing.assert_allclose(
            [u.energy for u in chaotic], [u.energy for u in clean],
            rtol=RTOL,
        )


class TestStoreEquivalence:
    def test_per_tick_folds_match_fresh_rebuild(self):
        positions, matrix, spec = _workload(n_hours=N_TICKS, seed=31)
        ids = list(range(positions.shape[0]))
        inc = RollupStore(positions, ids, spec, refold_every=16)
        inc.apply_hours(matrix[:, :1], 0)
        # Materialize weekly grids early so most ticks exercise the
        # incremental add path rather than a lazy cold build.
        inc.bucket_field(Resolution.WEEKLY, 0)
        for j in range(1, matrix.shape[1]):
            inc.apply_hours(matrix[:, j:j + 1], j)
        batch = RollupStore(positions, ids, spec)
        batch.rebuild(SeriesSet(ids, 0, matrix))
        for res in (Resolution.HOURLY, Resolution.DAILY, Resolution.WEEKLY):
            assert inc.buckets(res) == batch.buckets(res)
            for b in inc.buckets(res):
                got = inc.bucket_field(res, b)
                want = batch.bucket_field(res, b)
                denom = max(np.abs(want.values).max(), 1e-300)
                assert (
                    np.abs(got.values - want.values).max() / denom < RTOL
                )

    def test_fold_equivalence_under_chaos_plan(self):
        """Ticks that fail and are retried must not double-fold: the
        router applies rollups only after a tick commits, so a seeded
        fault plan leaves the store identical to a clean run."""
        from repro.data.generator.simulate import CityConfig, generate_city
        from repro.db import build_database
        from repro.stream.routing import ShardRouter

        city = generate_city(CityConfig(n_customers=20, n_days=4, seed=55))
        series = city.raw
        head_end = series.start_hour + 48
        head = series.slice_hours(series.start_hour, head_end)
        tail = series.slice_hours(head_end, series.end_hour)

        def run(plan):
            db = build_database(city.customers, head)
            ids = [int(c) for c in series.customer_ids]
            spec = GridSpec.covering(db.positions_of(ids), nx=12, ny=12)
            store = RollupStore(db.positions_of(ids), ids, spec)
            store.rebuild_from(db)
            router = ShardRouter(db, ids, rollups=store)
            router.replay(
                ReplayFeed(tail, hours_per_tick=2, retry=_fast_policy(8))
            )
            return store

        with faults.disarmed():
            clean = run(None)
        plan = faults.FaultPlan.parse("stream.tick=error:0.15", seed=7)
        with faults.injected(plan, metrics=obs.MetricsRegistry()) as inj:
            chaotic = run(plan)
        assert inj.n_injected > 0
        assert clean.last_applied_hour == chaotic.last_applied_hour
        for b in clean.buckets(Resolution.HOURLY):
            np.testing.assert_array_equal(
                chaotic.bucket(Resolution.HOURLY, b).sums,
                clean.bucket(Resolution.HOURLY, b).sums,
            )
