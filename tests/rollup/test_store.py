"""RollupStore: derived tables, incremental maintenance, staleness.

The store's contract has three faces, each pinned here:

- **batch parity** — rollup-backed demand and fields reproduce what the
  database/batch-KDE path computes over the same hours;
- **incremental == rebuild** — applying hours one tick at a time lands on
  the same tables a fresh rebuild over the full span produces;
- **safety rails** — non-contiguous applies, unknown customers and
  out-of-span queries fail loudly instead of corrupting the tables.
"""

import numpy as np
import pytest

from repro.core.shift.grids import GridSpec
from repro.core.shift.kde import kde_density
from repro.data.timeseries import HourWindow, Resolution, SeriesSet
from repro.db.engine import EnergyDatabase
from repro.rollup import RollupMiss, RollupStore


def _make_series(n_customers=12, n_hours=96, start=0, seed=3, nan_rate=0.0):
    rng = np.random.default_rng(seed)
    matrix = rng.gamma(2.0, 1.5, size=(n_customers, n_hours))
    if nan_rate:
        matrix[rng.random(matrix.shape) < nan_rate] = np.nan
    return SeriesSet(list(range(n_customers)), start, matrix)


def _make_store(series, seed=3, **kwargs):
    rng = np.random.default_rng(seed + 100)
    n = series.n_customers
    positions = rng.uniform([12.5, 55.6], [12.7, 55.8], size=(n, 2))
    spec = GridSpec.covering(positions, nx=16, ny=16)
    store = RollupStore(
        positions, list(series.customer_ids), spec, **kwargs
    )
    return store, positions, spec


class TestRebuild:
    def test_hourly_rollup_reproduces_matrix(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        store.rebuild(series)
        row = store.bucket(Resolution.HOURLY, 5)
        np.testing.assert_allclose(row.sums, series.matrix[:, 5])
        np.testing.assert_array_equal(row.counts, np.ones(12))

    def test_daily_bucket_sums_hours(self):
        series = _make_series(n_hours=48)
        store, _, _ = _make_store(series)
        store.rebuild(series)
        row = store.bucket(Resolution.DAILY, 0)
        np.testing.assert_allclose(
            row.sums, series.matrix[:, :24].sum(axis=1)
        )

    def test_nan_hours_are_excluded_from_counts(self):
        series = _make_series(nan_rate=0.2, seed=9)
        store, _, _ = _make_store(series)
        store.rebuild(series)
        row = store.bucket(Resolution.DAILY, 0)
        observed = (~np.isnan(series.matrix[:, :24])).sum(axis=1)
        np.testing.assert_array_equal(row.counts, observed)

    def test_rejects_foreign_customers(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        foreign = SeriesSet([100 + i for i in range(12)], 0, series.matrix)
        with pytest.raises(ValueError, match="different customers"):
            store.rebuild(foreign)

    def test_reorders_shuffled_rows(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        order = np.random.default_rng(0).permutation(12)
        shuffled = SeriesSet(
            [int(series.customer_ids[i]) for i in order],
            series.start_hour,
            series.matrix[order],
        )
        store.rebuild(shuffled)
        row = store.bucket(Resolution.HOURLY, 0)
        np.testing.assert_allclose(row.sums, series.matrix[:, 0])

    def test_rebuild_from_database(self):
        series = _make_series()
        store, positions, _ = _make_store(series)
        customers = _customers_for(series, positions)
        db = EnergyDatabase(customers, series)
        store.rebuild_from(db)
        assert store.last_applied_hour == series.end_hour
        assert store.first_hour == series.start_hour


def _customers_for(series, positions):
    from repro.data.meter import Customer, CustomerType, ZoneKind

    return [
        Customer(
            customer_id=int(cid),
            lon=float(positions[i, 0]),
            lat=float(positions[i, 1]),
            zone=ZoneKind.COMMERCIAL,
            archetype=next(iter(CustomerType)),
        )
        for i, cid in enumerate(series.customer_ids)
    ]


class TestIncrementalEqualsRebuild:
    def test_apply_hours_matches_full_rebuild(self):
        series = _make_series(n_hours=72, nan_rate=0.1, seed=11)
        batch_store, positions, spec = _make_store(series, seed=11)
        batch_store.rebuild(series)
        inc_store = RollupStore(
            positions, list(series.customer_ids), spec
        )
        for j in range(0, 72, 6):
            inc_store.apply_hours(series.matrix[:, j:j + 6], j)
        for res in (Resolution.HOURLY, Resolution.DAILY, Resolution.WEEKLY):
            assert inc_store.buckets(res) == batch_store.buckets(res)
            for b in inc_store.buckets(res):
                got, want = inc_store.bucket(res, b), batch_store.bucket(res, b)
                np.testing.assert_allclose(got.sums, want.sums, rtol=1e-12)
                np.testing.assert_array_equal(got.counts, want.counts)

    def test_warm_grid_follows_applied_hours(self):
        series = _make_series(n_hours=48)
        store, _, _ = _make_store(series)
        store.apply_hours(series.matrix[:, :36], 0)
        # Materialize the open daily bucket's grid, then keep feeding it:
        # the remaining hours must be *added* to the warm grid in place.
        store.bucket_field(Resolution.DAILY, 1)
        store.apply_hours(series.matrix[:, 36:], 36)
        assert store.grid_adds_total == 12
        row = store.bucket(Resolution.DAILY, 1)
        exact = store.acc.grid(row.sums)
        np.testing.assert_allclose(row.kernel_grid, exact, rtol=1e-10)

    def test_refold_bounds_drift(self):
        series = _make_series(n_hours=96, seed=5)
        store, positions, spec = _make_store(series, refold_every=8)
        store.apply_hours(series.matrix[:, :1], 0)
        store.bucket_field(Resolution.WEEKLY, 0)  # materialize early
        for j in range(1, 96):
            store.apply_hours(series.matrix[:, j:j + 1], j)
        assert store.grid_refolds_total > 0
        row = store.bucket(Resolution.WEEKLY, 0)
        exact = store.acc.grid(row.sums)
        np.testing.assert_allclose(row.kernel_grid, exact, rtol=1e-10)


class TestSafetyRails:
    def test_gap_rejected(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        store.apply_hours(series.matrix[:, :4], 0)
        with pytest.raises(ValueError, match="contiguous"):
            store.apply_hours(series.matrix[:, 6:8], 6)

    def test_overlap_rejected(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        store.apply_hours(series.matrix[:, :4], 0)
        with pytest.raises(ValueError, match="contiguous"):
            store.apply_hours(series.matrix[:, 2:6], 2)

    def test_unknown_customer_rejected(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        with pytest.raises(KeyError, match="999"):
            store.apply_hours(
                series.matrix[:1, :4], 0, customer_ids=[999]
            )

    def test_untracked_resolution_misses(self):
        series = _make_series()
        store, _, _ = _make_store(
            series, resolutions=(Resolution.HOURLY,)
        )
        store.rebuild(series)
        with pytest.raises(RollupMiss):
            store.buckets(Resolution.DAILY)

    def test_window_outside_span_misses(self):
        series = _make_series(n_hours=48)
        store, _, _ = _make_store(series)
        store.rebuild(series)
        with pytest.raises(RollupMiss, match="outside"):
            store.window_demand(HourWindow(40, 60))

    def test_unbuilt_store_misses(self):
        series = _make_series()
        store, _, _ = _make_store(series)
        with pytest.raises(RollupMiss):
            store.bucket(Resolution.HOURLY, 0)


class TestShardStyleSubsetApplies:
    """Disjoint customer subsets advance independent watermarks."""

    def test_split_feed_matches_full_feed(self):
        series = _make_series(n_hours=24, seed=21)
        full_store, positions, spec = _make_store(series, seed=21)
        full_store.apply_hours(series.matrix, 0)
        split_store = RollupStore(
            positions, list(series.customer_ids), spec
        )
        left, right = [0, 1, 2, 3, 4, 5], [6, 7, 8, 9, 10, 11]
        split_store.apply_hours(
            series.matrix[left], 0, customer_ids=left
        )
        assert split_store.last_applied_hour == 0  # right side lags
        split_store.apply_hours(
            series.matrix[right], 0, customer_ids=right
        )
        assert split_store.last_applied_hour == 24
        for b in full_store.buckets(Resolution.HOURLY):
            np.testing.assert_allclose(
                split_store.bucket(Resolution.HOURLY, b).sums,
                full_store.bucket(Resolution.HOURLY, b).sums,
            )

    def test_lag_reported_against_source(self):
        series = _make_series(n_hours=24)
        store, _, _ = _make_store(series)
        store.apply_hours(series.matrix[:, :20], 0)
        status = store.status(source_end_hour=24)
        assert status["last_applied_hour"] == 20
        assert status["lag_hours"] == 4


class TestQueries:
    def test_window_demand_matches_database(self):
        series = _make_series(n_hours=72, nan_rate=0.15, seed=13)
        store, positions, _ = _make_store(series, seed=13)
        store.rebuild(series)
        db = EnergyDatabase(_customers_for(series, positions), series)
        window = HourWindow(10, 40)
        for stat in ("mean", "sum"):
            _, want = db.demand(window, None, statistic=stat)
            got = store.window_demand(window, statistic=stat)
            np.testing.assert_allclose(got, want, rtol=1e-9)

    def test_bucket_field_fast_path_matches_batch_kde(self):
        series = _make_series(n_hours=48, seed=17)  # no NaN: clean buckets
        store, positions, spec = _make_store(series, seed=17)
        store.rebuild(series)
        weights = store.bucket_weights(Resolution.DAILY, 0)
        want = kde_density(
            positions, weights, spec, bandwidth_m=store.bandwidth_m
        )
        got = store.bucket_field(Resolution.DAILY, 0)
        assert store.grid_builds_total == 1  # fast path materialized
        np.testing.assert_allclose(got.values, want.values, rtol=1e-9)

    def test_bucket_field_slow_path_on_missing_data(self):
        series = _make_series(n_hours=48, nan_rate=0.3, seed=19)
        store, positions, spec = _make_store(series, seed=19)
        store.rebuild(series)
        got = store.bucket_field(Resolution.DAILY, 0)
        assert store.grid_builds_total == 0  # non-uniform counts: no cache
        weights = store.bucket_weights(Resolution.DAILY, 0)
        want = kde_density(
            positions, weights, spec, bandwidth_m=store.bandwidth_m
        )
        np.testing.assert_array_equal(got.values, want.values)

    def test_negative_demand_disables_fast_path(self):
        # A bucket whose *sum* goes negative would be clipped by the
        # batch path's weight normalisation; the store must notice and
        # take the exact per-weight path instead of the additive grid.
        series = _make_series(n_hours=24)
        series.matrix[2, 3] = -1000.0
        store, positions, spec = _make_store(series)
        store.rebuild(series)
        got = store.bucket_field(Resolution.DAILY, 0)
        assert store.grid_builds_total == 0
        weights = store.bucket_weights(Resolution.DAILY, 0)
        want = kde_density(
            positions, weights, spec, bandwidth_m=store.bandwidth_m
        )
        np.testing.assert_array_equal(got.values, want.values)

    def test_window_field_subset_matches_batch_kde(self):
        series = _make_series(n_hours=48, seed=23)
        store, positions, spec = _make_store(series, seed=23)
        store.rebuild(series)
        rows = np.array([1, 4, 6, 9])
        window = HourWindow(0, 30)
        weights = store.window_demand(window)[rows]
        got = store.window_field(window, rows=rows, bandwidth_m=700.0)
        want = kde_density(
            positions[rows], weights, spec, bandwidth_m=700.0
        )
        np.testing.assert_array_equal(got.values, want.values)

    def test_status_counters_track_maintenance(self):
        series = _make_series(n_hours=48)
        store, _, _ = _make_store(series)
        store.rebuild(series)
        store.bucket_field(Resolution.DAILY, 0)
        status = store.status()
        assert status["rebuilds_total"] == 1
        assert status["grid_builds_total"] == 1
        hourly = next(
            t for t in status["tables"] if t["resolution"] == "hourly"
        )
        assert hourly["n_buckets"] == 48
