"""Parity suite: fast kernels against their exact ground-truth twins.

The exact paths stay the verified reference; every approximation here must
stay within a quantified distance of them.  These tests are the gate the
CI perf-smoke job enforces (timings are never asserted — only parity).
"""

import numpy as np
import pytest

from repro.bench.perf import _blob_features, _dtw_row_sweep
from repro.core.reduction.bh import build_tree, plan_repulsion, repulsion
from repro.core.reduction.dtw import dtw_distance
from repro.core.reduction.procrustes import procrustes_align
from repro.core.reduction.tsne import (
    _perplexity_search,
    _perplexity_search_loop,
    tsne,
)


@pytest.fixture(scope="module")
def bench_city():
    """Clustered 24-D features, the regime the paper's view C embeds."""
    return _blob_features(300, seed=3)


class TestBarnesHutParity:
    def test_theta_zero_matches_exact_repulsion(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 2))
        rep, z = repulsion(points, theta=0.0)
        diff = points[:, None, :] - points[None, :, :]
        d2 = (diff**2).sum(axis=2)
        q = 1.0 / (1.0 + d2)
        np.fill_diagonal(q, 0.0)
        z_exact = q.sum()
        rep_exact = ((q**2)[:, :, None] * diff).sum(axis=1)
        assert z == pytest.approx(z_exact, rel=1e-5)
        np.testing.assert_allclose(rep, rep_exact, rtol=1e-4, atol=1e-7)

    def test_theta_half_repulsion_close(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(500, 2)) * 3.0
        rep, _ = repulsion(points, theta=0.5)
        rep_exact, _ = repulsion(points, theta=0.0)
        scale = np.abs(rep_exact).max()
        assert np.abs(rep - rep_exact).max() / scale < 0.05

    def test_final_kl_within_5_percent(self, bench_city):
        exact = tsne(
            bench_city, metric="euclidean", n_iter=500, seed=0, method="exact"
        )
        fast = tsne(
            bench_city, metric="euclidean", n_iter=500, seed=0, method="bh"
        )
        assert fast.kl_divergence <= exact.kl_divergence * 1.05
        assert fast.method == "bh"
        assert exact.method == "exact"

    def test_procrustes_disparity_small(self, bench_city):
        exact = tsne(
            bench_city, metric="euclidean", n_iter=500, seed=0, method="exact"
        )
        fast = tsne(
            bench_city, metric="euclidean", n_iter=500, seed=0, method="bh"
        )
        _, disparity = procrustes_align(fast.embedding, exact.embedding)
        # Same init, same P: the approximate descent must land on the same
        # layout up to similarity transform, not merely a same-quality one.
        assert disparity < 0.25

    def test_auto_threshold_selects_engine(self, bench_city):
        small = tsne(bench_city[:60], n_iter=20, method="auto")
        assert small.method == "exact"
        forced = tsne(bench_city[:60], n_iter=20, method="bh")
        assert forced.method == "bh"

    def test_tree_mass_conservation(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(777, 2))
        tree = build_tree(points)
        assert tree.count[0] == 777
        plan = plan_repulsion(points, theta=0.5)
        # Every point interacts with every other exactly once: far cell
        # masses plus leaf partners (minus self) must total n-1 per point.
        partners = np.zeros(777)
        np.add.at(partners, plan.far_pid, plan.far_mass.astype(np.float64))
        np.add.at(partners, plan.leaf_pid, plan.leaf_mask.astype(np.float64))
        np.testing.assert_allclose(partners, 776.0)

    def test_invalid_theta(self, bench_city):
        with pytest.raises(ValueError, match="theta"):
            tsne(bench_city, n_iter=10, method="bh", theta=1.5)
        with pytest.raises(ValueError, match="method"):
            tsne(bench_city, n_iter=10, method="fft")


class TestPerplexityParity:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_betas_match_loop(self, seed):
        feats = _blob_features(120, seed=seed)
        diff = feats[:, None, :] - feats[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=2))
        _, betas_loop = _perplexity_search_loop(dist, perplexity=20.0)
        probs_vec, betas_vec = _perplexity_search(dist, perplexity=20.0)
        np.testing.assert_allclose(betas_vec, betas_loop, rtol=1e-9)
        # Row entropies hit the perplexity target.
        row_sums = probs_vec.sum(axis=1)
        np.testing.assert_allclose(row_sums, 1.0, rtol=1e-9)

    def test_duplicate_points(self):
        feats = np.repeat(_blob_features(15, seed=2), 3, axis=0)
        diff = feats[:, None, :] - feats[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=2))
        probs, betas = _perplexity_search(dist, perplexity=5.0)
        _, betas_loop = _perplexity_search_loop(dist, perplexity=5.0)
        np.testing.assert_allclose(betas, betas_loop, rtol=1e-9)
        assert np.isfinite(probs).all()


class TestDtwParity:
    @pytest.mark.parametrize("shape", [(50, 50, 5), (96, 80, 20), (40, 55, 15)])
    def test_bit_identical_to_row_sweep(self, shape):
        n, m, band = shape
        rng = np.random.default_rng(n + m)
        a = rng.normal(size=n)
        b = rng.normal(size=m)
        want = _dtw_row_sweep(a, b, band)
        got = dtw_distance(a, b, band=band, normalize=False)
        assert got == want  # exact same additions in the same order
