"""Tests for the DTW distance."""

import numpy as np
import pytest

from repro.core.reduction.distances import validate_distance_matrix
from repro.core.reduction.dtw import dtw_distance, dtw_distance_matrix


class TestDtwDistance:
    def test_identical_series_zero(self):
        a = np.sin(np.linspace(0, 6, 50))
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric(self, rng):
        a = rng.normal(size=40)
        b = rng.normal(size=40)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_phase_shift_tolerance(self):
        """A small phase shift barely moves DTW but wrecks pointwise
        distance — the reason to offer DTW at all."""
        t = np.linspace(0, 4 * np.pi, 96)
        a = np.sin(t)
        shifted = np.sin(t - 0.4)
        other = np.cos(2 * t)
        assert dtw_distance(a, shifted, band=10) < 0.05
        assert dtw_distance(a, other, band=10) > 5 * dtw_distance(a, shifted, band=10)

    def test_normalization_ignores_scale(self):
        a = np.sin(np.linspace(0, 6, 50))
        assert dtw_distance(a, 100 * a + 7) == pytest.approx(0.0, abs=1e-9)
        # Without normalisation, scale matters.
        assert dtw_distance(a, 100 * a + 7, normalize=False) > 1.0

    def test_different_lengths(self):
        a = np.sin(np.linspace(0, 6, 50))
        b = np.sin(np.linspace(0, 6, 46))
        assert dtw_distance(a, b, band=8) < 0.2

    def test_band_too_narrow_for_length_gap(self):
        with pytest.raises(ValueError, match="band"):
            dtw_distance(np.ones(50), np.ones(10), band=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_distance(np.empty(0), np.ones(3))
        with pytest.raises(ValueError, match="NaN"):
            dtw_distance(np.array([1.0, np.nan]), np.ones(2))
        with pytest.raises(ValueError, match="1-D"):
            dtw_distance(np.ones((2, 2)), np.ones(2))


class TestDtwMatrix:
    def test_is_valid_dissimilarity(self, rng):
        feats = rng.normal(size=(8, 30))
        dist = dtw_distance_matrix(feats)
        validate_distance_matrix(dist)  # symmetric, zero diag, non-negative

    def test_groups_shape_families(self):
        t = np.linspace(0, 4 * np.pi, 60)
        sines = np.stack([np.sin(t - s) for s in (0.0, 0.2, 0.4)])
        squares = np.stack(
            [np.sign(np.sin(t - s)) for s in (0.0, 0.2, 0.4)]
        ).astype(float)
        feats = np.vstack([sines, squares])
        dist = dtw_distance_matrix(feats, band=8)
        within = max(dist[0, 1], dist[0, 2], dist[3, 4], dist[3, 5])
        across = min(dist[0, 3], dist[1, 4], dist[2, 5])
        assert across > within

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            dtw_distance_matrix(rng.normal(size=(1, 10)))
        with pytest.raises(ValueError, match="2-D"):
            dtw_distance_matrix(rng.normal(size=10))

    def test_fleet_scale_guard(self, rng):
        """Oversize inputs are rejected up front with a pointer at the
        sampled path, not left to run the O(n^2) loop for hours."""
        feats = rng.normal(size=(600, 8))
        with pytest.raises(ValueError, match="max_rows"):
            dtw_distance_matrix(feats)
        with pytest.raises(ValueError, match="[Ss]ample"):
            dtw_distance_matrix(feats)
        # An explicit opt-in raises the ceiling.
        out = dtw_distance_matrix(feats[:20], max_rows=20)
        assert out.shape == (20, 20)

    def test_usable_by_reducers(self, rng):
        """The DTW matrix plugs straight into t-SNE/MDS as distances."""
        from repro.core.reduction.mds import mds

        t = np.linspace(0, 4 * np.pi, 48)
        feats = np.vstack(
            [np.sin(t - s) for s in np.linspace(0, 1, 6)]
            + [np.cos(3 * t - s) for s in np.linspace(0, 1, 6)]
        )
        dist = dtw_distance_matrix(feats, band=6)
        result = mds(distances=dist, method="smacof")
        assert result.embedding.shape == (12, 2)
