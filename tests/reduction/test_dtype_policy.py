"""The accumulator dtype policy: float32 in, float64 accumulation.

Elementwise work runs in the input (or requested) dtype; every reduction
— means, squared-norm sums, bincounts — accumulates in float64.  Two
regressions are pinned: ``_validated`` must not silently upcast float32
(the historical double-memory bug), and the float32 compute path must
stay within 1e-5 relative error of the float64 reference everywhere the
``dtype=`` knob exists (distances, k-means, KDE).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans, minibatch_kmeans
from repro.core.reduction.distances import (
    _validated,
    cross_distances,
    euclidean_distance_matrix,
    pairwise_distances,
    pearson_distance_matrix,
    pearson_normalize,
)
from repro.core.shift.kde import kde_density
from repro.core.shift.grids import GridSpec


def _rel_err(got: np.ndarray, want: np.ndarray) -> float:
    scale = np.abs(want).max()
    return float(np.abs(got.astype(np.float64) - want).max() / max(scale, 1e-300))


class TestValidatedDtype:
    """Satellite regression: float32 survives validation untouched."""

    def test_float32_not_upcast(self):
        feats = np.random.default_rng(0).normal(size=(8, 5)).astype(np.float32)
        out = _validated(feats)
        assert out.dtype == np.float32
        assert out is feats  # no copy either

    def test_float64_untouched(self):
        feats = np.random.default_rng(0).normal(size=(8, 5))
        assert _validated(feats).dtype == np.float64

    def test_int_input_promoted_to_float64(self):
        out = _validated(np.arange(12).reshape(3, 4))
        assert out.dtype == np.float64

    def test_explicit_dtype_converts_both_ways(self):
        feats = np.random.default_rng(0).normal(size=(4, 4))
        assert _validated(feats, dtype=np.float32).dtype == np.float32
        up = _validated(feats.astype(np.float32), dtype=np.float64)
        assert up.dtype == np.float64

    def test_half_precision_rejected(self):
        feats = np.zeros((3, 3))
        with pytest.raises(ValueError, match="float32 or float64"):
            _validated(feats, dtype=np.float16)


class TestDistanceDtypeParity:
    @pytest.fixture(scope="class")
    def feats(self):
        return np.random.default_rng(3).normal(size=(120, 24))

    def test_pearson_float32_within_1e5(self, feats):
        want = pearson_distance_matrix(feats)
        got = pearson_distance_matrix(feats, dtype=np.float32)
        assert got.dtype == np.float32
        assert _rel_err(got, want) <= 1e-5

    def test_euclidean_float32_within_1e5(self, feats):
        want = euclidean_distance_matrix(feats)
        got = euclidean_distance_matrix(feats, dtype=np.float32)
        assert got.dtype == np.float32
        assert _rel_err(got, want) <= 1e-5

    def test_cross_distances_float32_within_1e5(self, feats):
        for metric in ("pearson", "euclidean"):
            want = cross_distances(feats[:30], feats[30:], metric=metric)
            got = cross_distances(
                feats[:30], feats[30:], metric=metric, dtype=np.float32
            )
            assert _rel_err(got, want) <= 1e-5

    def test_float32_input_stays_float32_end_to_end(self, feats):
        out = pairwise_distances(feats.astype(np.float32), metric="euclidean")
        assert out.dtype == np.float32

    def test_dtype_knob_is_explicit_not_inferred_sideways(self, feats):
        # dtype=None + float64 input must be bit-identical to the
        # pre-knob behaviour (the knob is opt-in, never a default drift).
        np.testing.assert_array_equal(
            pearson_distance_matrix(feats),
            pearson_distance_matrix(feats, dtype=np.float64),
        )

    def test_pearson_normalize_zero_rows_both_dtypes(self):
        feats = np.vstack([np.ones(10), np.random.default_rng(1).normal(size=10)])
        for dtype in (np.float32, np.float64):
            unit = pearson_normalize(feats, dtype=dtype)
            assert unit.dtype == dtype
            np.testing.assert_array_equal(unit[0], 0.0)


class TestKMeansDtypeParity:
    def test_float32_labels_match_and_centroids_close(self):
        feats = np.random.default_rng(5).normal(size=(200, 8))
        feats[:100] += 6.0  # two clear clusters: assignment is stable
        want = kmeans(feats, k=2, seed=0)
        got = kmeans(feats, k=2, seed=0, dtype=np.float32)
        np.testing.assert_array_equal(got.labels, want.labels)
        assert _rel_err(got.centroids, want.centroids) <= 1e-5
        assert abs(got.inertia - want.inertia) / want.inertia <= 1e-5

    def test_minibatch_float32_runs_and_clusters(self):
        feats = np.random.default_rng(6).normal(size=(300, 6))
        feats[:150] += 8.0
        result = minibatch_kmeans(feats, k=2, seed=0, dtype=np.float32)
        # Centroids are the accumulator, so they stay float64 even on
        # the float32 compute path — the policy under test.
        assert result.centroids.dtype == np.float64
        # Both clusters found: one centroid near each blob centre.
        first = result.labels[:150]
        assert (first == first[0]).all()
        assert (result.labels[150:] != first[0]).all()


class TestKdeDtypeParity:
    @pytest.fixture(scope="class")
    def field(self):
        rng = np.random.default_rng(7)
        lon = 116.0 + rng.random(400) * 0.1
        lat = 39.0 + rng.random(400) * 0.1
        positions = np.column_stack([lon, lat])
        weights = rng.random(400) + 0.1
        return positions, weights, GridSpec.covering(positions, nx=40, ny=40)

    @pytest.mark.parametrize("method", ["exact", "binned"])
    def test_float32_field_within_1e5(self, field, method):
        positions, weights, grid = field
        want = kde_density(positions, weights, grid, method=method)
        got = kde_density(
            positions, weights, grid, method=method, dtype="float32"
        )
        assert _rel_err(got.values, want.values) <= 1e-5

    def test_dtype_none_is_bit_identical_to_before(self, field):
        positions, weights, grid = field
        np.testing.assert_array_equal(
            kde_density(positions, weights, grid, method="exact").values,
            kde_density(
                positions, weights, grid, method="exact", dtype="float64"
            ).values,
        )
