"""Tests for the distance functions."""

import numpy as np
import pytest

from repro.core.reduction.distances import (
    euclidean_distance_matrix,
    pairwise_distances,
    pearson_distance_matrix,
    validate_distance_matrix,
)


class TestPearson:
    def test_perfect_correlation_is_zero(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        feats = np.vstack([a, 2 * a + 5])  # affine transforms correlate 1.0
        dist = pearson_distance_matrix(feats)
        assert dist[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_anticorrelation_is_two(self):
        a = np.array([1.0, 2.0, 3.0])
        dist = pearson_distance_matrix(np.vstack([a, -a]))
        assert dist[0, 1] == pytest.approx(2.0)

    def test_bounds_and_symmetry(self, rng):
        feats = rng.normal(size=(20, 15))
        dist = pearson_distance_matrix(feats)
        assert (dist >= 0).all() and (dist <= 2 + 1e-12).all()
        np.testing.assert_array_equal(dist, dist.T)
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_constant_row_distance_one(self, rng):
        feats = np.vstack([np.full(10, 3.0), rng.normal(size=10)])
        dist = pearson_distance_matrix(feats)
        assert dist[0, 1] == pytest.approx(1.0)
        assert dist[0, 0] == 0.0

    def test_trend_over_magnitude(self):
        """The paper's rationale: same trend at different magnitude is close;
        different trend at same magnitude is far."""
        trend = np.sin(np.linspace(0, 4 * np.pi, 50))
        same_trend_big = 100.0 * trend + 40.0
        other_trend = np.cos(np.linspace(0, 4 * np.pi, 50))
        feats = np.vstack([trend, same_trend_big, other_trend])
        dist = pearson_distance_matrix(feats)
        assert dist[0, 1] < 0.01
        assert dist[0, 2] > 0.5

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            pearson_distance_matrix(np.array([[1.0, np.nan], [0.0, 1.0]]))

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            pearson_distance_matrix(np.ones((1, 5)))


class TestEuclidean:
    def test_known_values(self):
        feats = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = euclidean_distance_matrix(feats)
        assert dist[0, 1] == pytest.approx(5.0)

    def test_triangle_inequality(self, rng):
        feats = rng.normal(size=(12, 6))
        dist = euclidean_distance_matrix(feats)
        n = dist.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9


class TestDispatch:
    def test_metric_names(self, rng):
        feats = rng.normal(size=(5, 8))
        np.testing.assert_array_equal(
            pairwise_distances(feats, "pearson"), pearson_distance_matrix(feats)
        )
        np.testing.assert_array_equal(
            pairwise_distances(feats, "euclidean"),
            euclidean_distance_matrix(feats),
        )

    def test_unknown_metric(self, rng):
        with pytest.raises(ValueError, match="metric"):
            pairwise_distances(rng.normal(size=(5, 5)), "cosine")


class TestValidate:
    def test_accepts_valid(self, rng):
        dist = euclidean_distance_matrix(rng.normal(size=(6, 4)))
        out = validate_distance_matrix(dist)
        np.testing.assert_allclose(out, dist)

    def test_rejects_asymmetric(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            validate_distance_matrix(bad)

    def test_rejects_negative(self):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="negative"):
            validate_distance_matrix(bad)

    def test_rejects_nonzero_diagonal(self):
        bad = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            validate_distance_matrix(bad)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_distance_matrix(np.zeros((2, 3)))
