"""Tests for t-SNE, MDS and PCA."""

import numpy as np
import pytest

from repro.core.reduction.distances import (
    euclidean_distance_matrix,
    pearson_distance_matrix,
)
from repro.core.reduction.mds import classical_mds, kruskal_stress, mds, smacof
from repro.core.reduction.pca import pca
from repro.core.reduction.tsne import joint_probabilities, tsne


@pytest.fixture(scope="module")
def three_blobs():
    """Three well-separated Gaussian blobs in 10-D."""
    rng = np.random.default_rng(42)
    centers = np.array(
        [[8.0] + [0.0] * 9, [0.0, 8.0] + [0.0] * 8, [0.0, 0.0, 8.0] + [0.0] * 7]
    )
    feats = np.vstack(
        [rng.normal(center, 0.5, size=(20, 10)) for center in centers]
    )
    labels = np.repeat([0, 1, 2], 20)
    return feats, labels


def _cluster_separation(embedding, labels):
    """Mean inter-centroid distance divided by mean within-cluster spread."""
    centroids = np.stack(
        [embedding[labels == c].mean(axis=0) for c in np.unique(labels)]
    )
    within = np.mean(
        [
            np.linalg.norm(embedding[labels == c] - centroids[i], axis=1).mean()
            for i, c in enumerate(np.unique(labels))
        ]
    )
    pairs = [
        np.linalg.norm(centroids[i] - centroids[j])
        for i in range(len(centroids))
        for j in range(i + 1, len(centroids))
    ]
    return np.mean(pairs) / max(within, 1e-12)


class TestJointProbabilities:
    def test_symmetric_normalised(self, three_blobs):
        feats, _ = three_blobs
        dist = euclidean_distance_matrix(feats)
        p = joint_probabilities(dist, perplexity=10.0)
        np.testing.assert_allclose(p, p.T, atol=1e-15)
        # The numeric floor (clip to 1e-12) can add up to n^2 * 1e-12.
        assert p.sum() == pytest.approx(1.0, abs=1e-7)
        assert (p > 0).all()  # clipped to a floor

    def test_perplexity_out_of_range(self, three_blobs):
        feats, _ = three_blobs
        dist = euclidean_distance_matrix(feats)
        with pytest.raises(ValueError, match="perplexity"):
            joint_probabilities(dist, perplexity=1.0)
        with pytest.raises(ValueError, match="perplexity"):
            joint_probabilities(dist, perplexity=1e6)

    def test_neighbours_get_more_mass(self, three_blobs):
        feats, labels = three_blobs
        dist = euclidean_distance_matrix(feats)
        p = joint_probabilities(dist, perplexity=10.0)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        assert p[same].mean() > 10 * p[~same & ~np.eye(len(labels), dtype=bool)].mean()


class TestTsne:
    def test_separates_blobs(self, three_blobs):
        feats, labels = three_blobs
        result = tsne(feats, metric="euclidean", perplexity=10, n_iter=400, seed=0)
        assert result.embedding.shape == (60, 2)
        assert _cluster_separation(result.embedding, labels) > 2.0

    def test_kl_decreases(self, three_blobs):
        feats, _ = three_blobs
        result = tsne(feats, metric="euclidean", perplexity=10, n_iter=400, seed=0)
        # KL after optimisation far below the early-exaggeration start.
        assert result.kl_divergence < result.kl_trace[0]
        assert result.kl_divergence >= 0.0

    def test_deterministic_for_seed(self, three_blobs):
        feats, _ = three_blobs
        a = tsne(feats, perplexity=10, n_iter=150, seed=3)
        b = tsne(feats, perplexity=10, n_iter=150, seed=3)
        np.testing.assert_array_equal(a.embedding, b.embedding)

    def test_accepts_precomputed_distances(self, three_blobs):
        feats, labels = three_blobs
        dist = pearson_distance_matrix(feats)
        result = tsne(distances=dist, perplexity=10, n_iter=200, seed=1)
        assert result.embedding.shape == (60, 2)

    def test_rejects_both_inputs(self, three_blobs):
        feats, _ = three_blobs
        with pytest.raises(ValueError, match="exactly one"):
            tsne(feats, distances=euclidean_distance_matrix(feats))

    def test_rejects_neither_input(self):
        with pytest.raises(ValueError, match="exactly one"):
            tsne()

    def test_perplexity_clamped_for_small_n(self):
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(9, 4))
        result = tsne(feats, perplexity=50, n_iter=50)
        assert result.perplexity <= (9 - 1) / 3.0

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            tsne(np.ones((2, 4)))

    def test_embedding_centered(self, three_blobs):
        feats, _ = three_blobs
        result = tsne(feats, perplexity=10, n_iter=100, seed=0)
        np.testing.assert_allclose(
            result.embedding.mean(axis=0), 0.0, atol=1e-9
        )

    def test_random_init(self, three_blobs):
        # Full default-length run: at 300 iterations the outcome sits on
        # the 2.0 threshold and flips with last-bit arithmetic changes
        # (t-SNE descent is chaotic); converged runs pass with margin.
        feats, labels = three_blobs
        result = tsne(feats, perplexity=10, n_iter=500, init="random", seed=5)
        assert _cluster_separation(result.embedding, labels) > 2.0

    def test_bad_init_name(self, three_blobs):
        feats, _ = three_blobs
        with pytest.raises(ValueError, match="init"):
            tsne(feats, init="spectral")


class TestMds:
    def test_classical_recovers_euclidean_geometry(self):
        """Classical MDS on exact Euclidean distances of 2-D points must
        reproduce the configuration up to rotation: distances preserved."""
        rng = np.random.default_rng(7)
        points = rng.normal(size=(25, 2))
        dist = euclidean_distance_matrix(points)
        embedding = classical_mds(dist, 2)
        rebuilt = euclidean_distance_matrix(embedding)
        np.testing.assert_allclose(rebuilt, dist, atol=1e-8)

    def test_smacof_reduces_stress(self, three_blobs):
        feats, _ = three_blobs
        dist = pearson_distance_matrix(feats)
        start = classical_mds(dist, 2)
        initial = kruskal_stress(dist, start)
        _, final, n_iter = smacof(dist, 2, init=start)
        assert final <= initial + 1e-12
        assert n_iter >= 1

    def test_mds_facade_methods(self, three_blobs):
        feats, labels = three_blobs
        for method in ("classical", "smacof"):
            result = mds(feats, metric="euclidean", method=method)
            assert result.embedding.shape == (60, 2)
            assert result.method == method
            assert _cluster_separation(result.embedding, labels) > 2.0

    def test_stress_in_unit_range(self, three_blobs):
        feats, _ = three_blobs
        result = mds(feats, method="smacof")
        assert 0.0 <= result.stress < 1.0

    def test_unknown_method(self, three_blobs):
        feats, _ = three_blobs
        with pytest.raises(ValueError, match="method"):
            mds(feats, method="sammon")

    def test_rejects_both_inputs(self, three_blobs):
        feats, _ = three_blobs
        with pytest.raises(ValueError):
            mds(feats, distances=euclidean_distance_matrix(feats))

    def test_deterministic(self, three_blobs):
        feats, _ = three_blobs
        a = mds(feats, method="smacof")
        b = mds(feats, method="smacof")
        np.testing.assert_array_equal(a.embedding, b.embedding)


class TestPca:
    def test_explains_variance_in_order(self, three_blobs):
        feats, _ = three_blobs
        result = pca(feats, n_components=3)
        ratios = result.explained_variance_ratio
        assert (np.diff(ratios) <= 1e-12).all()
        assert ratios.sum() <= 1.0 + 1e-9

    def test_reconstruction_of_low_rank_data(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(30, 2)) @ rng.normal(size=(2, 8))
        result = pca(base, n_components=2)
        assert result.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_deterministic_sign(self, three_blobs):
        feats, _ = three_blobs
        a = pca(feats)
        b = pca(feats)
        np.testing.assert_array_equal(a.embedding, b.embedding)

    def test_bad_n_components(self, three_blobs):
        feats, _ = three_blobs
        with pytest.raises(ValueError):
            pca(feats, n_components=0)
        with pytest.raises(ValueError):
            pca(feats, n_components=100)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            pca(np.array([[1.0, np.nan], [0.0, 1.0]]))
