"""The DTW row ceiling: typed error, dispatch, and the API mapping.

``dtw_distance_matrix`` is O(n²) DTW evaluations — at fleet scale it
would run for hours, so oversize inputs raise :class:`DtwLimitError`
up front.  The error is a ``ValueError`` subclass carrying the offending
row count and the limit, which the server's ValueError→400 mapping turns
into a client error that *names the limit* instead of a hung request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reduction.distances import (
    METRICS,
    cross_distances,
    pairwise_distances,
)
from repro.core.reduction.dtw import (
    MAX_DTW_ROWS,
    MAX_DTW_ROWS_CEILING,
    DtwLimitError,
    dtw_cross_distance_matrix,
    dtw_distance_matrix,
)


class TestDtwLimitError:
    def test_typed_error_with_limit_in_message(self):
        features = np.random.default_rng(0).normal(size=(7, 20))
        with pytest.raises(DtwLimitError) as excinfo:
            dtw_distance_matrix(features, max_rows=6)
        err = excinfo.value
        assert isinstance(err, ValueError)
        assert err.n_rows == 7
        assert err.max_rows == 6
        assert "max_rows=6" in str(err)
        assert "7 rows" in str(err)

    def test_default_ceiling(self):
        assert MAX_DTW_ROWS == 512
        features = np.zeros((MAX_DTW_ROWS + 1, 4))
        with pytest.raises(DtwLimitError, match=r"max_rows=512"):
            dtw_distance_matrix(features)

    def test_at_the_ceiling_is_allowed(self):
        features = np.random.default_rng(1).normal(size=(5, 16))
        out = dtw_distance_matrix(features, max_rows=5)
        assert out.shape == (5, 5)
        assert np.allclose(np.diag(out), 0.0)

    def test_raised_before_any_dtw_work(self):
        # NaN input past the guard would raise a different ValueError;
        # the limit check must fire first (fail fast, not fail late).
        features = np.full((9, 4), np.nan)
        with pytest.raises(DtwLimitError):
            dtw_distance_matrix(features, max_rows=8)


class TestMaxRowsOverride:
    """The explicit ``max_rows=`` override and its hard ceiling."""

    def test_override_lifts_the_default(self):
        features = np.random.default_rng(4).normal(size=(MAX_DTW_ROWS + 2, 4))
        out = dtw_distance_matrix(features, max_rows=MAX_DTW_ROWS + 2)
        assert out.shape == (MAX_DTW_ROWS + 2, MAX_DTW_ROWS + 2)

    def test_override_threads_through_dispatch(self):
        features = np.random.default_rng(5).normal(size=(9, 8))
        np.testing.assert_array_equal(
            pairwise_distances(features, metric="dtw", dtw_max_rows=9),
            dtw_distance_matrix(features, max_rows=9),
        )
        with pytest.raises(DtwLimitError):
            pairwise_distances(features, metric="dtw", dtw_max_rows=8)

    def test_pipeline_rejects_values_over_the_ceiling(self, small_session):
        with pytest.raises(ValueError, match="dtw_max_rows"):
            small_session.embed_degradable(
                metric="dtw", dtw_max_rows=MAX_DTW_ROWS_CEILING + 1
            )
        with pytest.raises(ValueError, match="dtw_max_rows"):
            small_session.embed_degradable(metric="dtw", dtw_max_rows=0)


class TestCrossBudget:
    """The (m, n) landmark-placement form shares the square budget."""

    def test_small_cross_matrix_matches_pair_dtw(self):
        from repro.core.reduction.dtw import dtw_distance

        rng = np.random.default_rng(6)
        queries, references = rng.normal(size=(3, 24)), rng.normal(size=(4, 24))
        cross = dtw_cross_distance_matrix(queries, references)
        assert cross.shape == (3, 4)
        assert cross[1, 2] == dtw_distance(queries[1], references[2])

    def test_pair_budget_enforced(self):
        queries = np.zeros((5, 6))
        references = np.zeros((6, 6))
        with pytest.raises(DtwLimitError):
            dtw_cross_distance_matrix(queries, references, max_rows=5)
        out = dtw_cross_distance_matrix(queries, references, max_rows=6)
        assert out.shape == (5, 6)

    def test_cross_dispatch_propagates_budget(self):
        queries = np.zeros((4, 6))
        references = np.zeros((5, 6))
        with pytest.raises(DtwLimitError):
            cross_distances(
                queries, references, metric="dtw", dtw_max_rows=4
            )


class TestMetricDispatch:
    def test_dtw_is_a_registered_metric(self):
        assert "dtw" in METRICS

    def test_dispatch_matches_direct_call(self):
        features = np.random.default_rng(2).normal(size=(6, 24))
        np.testing.assert_array_equal(
            pairwise_distances(features, metric="dtw"),
            dtw_distance_matrix(features),
        )

    def test_dispatch_propagates_the_limit(self):
        features = np.zeros((MAX_DTW_ROWS + 1, 3))
        with pytest.raises(DtwLimitError):
            pairwise_distances(features, metric="dtw")


class TestServerMapping:
    """Regression: an oversize DTW embedding request is a 400, not a hang."""

    def test_oversize_fleet_gets_400_naming_the_limit(self):
        from repro.core.pipeline import VapSession
        from repro.data.generator.simulate import CityConfig, generate_city
        from repro.server import VapApp
        from repro.server.client import TestClient

        city = generate_city(
            CityConfig(n_customers=MAX_DTW_ROWS + 8, n_days=7, seed=3)
        )
        client = TestClient(VapApp(VapSession.from_city(city, shards=1)))
        response = client.get(
            "/api/embedding?metric=dtw&method=mds_classical"
        )
        assert response.status == 400
        assert f"max_rows={MAX_DTW_ROWS}" in response.json["error"]

    def test_tightened_limit_param_gets_400(self):
        from repro.core.pipeline import VapSession
        from repro.data.generator.simulate import CityConfig, generate_city
        from repro.server import VapApp
        from repro.server.client import TestClient

        city = generate_city(CityConfig(n_customers=12, n_days=7, seed=3))
        client = TestClient(VapApp(VapSession.from_city(city, shards=1)))
        response = client.get(
            "/api/embedding?metric=dtw&method=mds_classical&dtw_max_rows=8"
        )
        assert response.status == 400
        assert "max_rows=8" in response.json["error"]
        # Values beyond the hard ceiling are abuse, not a bigger budget.
        response = client.get(
            "/api/embedding?metric=dtw&method=mds_classical"
            "&dtw_max_rows=99999"
        )
        assert response.status == 400
        assert "dtw_max_rows" in response.json["error"]

    def test_small_fleet_dtw_embedding_succeeds(self):
        from repro.core.pipeline import VapSession
        from repro.data.generator.simulate import CityConfig, generate_city
        from repro.server import VapApp
        from repro.server.client import TestClient

        city = generate_city(CityConfig(n_customers=12, n_days=7, seed=3))
        client = TestClient(VapApp(VapSession.from_city(city, shards=1)))
        response = client.get(
            "/api/embedding?metric=dtw&method=mds_classical"
        )
        assert response.status == 200
        assert response.json["metric"] == "dtw"
        assert len(response.json["points"]) == 12
