"""Out-of-sample placement: the seeds landmark t-SNE stands on.

``barycentric_from_cross`` is the placement primitive (also the landmark
engine's interpolation stage); ``EmbeddingProjector`` wraps it with
metric handling and the blockwise/parallel fan-out.  Pinned here: the
barycentre is a convex combination (equivariant under orthogonal maps of
the embedding — rotating the layout rotates the placements), training
rows round-trip exactly, NaN input is rejected up front, and the
blockwise fan-out never changes a single bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reduction import project as project_module
from repro.core.reduction.distances import euclidean_cross_distance_matrix
from repro.core.reduction.procrustes import procrustes_align
from repro.core.reduction.project import (
    EmbeddingProjector,
    barycentric_from_cross,
)


@pytest.fixture()
def train(rng):
    feats = rng.normal(size=(40, 12))
    emb = rng.normal(size=(40, 2)) * 5.0
    return feats, emb


class TestBarycentricFromCross:
    def test_convex_combination_stays_in_neighbour_box(self, rng):
        emb = rng.normal(size=(30, 2))
        cross = np.abs(rng.normal(size=(10, 30))) + 0.1
        out = barycentric_from_cross(cross, emb, k=5)
        for i in range(10):
            nearest = np.argsort(cross[i])[:5]
            lo = emb[nearest].min(axis=0) - 1e-9
            hi = emb[nearest].max(axis=0) + 1e-9
            assert (out[i] >= lo).all() and (out[i] <= hi).all()

    def test_zero_distance_snaps_to_training_row(self, rng):
        emb = rng.normal(size=(20, 2))
        cross = np.abs(rng.normal(size=(3, 20))) + 0.5
        cross[1, 7] = 0.0
        out = barycentric_from_cross(cross, emb, k=4)
        np.testing.assert_array_equal(out[1], emb[7])

    def test_orthogonal_equivariance(self, rng):
        # Placement commutes with rotation + reflection + translation of
        # the training layout: weights depend only on the cross
        # distances, and convex weights sum to one.
        emb = rng.normal(size=(25, 2))
        cross = np.abs(rng.normal(size=(8, 25))) + 0.1
        theta = 0.73
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        ) @ np.diag([1.0, -1.0])
        shift = np.array([3.0, -1.5])
        base = barycentric_from_cross(cross, emb, k=6)
        moved = barycentric_from_cross(cross, emb @ rot + shift, k=6)
        np.testing.assert_allclose(moved, base @ rot + shift, atol=1e-9)

    def test_tied_distances_are_deterministic(self):
        # argpartition's tie order is implementation-defined; the
        # (distance, index) lexsort must make placement reproducible.
        emb = np.arange(12.0).reshape(6, 2)
        cross = np.ones((4, 6))
        a = barycentric_from_cross(cross, emb, k=3)
        b = barycentric_from_cross(cross.copy(order="F"), emb, k=3)
        np.testing.assert_array_equal(a, b)
        # All-tied rows average the lowest-index neighbours.
        np.testing.assert_allclose(a[0], emb[:3].mean(axis=0))

    def test_k_at_least_n_train_uses_everyone(self, rng):
        emb = rng.normal(size=(5, 2))
        cross = np.full((2, 5), 2.0)
        out = barycentric_from_cross(cross, emb, k=9)
        np.testing.assert_allclose(out, np.tile(emb.mean(axis=0), (2, 1)))


class TestRoundTrip:
    def test_training_rows_project_onto_themselves(self, train):
        feats, emb = train
        projector = EmbeddingProjector(feats, emb, k=4, metric="euclidean")
        out = projector.project(feats)
        # Self-distance through the blocked sq-norm+matmul kernel is
        # ~sqrt(eps), not exactly 0, so the snap is near- rather than
        # bit-exact: the inverse-distance weight still pins each row.
        np.testing.assert_allclose(out, emb, atol=1e-4)

    def test_round_trip_survives_procrustes(self, train, rng):
        # Perturbed training rows land near their originals: aligning
        # the projection back onto the training layout is ~lossless.
        feats, emb = train
        projector = EmbeddingProjector(feats, emb, k=4, metric="euclidean")
        out = projector.project(feats + rng.normal(scale=1e-4, size=feats.shape))
        aligned, disparity = procrustes_align(out, emb)
        assert disparity < 1e-4
        np.testing.assert_allclose(aligned, emb, atol=0.05)


class TestValidation:
    def test_nan_training_features_rejected(self, train):
        feats, emb = train
        feats = feats.copy()
        feats[3, 5] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            EmbeddingProjector(feats, emb)

    def test_nan_new_features_rejected(self, train):
        feats, emb = train
        projector = EmbeddingProjector(feats, emb, metric="euclidean")
        bad = feats[:2].copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN/inf"):
            projector.project(bad)

    def test_width_mismatch_rejected(self, train):
        feats, emb = train
        projector = EmbeddingProjector(feats, emb, metric="euclidean")
        with pytest.raises(ValueError, match="width"):
            projector.project(np.zeros((2, feats.shape[1] + 1)))

    def test_unknown_metric_rejected(self, train):
        feats, emb = train
        with pytest.raises(ValueError, match="metric"):
            EmbeddingProjector(feats, emb, metric="cosine")

    def test_k_bounds(self, train):
        feats, emb = train
        with pytest.raises(ValueError, match="k must be"):
            EmbeddingProjector(feats, emb, k=0)
        with pytest.raises(ValueError, match="k must be"):
            EmbeddingProjector(feats, emb, k=feats.shape[0] + 1)

    def test_empty_projection(self, train):
        feats, emb = train
        projector = EmbeddingProjector(feats, emb, metric="euclidean")
        assert projector.project(np.empty((0, feats.shape[1]))).shape == (0, 2)


class TestBlockwiseDeterminism:
    def test_bit_identical_across_blocks_and_workers(
        self, train, rng, monkeypatch
    ):
        feats, emb = train
        new = rng.normal(size=(53, feats.shape[1]))
        projector = EmbeddingProjector(feats, emb, k=5, metric="pearson")
        whole = projector.project(new, workers=1)
        # Shrink blocks so 53 rows fan out over many ragged blocks.
        monkeypatch.setattr(project_module, "PROJECT_BLOCK_ROWS", 7)
        for workers in (1, 2, 4):
            got = projector.project(new, workers=workers)
            assert np.array_equal(got, whole)

    def test_block_matches_direct_cross_computation(self, train, rng):
        feats, emb = train
        new = rng.normal(size=(6, feats.shape[1]))
        projector = EmbeddingProjector(feats, emb, k=3, metric="euclidean")
        cross = euclidean_cross_distance_matrix(new, feats)
        np.testing.assert_array_equal(
            projector.project(new),
            barycentric_from_cross(cross, emb.astype(np.float64), k=3),
        )
