"""Landmark t-SNE: the out-of-core engine's quality and determinism gates.

``method="landmark"`` embeds k-means++-selected landmarks with the
Barnes–Hut kernel and places everyone else at the kNN barycentre of the
landmark layout.  The gates: cluster structure must survive (kNN label
recall within a few percent of the full BH run), results must be
bit-identical across worker counts, and both input paths (features and
precomputed distances) must work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.perf import _blob_data, _knn_label_recall
from repro.core.reduction.distances import euclidean_distance_matrix
from repro.core.reduction.tsne import (
    DEFAULT_LANDMARKS,
    MAX_LANDMARKS,
    _select_landmarks,
    tsne,
)


@pytest.fixture(scope="module")
def labeled_city():
    """n=2000 clustered features — the acceptance-gate regime."""
    return _blob_data(2000, seed=5)


@pytest.fixture(scope="module")
def landmark_2k(labeled_city):
    feats, _ = labeled_city
    return tsne(
        feats, metric="euclidean", n_iter=300, seed=0,
        method="landmark", n_landmarks=256,
    )


class TestLandmarkSelection:
    def test_sorted_unique_within_range(self):
        feats, _ = _blob_data(300, seed=1)
        idx = _select_landmarks(64, seed=0, features=feats)
        assert idx.size <= 64
        assert np.array_equal(idx, np.unique(idx))
        assert idx.min() >= 0 and idx.max() < 300

    def test_deterministic_per_seed(self):
        feats, _ = _blob_data(300, seed=1)
        a = _select_landmarks(64, seed=7, features=feats)
        b = _select_landmarks(64, seed=7, features=feats)
        assert np.array_equal(a, b)
        c = _select_landmarks(64, seed=8, features=feats)
        assert not np.array_equal(a, c)

    def test_feature_and_distance_paths_agree(self):
        # D² sampling from raw features must see the same distances as
        # the precomputed-matrix path, so the same seed picks the same
        # landmarks.
        feats, _ = _blob_data(200, seed=2)
        dist = euclidean_distance_matrix(feats)
        from_feats = _select_landmarks(32, seed=3, features=feats)
        from_dist = _select_landmarks(32, seed=3, dist=dist)
        assert np.array_equal(from_feats, from_dist)

    def test_covers_all_clusters(self, labeled_city):
        feats, labels = labeled_city
        idx = _select_landmarks(64, seed=0, features=feats)
        # D² sampling spreads picks across the cluster structure: with
        # 64 picks over 8 clusters, missing a whole cluster means the
        # greedy-coverage rule is broken.
        assert set(np.unique(labels[idx])) == set(np.unique(labels))

    def test_degenerate_all_identical_points(self):
        feats = np.ones((50, 4))
        idx = _select_landmarks(8, seed=0, features=feats)
        assert idx.size >= 1  # duplicates collapse, but selection returns


class TestLandmarkQuality:
    def test_knn_label_recall_against_exact_bh(
        self, labeled_city, landmark_2k
    ):
        feats, labels = labeled_city
        bh = tsne(feats, metric="euclidean", n_iter=300, seed=0, method="bh")
        recall_landmark = _knn_label_recall(landmark_2k.embedding, labels)
        recall_bh = _knn_label_recall(bh.embedding, labels)
        # The acceptance gate: landmark preserves the cluster structure
        # nearly as well as the full run it replaces.
        assert recall_landmark >= 0.9
        assert recall_landmark >= 0.95 * recall_bh

    def test_result_metadata(self, landmark_2k):
        assert landmark_2k.method == "landmark"
        assert landmark_2k.embedding.shape == (2000, 2)
        assert np.isfinite(landmark_2k.embedding).all()
        assert landmark_2k.kl_divergence > 0.0

    def test_stage_breakdown_recorded(self, landmark_2k):
        stages = landmark_2k.stages
        assert stages is not None
        assert set(stages) == {
            "select_seconds", "embed_seconds", "place_seconds"
        }
        assert all(v >= 0.0 for v in stages.values())


class TestLandmarkDeterminism:
    def test_bit_identical_across_worker_counts(self):
        feats, _ = _blob_data(600, seed=9)
        kwargs = dict(
            metric="euclidean", n_iter=60, seed=0,
            method="landmark", n_landmarks=64,
        )
        serial = tsne(feats, workers=1, **kwargs)
        for workers in (2, 4):
            forked = tsne(feats, workers=workers, **kwargs)
            # The contract map_blocks pins, end to end through a real
            # kernel: not allclose — equal.
            assert np.array_equal(forked.embedding, serial.embedding)

    def test_same_seed_same_layout(self):
        feats, _ = _blob_data(400, seed=4)
        a = tsne(feats, n_iter=50, seed=1, method="landmark", n_landmarks=32)
        b = tsne(feats, n_iter=50, seed=1, method="landmark", n_landmarks=32)
        assert np.array_equal(a.embedding, b.embedding)


class TestLandmarkInputs:
    def test_precomputed_distance_path(self):
        feats, _ = _blob_data(300, seed=6)
        dist = euclidean_distance_matrix(feats)
        result = tsne(
            distances=dist, n_iter=50, seed=0,
            method="landmark", n_landmarks=32,
        )
        assert result.method == "landmark"
        assert result.embedding.shape == (300, 2)
        assert np.isfinite(result.embedding).all()

    def test_more_landmarks_than_points_embeds_everyone(self):
        feats, _ = _blob_data(40, seed=6)
        result = tsne(
            feats, n_iter=30, seed=0, method="landmark", n_landmarks=128
        )
        assert result.embedding.shape == (40, 2)

    def test_n_landmarks_validation(self):
        feats, _ = _blob_data(100, seed=0)
        with pytest.raises(ValueError, match="n_landmarks"):
            tsne(feats, n_iter=10, method="landmark", n_landmarks=3)
        with pytest.raises(ValueError, match="n_landmarks"):
            tsne(
                feats, n_iter=10, method="landmark",
                n_landmarks=MAX_LANDMARKS + 1,
            )

    def test_default_landmark_budget(self):
        assert 4 <= DEFAULT_LANDMARKS <= MAX_LANDMARKS

    def test_auto_never_selects_landmark(self):
        feats, _ = _blob_data(80, seed=0)
        assert tsne(feats, n_iter=10, method="auto").method == "exact"
