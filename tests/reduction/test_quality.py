"""Tests for embedding-quality metrics."""

import numpy as np
import pytest

from repro.core.reduction.distances import euclidean_distance_matrix
from repro.core.reduction.quality import (
    continuity,
    kl_divergence_embedding,
    neighborhood_hit,
    shepard_correlation,
    trustworthiness,
)


@pytest.fixture(scope="module")
def planar():
    """Points that are already 2-D: a perfect embedding exists."""
    rng = np.random.default_rng(11)
    points = rng.normal(size=(40, 2))
    return euclidean_distance_matrix(points), points


class TestPerfectEmbedding:
    def test_identity_embedding_scores_one(self, planar):
        dist, points = planar
        assert trustworthiness(dist, points, k=5) == pytest.approx(1.0)
        assert continuity(dist, points, k=5) == pytest.approx(1.0)
        assert shepard_correlation(dist, points) == pytest.approx(1.0)

    def test_scaled_rotation_still_perfect(self, planar):
        dist, points = planar
        theta = 0.7
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        transformed = 3.0 * points @ rot
        assert trustworthiness(dist, transformed, k=5) == pytest.approx(1.0)
        assert shepard_correlation(dist, transformed) == pytest.approx(1.0)


class TestBrokenEmbedding:
    def test_random_embedding_scores_low(self, planar):
        dist, points = planar
        rng = np.random.default_rng(0)
        scrambled = rng.normal(size=points.shape)
        assert trustworthiness(dist, scrambled, k=5) < 0.85
        assert continuity(dist, scrambled, k=5) < 0.85
        assert abs(shepard_correlation(dist, scrambled)) < 0.4

    def test_metrics_bounded(self, planar):
        dist, points = planar
        rng = np.random.default_rng(1)
        for _ in range(3):
            emb = rng.normal(size=points.shape)
            for metric in (trustworthiness, continuity):
                value = metric(dist, emb, k=7)
                assert 0.0 <= value <= 1.0


class TestNeighborhoodHit:
    def test_separated_labels_hit_one(self):
        emb = np.vstack(
            [np.random.default_rng(0).normal(0, 0.1, (15, 2)),
             np.random.default_rng(1).normal(10, 0.1, (15, 2))]
        )
        labels = np.repeat(["a", "b"], 15)
        assert neighborhood_hit(emb, labels, k=5) == pytest.approx(1.0)

    def test_mixed_labels_hit_near_half(self, rng):
        emb = rng.normal(size=(100, 2))
        labels = np.array(["a", "b"] * 50)
        hit = neighborhood_hit(emb, labels, k=10)
        assert 0.3 < hit < 0.7

    def test_label_length_checked(self, rng):
        with pytest.raises(ValueError):
            neighborhood_hit(rng.normal(size=(5, 2)), np.array(["a"] * 4))


class TestKlEmbedding:
    def test_good_embedding_beats_bad(self, planar):
        dist, points = planar
        rng = np.random.default_rng(2)
        good = kl_divergence_embedding(dist, points, perplexity=10)
        bad = kl_divergence_embedding(
            dist, rng.normal(size=points.shape), perplexity=10
        )
        assert good < bad
        assert good >= 0.0
