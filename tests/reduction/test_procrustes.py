"""Tests for Procrustes alignment and embedding stability."""

import numpy as np
import pytest

from repro.core.reduction.procrustes import embedding_stability, procrustes_align
from repro.core.reduction.tsne import tsne


def _rotate(points: np.ndarray, theta: float) -> np.ndarray:
    rot = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    return points @ rot


class TestProcrustes:
    def test_identity(self, rng):
        points = rng.normal(size=(30, 2))
        aligned, disparity = procrustes_align(points, points)
        assert disparity == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(aligned, points, atol=1e-9)

    def test_undoes_rotation_translation_scale(self, rng):
        points = rng.normal(size=(30, 2))
        transformed = 3.0 * _rotate(points, 0.8) + np.array([5.0, -2.0])
        aligned, disparity = procrustes_align(transformed, points)
        assert disparity == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(aligned, points, atol=1e-8)

    def test_undoes_reflection(self, rng):
        points = rng.normal(size=(20, 2))
        mirrored = points * np.array([-1.0, 1.0])
        _, disparity = procrustes_align(mirrored, points)
        assert disparity == pytest.approx(0.0, abs=1e-12)

    def test_noise_gives_positive_disparity(self, rng):
        points = rng.normal(size=(30, 2))
        noisy = points + rng.normal(0, 0.5, size=points.shape)
        _, disparity = procrustes_align(noisy, points)
        assert 0.0 < disparity < 1.0

    def test_unrelated_configurations_score_high(self, rng):
        a = rng.normal(size=(40, 2))
        b = rng.normal(size=(40, 2))
        _, disparity = procrustes_align(a, b)
        assert disparity > 0.5

    def test_no_scaling_option(self, rng):
        points = rng.normal(size=(25, 2))
        doubled = 2.0 * points
        _, with_scale = procrustes_align(doubled, points, allow_scaling=True)
        assert with_scale == pytest.approx(0.0, abs=1e-12)
        # Without scaling the shapes still match after normalisation, so
        # the disparity stays 0 here; a sheared copy would not.
        sheared = points @ np.array([[1.0, 0.7], [0.0, 1.0]])
        _, sheared_disparity = procrustes_align(
            sheared, points, allow_scaling=False
        )
        assert sheared_disparity > 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            procrustes_align(rng.normal(size=(5, 2)), rng.normal(size=(6, 2)))
        with pytest.raises(ValueError, match="NaN"):
            procrustes_align(
                np.array([[np.nan, 1.0]]), np.array([[0.0, 1.0]])
            )
        with pytest.raises(ValueError, match="degenerate"):
            procrustes_align(np.ones((4, 2)), rng.normal(size=(4, 2)))


class TestEmbeddingStability:
    def test_tsne_cluster_structure_is_stable_across_seeds(self):
        """The reassurance the demo needs: different random seeds place the
        *clusters* in the same relative layout (centroid disparity near 0),
        even though within-cluster point placement is arbitrary — which is
        why point-level disparity stays below but near the unrelated-layout
        level."""
        rng = np.random.default_rng(8)
        centers = np.array(
            [[6.0] + [0.0] * 7, [0.0] * 4 + [6.0] + [0.0] * 3,
             [3.0] * 2 + [6.0] + [0.0] * 5]
        )
        feats = np.vstack([rng.normal(c, 0.5, size=(20, 8)) for c in centers])
        labels = np.repeat([0, 1, 2], 20)
        runs = [
            tsne(feats, metric="euclidean", perplexity=10, n_iter=350,
                 init="random", seed=seed).embedding
            for seed in (0, 1, 2)
        ]
        centroids = [
            np.stack([r[labels == c].mean(axis=0) for c in (0, 1, 2)])
            for r in runs
        ]
        assert embedding_stability(centroids) < 0.1
        # Point-level: still distinguishable from a fully random layout.
        point_level = embedding_stability(runs)
        random_pair = embedding_stability(
            [runs[0], np.random.default_rng(3).normal(size=runs[0].shape)]
        )
        assert point_level < random_pair

    def test_pca_init_runs_are_identical(self):
        """With the default PCA init the layout is deterministic: seeds
        change nothing, so disparity is exactly 0."""
        rng = np.random.default_rng(1)
        feats = rng.normal(size=(30, 6))
        runs = [
            tsne(feats, metric="euclidean", perplexity=8, n_iter=150,
                 seed=seed).embedding
            for seed in (0, 7)
        ]
        assert embedding_stability(runs) == pytest.approx(0.0, abs=1e-12)

    def test_needs_two(self, rng):
        with pytest.raises(ValueError):
            embedding_stability([rng.normal(size=(5, 2))])
