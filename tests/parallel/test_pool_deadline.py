"""Deadline/cancellation checks at ``map_blocks`` block boundaries.

The bugfix sweep: a request that exhausts its deadline mid-pool must
stop between blocks with :class:`DeadlineExceeded` rather than grinding
through the remaining blocks and answering a request nobody is waiting
for.  The same checkpoints double as job-cancellation points via
:class:`~repro.jobs.model.CancelToken`.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.deadline import Deadline, DeadlineExceeded, bind_deadline
from repro.jobs.model import CancelToken, JobCancelled
from repro.parallel.pool import map_blocks


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSerialDeadline:
    def test_expiry_mid_run_stops_at_next_block_boundary(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        ran = []

        def work(item, arrays):
            # Each block "takes" 3 fake seconds: the budget dies during
            # block 2, so block 3 must never start.
            ran.append(item)
            clock.advance(3.0)
            return item

        with bind_deadline(deadline):
            with pytest.raises(DeadlineExceeded, match="parallel.map"):
                map_blocks(work, [1, 2, 3, 4], workers=1, name="unit")
        assert ran == [1, 2]

    def test_unexpired_deadline_is_transparent(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        with bind_deadline(deadline):
            out = map_blocks(lambda x, arrays: x * 2, [1, 2, 3], workers=1, name="unit")
        assert out == [2, 4, 6]

    def test_no_deadline_no_checks(self):
        out = map_blocks(lambda x, arrays: x + 1, [1, 2, 3], workers=1, name="unit")
        assert out == [2, 3, 4]

    def test_error_message_names_pool_and_block(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def work(item, arrays):
            clock.advance(2.0)
            return item

        with bind_deadline(deadline):
            with pytest.raises(DeadlineExceeded, match=r"parallel.map\[unit\]"):
                map_blocks(work, [1, 2], workers=1, name="unit")


class TestCancellation:
    def test_cancel_token_stops_between_blocks(self):
        """A job's CancelToken rides the same rail: setting the cancel
        event mid-run aborts at the next block boundary with the
        JobCancelled subclass."""
        event = threading.Event()
        token = CancelToken(event)
        ran = []

        def work(item, arrays):
            ran.append(item)
            if item == 2:
                event.set()
            return item

        with bind_deadline(token):
            with pytest.raises(JobCancelled):
                map_blocks(work, [1, 2, 3, 4], workers=1, name="unit")
        assert ran == [1, 2]
