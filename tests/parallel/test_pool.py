"""The shared-memory pool's determinism contract and fallback ladder.

``map_blocks`` must return bit-identical results for any worker count:
block boundaries depend only on problem size, every block is computed by
the same code on the same inputs, and assembly is in item order.  These
tests pin that contract plus the graceful-degradation paths (single
task, nested call, no fork) and the shared-memory round trip itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.parallel import (
    DEFAULT_BLOCK_ROWS,
    map_blocks,
    pool_budget,
    resolve_workers,
    row_blocks,
    scatter_budget,
)
from repro.parallel import pool as pool_module


def _sum_block(block, arrays):
    """Row-local reduction over a shared array — the kernel shape."""
    start, stop = block
    return arrays["data"][start:stop].sum(axis=1)


def _scaled_block(block, arrays, *, factor):
    start, stop = block
    return arrays["data"][start:stop] * factor


def _item_squared(item, arrays):
    return item * item


def _nested_call(block, arrays):
    """A block function that itself fans out — must not fork again."""
    inner = map_blocks(
        _item_squared, [1, 2, 3], workers=4, name="inner"
    )
    return sum(inner)


class TestRowBlocks:
    def test_covers_every_row_exactly_once(self):
        blocks = row_blocks(10_000, 1024)
        assert blocks[0] == (0, 1024)
        assert blocks[-1] == (9216, 10_000)
        covered = np.concatenate(
            [np.arange(start, stop) for start, stop in blocks]
        )
        np.testing.assert_array_equal(covered, np.arange(10_000))

    def test_exact_multiple_has_no_stub_block(self):
        assert row_blocks(4096, 1024) == [
            (0, 1024), (1024, 2048), (2048, 3072), (3072, 4096)
        ]

    def test_zero_rows(self):
        assert row_blocks(0) == []

    def test_boundaries_ignore_worker_count(self):
        # The contract: boundaries are a function of (n, block_rows) only.
        assert row_blocks(5000) == row_blocks(5000, DEFAULT_BLOCK_ROWS)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="n_rows"):
            row_blocks(-1)
        with pytest.raises(ValueError, match="block_rows"):
            row_blocks(10, 0)


class TestBudgets:
    def test_explicit_workers_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2
        assert resolve_workers(None) == 8

    def test_unset_env_defaults_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert pool_budget() == 1

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 1

    def test_scatter_budget_shares_the_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert scatter_budget() == 16  # historical scatter-pool width
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert scatter_budget() == 3


class TestMapBlocks:
    def test_serial_results_in_item_order(self):
        data = np.arange(20.0).reshape(4, 5)
        parts = map_blocks(
            _sum_block, row_blocks(4, 2), arrays={"data": data}, workers=1
        )
        np.testing.assert_array_equal(
            np.concatenate(parts), data.sum(axis=1)
        )

    def test_bit_identical_across_worker_counts(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(997, 24))  # prime rows: ragged last block
        blocks = row_blocks(997, 128)
        baseline = np.concatenate(
            map_blocks(_sum_block, blocks, arrays={"data": data}, workers=1)
        )
        for workers in (2, 4):
            got = np.concatenate(
                map_blocks(
                    _sum_block, blocks, arrays={"data": data},
                    workers=workers,
                )
            )
            assert np.array_equal(got, baseline)  # bit-identical, not close

    def test_kwargs_reach_workers(self):
        data = np.ones((6, 3))
        parts = map_blocks(
            _scaled_block, row_blocks(6, 4), arrays={"data": data},
            workers=2, kwargs={"factor": 2.5},
        )
        np.testing.assert_array_equal(np.concatenate(parts), data * 2.5)

    def test_shared_memory_round_trips_dtype_and_shape(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        parts = map_blocks(
            _sum_block, row_blocks(3, 1), arrays={"data": data}, workers=2
        )
        got = np.concatenate(parts)
        assert got.dtype == np.float32
        np.testing.assert_array_equal(got, data.sum(axis=1))

    def test_env_budget_used_when_workers_omitted(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        data = np.arange(8.0).reshape(4, 2)
        parts = map_blocks(
            _sum_block, row_blocks(4, 1), arrays={"data": data}
        )
        np.testing.assert_array_equal(
            np.concatenate(parts), data.sum(axis=1)
        )


class TestFallbacks:
    def _fallbacks(self, reason):
        return obs.get_registry().counter(
            "parallel_fallback_total", reason=reason
        ).value

    def test_single_task_never_forks(self):
        before = self._fallbacks("single_task")
        data = np.ones((2, 2))
        parts = map_blocks(
            _sum_block, [(0, 2)], arrays={"data": data}, workers=4
        )
        assert self._fallbacks("single_task") == before + 1
        np.testing.assert_array_equal(parts[0], [2.0, 2.0])

    def test_nested_call_stays_serial(self, monkeypatch):
        # Simulate being inside a worker: the initializer's global is set.
        monkeypatch.setattr(pool_module, "_WORKER_ARRAYS", {})
        before = self._fallbacks("nested")
        got = map_blocks(_item_squared, [1, 2, 3], workers=4)
        assert got == [1, 4, 9]
        assert self._fallbacks("nested") == before + 1

    def test_no_fork_platform_stays_serial(self, monkeypatch):
        import multiprocessing as mp

        monkeypatch.setattr(mp, "get_all_start_methods", lambda: ["spawn"])
        before = self._fallbacks("no_fork")
        got = map_blocks(_item_squared, [2, 3], workers=4)
        assert got == [4, 9]
        assert self._fallbacks("no_fork") == before + 1

    def test_forked_workers_never_fork_grandchildren(self):
        # _nested_call runs inside pool workers and fans out again; the
        # worker-side latch must route the inner call to the serial loop
        # (a grandchild fork would deadlock or duplicate state).
        got = map_blocks(_nested_call, [(0, 1), (1, 2)], workers=2)
        assert got == [14, 14]


class TestObservability:
    def test_run_and_task_counters(self):
        registry = obs.get_registry()
        runs_before = registry.counter(
            "parallel_pool_runs_total", pool="countme", mode="serial"
        ).value
        tasks_before = registry.counter(
            "parallel_tasks_total", pool="countme", mode="serial"
        ).value
        map_blocks(_item_squared, [1, 2, 3], workers=1, name="countme")
        assert registry.counter(
            "parallel_pool_runs_total", pool="countme", mode="serial"
        ).value == runs_before + 1
        assert registry.counter(
            "parallel_tasks_total", pool="countme", mode="serial"
        ).value == tasks_before + 3

    def test_forked_task_spans_grafted_onto_parent(self):
        from repro.obs import RingBufferSink

        previous = obs.get_tracer()
        sink = RingBufferSink()
        obs.configure(sink=sink)
        try:
            data = np.ones((4, 2))
            map_blocks(
                _sum_block, row_blocks(4, 1), arrays={"data": data},
                workers=2, name="graftme",
            )
        finally:
            obs.configure(tracer=previous)
        roots = [r for r in sink.records() if r.name == "parallel.map"]
        assert roots, "parallel.map span missing"
        rec = roots[-1]
        assert rec.tags["mode"] == "fork"
        children = [c for c in rec.children if c.name == "parallel.task"]
        assert len(children) == 4
        assert sorted(c.tags["index"] for c in children) == [0, 1, 2, 3]
        assert all(c.duration >= 0.0 for c in children)
