"""Durable descent checkpoints: round trip, fingerprint gating, torn files."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.reduction.tsne import DescentCheckpoint
from repro.jobs import load_checkpoint, save_checkpoint


@pytest.fixture()
def checkpoint():
    rng = np.random.default_rng(7)
    return DescentCheckpoint(
        iteration=40,
        y=rng.normal(size=(12, 2)),
        velocity=rng.normal(size=(12, 2)),
        gains=np.ones((12, 2)),
        kl_trace=[2.0, 1.5, 1.2],
    )


FP = '{"params": {"seed": 1}}'


class TestRoundTrip:
    def test_save_load(self, tmp_path, checkpoint):
        path = tmp_path / "job.npz"
        save_checkpoint(path, checkpoint, FP)
        loaded = load_checkpoint(path, FP)
        assert loaded is not None
        assert loaded.iteration == 40
        np.testing.assert_array_equal(loaded.y, checkpoint.y)
        np.testing.assert_array_equal(loaded.velocity, checkpoint.velocity)
        np.testing.assert_array_equal(loaded.gains, checkpoint.gains)
        assert loaded.kl_trace == checkpoint.kl_trace

    def test_save_creates_parents_and_replaces(self, tmp_path, checkpoint):
        path = tmp_path / "nested" / "dir" / "job.npz"
        save_checkpoint(path, checkpoint, FP)
        later = DescentCheckpoint(
            iteration=80,
            y=checkpoint.y * 2,
            velocity=checkpoint.velocity,
            gains=checkpoint.gains,
            kl_trace=checkpoint.kl_trace + [1.0],
        )
        save_checkpoint(path, later, FP)
        loaded = load_checkpoint(path, FP)
        assert loaded.iteration == 80


class TestGating:
    """A checkpoint that cannot be trusted is ignored, never half-used."""

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.npz", FP) is None

    def test_fingerprint_mismatch_is_none(self, tmp_path, checkpoint):
        path = tmp_path / "job.npz"
        save_checkpoint(path, checkpoint, FP)
        assert load_checkpoint(path, '{"params": {"seed": 2}}') is None

    def test_torn_file_is_none(self, tmp_path):
        path = tmp_path / "job.npz"
        path.write_bytes(b"\x00garbage that is not a zip")
        assert load_checkpoint(path, FP) is None

    def test_truncated_npz_is_none(self, tmp_path, checkpoint):
        path = tmp_path / "job.npz"
        save_checkpoint(path, checkpoint, FP)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert load_checkpoint(path, FP) is None

    def test_version_mismatch_is_none(self, tmp_path, checkpoint):
        path = tmp_path / "job.npz"
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            version=np.int64(99),
            iteration=np.int64(checkpoint.iteration),
            y=checkpoint.y,
            velocity=checkpoint.velocity,
            gains=checkpoint.gains,
            kl_trace=np.asarray(checkpoint.kl_trace),
            fingerprint=np.str_(FP),
        )
        path.write_bytes(buf.getvalue())
        assert load_checkpoint(path, FP) is None

    def test_no_staging_residue(self, tmp_path, checkpoint):
        path = tmp_path / "job.npz"
        save_checkpoint(path, checkpoint, FP)
        assert [p.name for p in tmp_path.iterdir()] == ["job.npz"]
