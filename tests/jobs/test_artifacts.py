"""Content-addressable artifact store: determinism, dedup, fault healing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jobs import ArtifactStore, deterministic_npz, load_npz
from repro.jobs.artifacts import ArtifactError
from repro.obs import MetricsRegistry
from repro.resilience import faults
from repro.resilience.retry import RetryExhausted, RetryPolicy


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(3)
    return {
        "coords": rng.normal(size=(20, 2)),
        "ids": np.arange(20, dtype=np.int64),
        "objective": np.float64(1.25),
    }


class TestDeterministicNpz:
    def test_identical_arrays_identical_bytes(self, arrays):
        """The property content addressing rests on: no timestamps, no
        ordering nondeterminism — same arrays, same bytes."""
        assert deterministic_npz(arrays) == deterministic_npz(dict(arrays))

    def test_round_trips_through_numpy(self, arrays):
        out = load_npz(deterministic_npz(arrays))
        assert set(out) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(out[name], arrays[name])

    def test_different_content_different_bytes(self, arrays):
        other = dict(arrays)
        other["coords"] = arrays["coords"] + 1e-12
        assert deterministic_npz(arrays) != deterministic_npz(other)


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put("acme", b"hello artifact", "text/plain")
        assert ref.size == 14
        assert store.get("acme", ref.digest) == b"hello artifact"
        assert store.exists("acme", ref.digest)

    def test_identical_bytes_deduplicate(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = store.put("acme", b"same", "text/plain")
        second = store.put("acme", b"same", "text/plain")
        assert first.digest == second.digest
        assert store.path_of("acme", first.digest).read_bytes() == b"same"

    def test_tenants_are_isolated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put("acme", b"private", "text/plain")
        with pytest.raises(ArtifactError):
            store.get("globex", ref.digest)

    def test_missing_artifact_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="no artifact"):
            store.get("acme", "ab" * 32)

    def test_malformed_digest_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactError, match="malformed"):
            store.path_of("acme", "../../etc/passwd")

    def test_corrupt_bytes_refused_on_read(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ref = store.put("acme", b"good bytes", "text/plain")
        store.path_of("acme", ref.digest).write_bytes(b"tampered")
        with pytest.raises(ArtifactError, match="corrupt"):
            store.get("acme", ref.digest)

    def test_torn_write_healed_by_retry(self, tmp_path):
        """An injected truncation on the write path is detected by the
        digest re-check and healed by the retry layer."""
        store = ArtifactStore(
            tmp_path, retry=RetryPolicy(max_attempts=5, base_delay=0.0)
        )
        plan = faults.FaultPlan.parse(
            "jobs.artifact.bytes=truncate:0.5", seed=3
        )
        with faults.injected(plan, metrics=MetricsRegistry()) as injector:
            for index in range(8):
                data = f"payload {index}".encode()
                ref = store.put("acme", data, "text/plain")
                assert store.get("acme", ref.digest) == data
            assert injector.n_injected > 0

    def test_write_fault_without_retry_surfaces(self, tmp_path):
        store = ArtifactStore(
            tmp_path, retry=RetryPolicy(max_attempts=2, base_delay=0.0)
        )
        plan = faults.FaultPlan.parse("jobs.artifact.write=error:1.0")
        with faults.injected(plan, metrics=MetricsRegistry()):
            with pytest.raises(RetryExhausted):
                store.put("acme", b"doomed", "text/plain")
