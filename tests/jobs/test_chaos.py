"""Chaos: a worker killed mid-t-SNE resumes from its checkpoint and
reproduces the uninterrupted artifact bit for bit.

The ``jobs.worker.crash`` fault site fires inside the checkpoint callback
*after* the checkpoint is durably on disk, so every attempt makes at
least one checkpoint interval of progress — resuming until success is
guaranteed to terminate under any fault rate below 1.  Because artifacts
are serialized deterministically, "bit-identical" is literal: the crashed
run's bytes (and hence its content digest) equal the clean run's.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import faults

EMBED_PARAMS = {"method": "tsne", "n_iter": 60, "seed": 9}
MAX_RESUMES = 25


def _run_clean(service, params):
    job = service.submit("acme", "embed", dict(params))
    done = service.wait("acme", job.job_id, timeout=120)
    assert done.state == "succeeded", done.error
    return service.artifacts.get("acme", done.artifact.digest), done


@pytest.mark.parametrize("tsne_method", ["exact", "bh"])
def test_crash_at_every_checkpoint_resumes_bit_identically(
    make_service, tsne_method
):
    """Deterministic worst case: the worker dies at the first checkpoint
    of every attempt; each resume still advances one interval, and the
    final artifact is byte-equal to an uninterrupted run."""
    service = make_service(checkpoint_every=20)
    params = dict(EMBED_PARAMS, tsne_method=tsne_method)
    baseline, _ = _run_clean(service, params)

    plan = faults.FaultPlan.parse("jobs.worker.crash=error:1.0", seed=1)
    with faults.injected(plan, metrics=MetricsRegistry()):
        crashed = service.submit("acme", "embed", dict(params))
        done = service.wait("acme", crashed.job_id, timeout=60)
        assert done.state == "failed"
        assert "jobs.worker.crash" in done.error
        assert done.checkpoint_iteration == 20
        # Still armed: the resumed attempt crashes at the *next*
        # checkpoint, proving forward progress under sustained faults.
        service.resume("acme", crashed.job_id)
        done = service.wait("acme", crashed.job_id, timeout=60)
        assert done.state == "failed"
        assert done.checkpoint_iteration == 40

    service.resume("acme", crashed.job_id)
    done = service.wait("acme", crashed.job_id, timeout=120)
    assert done.state == "succeeded", done.error
    assert done.attempts == 3
    recovered = service.artifacts.get("acme", done.artifact.digest)
    assert recovered == baseline


def test_seeded_crash_rate_resume_until_success(make_service):
    """Production shape: a seeded sub-1.0 crash rate; resuming until the
    job succeeds converges and stays bit-identical."""
    service = make_service(checkpoint_every=20)
    baseline, _ = _run_clean(service, EMBED_PARAMS)

    plan = faults.FaultPlan.parse("jobs.worker.crash=error:0.6", seed=13)
    with faults.injected(plan, metrics=MetricsRegistry()) as injector:
        job = service.submit("acme", "embed", dict(EMBED_PARAMS))
        done = service.wait("acme", job.job_id, timeout=120)
        for _ in range(MAX_RESUMES):
            if done.state == "succeeded":
                break
            assert done.state == "failed", done.state
            service.resume("acme", job.job_id)
            done = service.wait("acme", job.job_id, timeout=120)
        assert done.state == "succeeded", done.error
        assert injector.n_injected > 0, "the chaos plan never fired"

    recovered = service.artifacts.get("acme", done.artifact.digest)
    assert recovered == baseline


def test_failed_job_survives_cancel_and_still_resumes(make_service):
    """Cancelling an already-failed job is a no-op (terminal state is
    kept), and the job remains resumable afterwards — the checkpoint on
    disk is untouched."""
    service = make_service(checkpoint_every=20)
    baseline, _ = _run_clean(service, EMBED_PARAMS)
    plan = faults.FaultPlan.parse("jobs.worker.crash=error:1.0", seed=2)
    with faults.injected(plan, metrics=MetricsRegistry()):
        job = service.submit("acme", "embed", dict(EMBED_PARAMS))
        done = service.wait("acme", job.job_id, timeout=60)
        assert done.state == "failed"
    assert service.cancel("acme", job.job_id).state == "failed"
    service.resume("acme", job.job_id)
    done = service.wait("acme", job.job_id, timeout=120)
    assert done.state == "succeeded", done.error
    assert service.artifacts.get("acme", done.artifact.digest) == baseline
