"""JobService lifecycle: submit → run → artifact, quotas, priorities,
cancellation, resume semantics."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.jobs import (
    JobQueueFull,
    JobQuotaExceeded,
    load_npz,
)
from repro.jobs.handlers import HANDLERS

EMBED_PARAMS = {"method": "tsne", "n_iter": 60, "seed": 5}


@pytest.fixture()
def gate():
    """Register a 'block' job kind whose handler parks on an event,
    checking the cancel token while it waits; removed at teardown."""
    release = threading.Event()
    started = threading.Event()

    def run_block(job, session, ctx):
        started.set()
        while not release.wait(0.01):
            ctx.token.check("blocked handler")
        return b"unblocked", "text/plain"

    HANDLERS["block"] = run_block
    yield type("Gate", (), {"release": release, "started": started})
    release.set()
    HANDLERS.pop("block", None)


class TestLifecycle:
    def test_embed_job_matches_synchronous_embed(self, make_service, registry):
        service = make_service()
        job = service.submit("acme", "embed", dict(EMBED_PARAMS))
        assert job.state == "queued" or job.state == "running"
        done = service.wait("acme", job.job_id, timeout=120)
        assert done.state == "succeeded", done.error
        assert done.progress == 1.0
        arrays = load_npz(service.artifacts.get("acme", done.artifact.digest))
        sync = registry.session("acme").embed(
            method="tsne", n_iter=60, seed=5
        )
        np.testing.assert_array_equal(arrays["coords"], sync.coords)
        assert float(arrays["objective"]) == sync.objective

    def test_checkpoint_removed_after_success(self, make_service):
        service = make_service()
        job = service.submit("acme", "embed", dict(EMBED_PARAMS))
        done = service.wait("acme", job.job_id, timeout=120)
        assert done.state == "succeeded", done.error
        assert not service.checkpoint_path(done).exists()

    def test_export_job_produces_csv(self, make_service, registry):
        service = make_service()
        job = service.submit("acme", "export", {})
        done = service.wait("acme", job.job_id, timeout=60)
        assert done.state == "succeeded", done.error
        text = service.artifacts.get("acme", done.artifact.digest).decode()
        lines = text.splitlines()
        assert lines[0].startswith("customer_id,h")
        assert len(lines) == 1 + len(registry.session("acme").db)

    def test_render_job_produces_svg(self, make_service):
        service = make_service()
        job = service.submit("acme", "render", {"format": "svg"})
        done = service.wait("acme", job.job_id, timeout=60)
        assert done.state == "succeeded", done.error
        body = service.artifacts.get("acme", done.artifact.digest)
        assert b"<svg" in body[:200]
        assert done.artifact.content_type == "image/svg+xml"

    def test_unknown_kind_rejected(self, make_service):
        service = make_service()
        with pytest.raises(ValueError, match="unknown job kind"):
            service.submit("acme", "mine-bitcoin", {})

    def test_unknown_tenant_rejected(self, make_service):
        service = make_service()
        with pytest.raises(KeyError):
            service.submit("nobody", "export", {})

    def test_bad_params_fail_the_job_not_the_worker(self, make_service):
        service = make_service()
        job = service.submit("acme", "embed", {"method": "astrology"})
        done = service.wait("acme", job.job_id, timeout=60)
        assert done.state == "failed"
        assert "astrology" in done.error
        # The worker survived: the next job still runs.
        ok = service.submit("acme", "export", {})
        assert service.wait("acme", ok.job_id, timeout=60).state == "succeeded"


class TestVisibility:
    def test_get_is_tenant_scoped(self, make_service):
        service = make_service()
        job = service.submit("acme", "export", {})
        with pytest.raises(KeyError):
            service.get("globex", job.job_id)
        service.wait("acme", job.job_id, timeout=60)

    def test_list_newest_first(self, make_service, gate):
        service = make_service()
        first = service.submit("acme", "block", {})
        second = service.submit("acme", "block", {})
        ids = [j.job_id for j in service.list_jobs("acme")]
        assert ids == [second.job_id, first.job_id]
        gate.release.set()


class TestBounds:
    def test_queue_full_sheds(self, make_service, gate):
        service = make_service(max_queue=1)
        service.submit("acme", "block", {})
        gate.started.wait(5.0)
        with pytest.raises(JobQueueFull):
            service.submit("acme", "block", {})
        gate.release.set()

    def test_tenant_job_quota(self, make_service, quota_registry, gate):
        service = make_service(tenants=quota_registry)
        job = service.submit("acme", "block", {})
        gate.started.wait(5.0)
        with pytest.raises(JobQuotaExceeded):
            service.submit("acme", "block", {})
        gate.release.set()
        service.wait("acme", job.job_id, timeout=30)
        # Quota frees up once the job reaches a terminal state.
        again = service.submit("acme", "export", {})
        assert service.wait("acme", again.job_id, timeout=60).state == "succeeded"

    def test_priority_orders_the_queue(self, make_service, gate):
        service = make_service()  # one worker: strict serial execution
        head = service.submit("acme", "block", {})
        gate.started.wait(5.0)
        low = service.submit("acme", "export", {}, priority=0)
        high = service.submit("acme", "export", {"start": 0}, priority=5)
        gate.release.set()
        service.wait("acme", low.job_id, timeout=60)
        service.wait("acme", high.job_id, timeout=60)
        assert high.started_at < low.started_at
        service.wait("acme", head.job_id, timeout=30)


class TestCancellation:
    def test_cancel_queued_job_finalises_immediately(self, make_service, gate):
        service = make_service()
        head = service.submit("acme", "block", {})
        gate.started.wait(5.0)
        queued = service.submit("acme", "export", {})
        cancelled = service.cancel("acme", queued.job_id)
        assert cancelled.state == "cancelled"
        gate.release.set()
        service.wait("acme", head.job_id, timeout=30)

    def test_cancel_running_job_stops_at_cancellation_point(
        self, make_service, gate
    ):
        service = make_service()
        job = service.submit("acme", "block", {})
        gate.started.wait(5.0)
        service.cancel("acme", job.job_id)
        done = service.wait("acme", job.job_id, timeout=30)
        assert done.state == "cancelled"
        assert done.artifact is None

    def test_resume_requires_failed_state(self, make_service):
        service = make_service()
        job = service.submit("acme", "export", {})
        done = service.wait("acme", job.job_id, timeout=60)
        assert done.state == "succeeded"
        with pytest.raises(ValueError, match="only failed jobs"):
            service.resume("acme", job.job_id)


class TestRecords:
    def test_record_shape_is_stable(self, make_service):
        service = make_service()
        job = service.submit("acme", "export", {})
        record = job.to_record(service.clock())
        assert set(record) == {
            "job_id", "tenant", "kind", "params", "priority", "state",
            "progress", "message", "error", "eta_seconds", "attempts",
            "checkpoint_iteration", "artifact", "trace",
        }
        service.wait("acme", job.job_id, timeout=60)

    def test_telemetry_block_counts(self, make_service):
        service = make_service()
        job = service.submit("acme", "export", {})
        service.wait("acme", job.job_id, timeout=60)
        block = service.to_record()
        assert block["total_jobs"] == 1
        assert block["succeeded"] == 1
        assert block["by_kind"]["export"] == 1
        assert set(block["by_kind"]) >= {"embed", "render", "export"}
