"""Shared fixtures for the async-job-service suite."""

from __future__ import annotations

import pytest

from repro.data.generator.simulate import CityConfig, generate_city
from repro.jobs import ArtifactStore, JobService
from repro.obs import MetricsRegistry
from repro.tenancy import TenantQuota, TenantRegistry


@pytest.fixture(scope="module")
def jobs_city():
    return generate_city(CityConfig(n_customers=36, n_days=7, seed=11))


@pytest.fixture()
def registry(jobs_city):
    registry = TenantRegistry(default_tenant="acme")
    registry.create_from_city("acme", jobs_city, shards=1)
    return registry


@pytest.fixture()
def make_service(registry, tmp_path):
    """Factory for a JobService over a tmp artifact root; every service
    built through it is shut down at teardown."""
    services = []

    def build(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("checkpoint_every", 20)
        kwargs.setdefault("metrics", MetricsRegistry())
        tenants = kwargs.pop("tenants", registry)
        service = JobService(
            tenants, ArtifactStore(tmp_path / "store"), **kwargs
        )
        services.append(service)
        return service

    yield build
    for service in services:
        service.shutdown()


@pytest.fixture()
def quota_registry(jobs_city):
    """A registry whose tenant allows at most one active job."""
    registry = TenantRegistry(default_tenant="acme")
    registry.create_from_city(
        "acme", jobs_city, shards=1, quota=TenantQuota(max_active_jobs=1)
    )
    return registry
