"""Alert delivery: sinks, per-sink retry, dead-lettering."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs import JsonLogger, MetricsRegistry
from repro.resilience.retry import RetryPolicy
from repro.stream.alerts import (
    AlertDispatcher,
    LogSink,
    MemorySink,
    WebhookSink,
)

ALERT = {"type": "slo_burn_rate", "slo": "availability", "rule": "fast"}


def _fast_retry(**kwargs):
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("base_delay", 0.0)
    kwargs.setdefault("max_delay", 0.0)
    kwargs.setdefault("sleeper", lambda s: None)
    kwargs.setdefault("metrics", MetricsRegistry())
    return RetryPolicy(**kwargs)


class FlakySink:
    """Fails transiently N times, then delivers."""

    name = "flaky"

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.delivered: list[dict] = []

    def deliver(self, alert: dict) -> None:
        if self.failures > 0:
            self.failures -= 1
            raise OSError("transient webhook hiccup")
        self.delivered.append(alert)


class BrokenSink:
    name = "broken"

    def deliver(self, alert: dict) -> None:
        raise TypeError("sink bug, not transient")


class TestSinks:
    def test_memory_sink_retains_and_caps(self):
        sink = MemorySink(capacity=2)
        for i in range(4):
            sink.deliver({"n": i})
        assert len(sink) == 2
        assert [a["n"] for a in sink.alerts()] == [2, 3]

    def test_log_sink_emits_warning_record(self):
        stream = io.StringIO()
        previous = obs.get_logger()
        obs.configure(logger=JsonLogger(stream=stream))
        try:
            LogSink().deliver(ALERT)
        finally:
            obs.configure(logger=previous)
        (record,) = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert record["event"] == "alert.delivered"
        assert record["level"] == "warning"
        assert record["slo"] == "availability"

    def test_webhook_sink_posts_json(self, monkeypatch):
        captured = {}

        class _Resp:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def fake_urlopen(request, timeout=None):
            captured["url"] = request.full_url
            captured["body"] = json.loads(request.data)
            captured["timeout"] = timeout
            return _Resp()

        import urllib.request

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        WebhookSink("http://alerts.example/hook", timeout=2.0).deliver(ALERT)
        assert captured["url"] == "http://alerts.example/hook"
        assert captured["body"] == ALERT
        assert captured["timeout"] == 2.0


class TestDispatcher:
    def test_delivers_to_every_sink(self):
        a, b = MemorySink(), MemorySink()
        dispatcher = AlertDispatcher(
            sinks=[a, b], retry=_fast_retry(), metrics=MetricsRegistry()
        )
        assert dispatcher.dispatch(ALERT) == 2
        assert a.alerts() == [ALERT]
        assert b.alerts() == [ALERT]

    def test_transient_failure_is_retried_to_success(self):
        flaky = FlakySink(failures=2)
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher(
            sinks=[flaky], retry=_fast_retry(), metrics=registry
        )
        assert dispatcher.dispatch(ALERT) == 1
        assert flaky.delivered == [ALERT]
        assert dispatcher.dead_letters == []
        delivered = {
            c["labels"]["sink"]: c["value"]
            for c in registry.snapshot()["counters"]
            if c["name"] == "alerts_delivered_total"
        }
        assert delivered["flaky"] == 1

    def test_exhausted_retries_dead_letter_without_raising(self):
        always_down = FlakySink(failures=99)
        healthy = MemorySink()
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher(
            sinks=[always_down, healthy],
            retry=_fast_retry(),
            metrics=registry,
        )
        assert dispatcher.dispatch(ALERT) == 1  # healthy sink still reached
        assert healthy.alerts() == [ALERT]
        (letter,) = dispatcher.dead_letters
        assert letter["sink"] == "flaky"
        assert letter["alert"] == ALERT
        dead = {
            c["labels"]["sink"]: c["value"]
            for c in registry.snapshot()["counters"]
            if c["name"] == "alerts_dead_lettered_total"
        }
        assert dead["flaky"] == 1

    def test_non_retryable_sink_bug_counted_not_raised(self):
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher(
            sinks=[BrokenSink()], retry=_fast_retry(), metrics=registry
        )
        assert dispatcher.dispatch(ALERT) == 0
        dead = {
            c["labels"]["sink"]: c["value"]
            for c in registry.snapshot()["counters"]
            if c["name"] == "alerts_dead_lettered_total"
        }
        assert dead["broken"] == 1
        # A sink bug is not transient: nothing lands in the retry queue.
        assert dispatcher.dead_letters == []

    def test_dead_letter_list_bounded(self):
        dispatcher = AlertDispatcher(
            sinks=[FlakySink(failures=10_000)],
            retry=_fast_retry(max_attempts=1),
            metrics=MetricsRegistry(),
            max_dead_letters=3,
        )
        for i in range(6):
            dispatcher.dispatch({"n": i})
        assert len(dispatcher.dead_letters) == 3
        assert [d["alert"]["n"] for d in dispatcher.dead_letters] == [3, 4, 5]

    def test_default_sink_is_log(self):
        dispatcher = AlertDispatcher(metrics=MetricsRegistry())
        assert isinstance(dispatcher.sinks[0], LogSink)
