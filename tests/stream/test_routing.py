"""Shard-aware routing of replay batches (stream → data plane)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator.simulate import CityConfig, generate_city
from repro.db.engine import EnergyDatabase
from repro.db.sharding import ShardedEnergyDatabase, shard_of
from repro.stream import ReplayFeed, ShardRouter, shard_feed


@pytest.fixture()
def city():
    return generate_city(CityConfig(n_customers=20, n_days=4, seed=11))


def _split(city):
    total = city.raw.n_steps
    half = total // 2
    return city.raw.slice_hours(0, half), city.raw.slice_hours(half, total)


class TestShardRouter:
    def test_routes_to_plain_engine(self, city):
        head, rest = _split(city)
        db = EnergyDatabase(city.customers, head)
        feed = ReplayFeed(rest, hours_per_tick=6)
        applied = ShardRouter(db, rest.customer_ids).replay(feed)
        assert applied == feed.n_ticks
        assert db.time_span.end_hour == city.raw.n_steps
        np.testing.assert_array_equal(db.readings.matrix, city.raw.matrix)

    def test_routes_to_sharded_database(self, city):
        head, rest = _split(city)
        db = ShardedEnergyDatabase(city.customers, head, n_shards=3)
        ShardRouter(db, rest.customer_ids).replay(
            ReplayFeed(rest, hours_per_tick=6)
        )
        assert db.time_span.end_hour == city.raw.n_steps
        got = db.readings
        rows = {int(c): i for i, c in enumerate(city.raw.customer_ids)}
        order = [rows[int(c)] for c in got.customer_ids]
        np.testing.assert_array_equal(got.matrix, city.raw.matrix[order, :])

    def test_max_ticks_stops_early(self, city):
        head, rest = _split(city)
        db = EnergyDatabase(city.customers, head)
        applied = ShardRouter(db, rest.customer_ids).replay(
            ReplayFeed(rest, hours_per_tick=1), max_ticks=3
        )
        assert applied == 3
        assert db.time_span.end_hour == head.end_hour + 3


class TestShardFeed:
    def test_covers_exactly_one_shard(self, city):
        n_shards = 3
        seen: set[int] = set()
        for sid in range(n_shards):
            feed = shard_feed(city.raw, sid, n_shards, hours_per_tick=2)
            if feed is None:
                continue
            members = [int(c) for c in feed.series_set.customer_ids]
            assert all(shard_of(cid, n_shards) == sid for cid in members)
            assert not (seen & set(members))
            seen |= set(members)
        assert seen == {int(c) for c in city.raw.customer_ids}

    def test_empty_shard_returns_none(self):
        city = generate_city(CityConfig(n_customers=3, n_days=2, seed=1))
        # 3 customers over 64 shards: most shards must be empty.
        empties = sum(
            shard_feed(city.raw, sid, 64) is None for sid in range(64)
        )
        assert empties == 64 - len(
            {shard_of(int(c), 64) for c in city.raw.customer_ids}
        )
