"""Stream resilience: read-only batches, tick retries, chaos replay."""

import numpy as np
import pytest

from repro import obs
from repro.core.shift.grids import GridSpec
from repro.data.timeseries import SeriesSet
from repro.resilience import faults
from repro.resilience.retry import RetryExhausted, RetryPolicy
from repro.stream.feed import ReplayFeed
from repro.stream.online import run_replay


def _series(n_customers=4, n_hours=25, start=5):
    matrix = np.arange(n_customers * n_hours, dtype=float).reshape(
        n_customers, n_hours
    )
    return SeriesSet(list(range(n_customers)), start, matrix)


def _fast_policy(max_attempts=4) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.0,
        max_delay=0.0,
        sleeper=lambda s: None,
        metrics=obs.MetricsRegistry(),
    )


class TestReadOnlyBatches:
    def test_batch_values_are_read_only(self):
        """Regression: batches used to expose writable views into the
        source matrix, letting one consumer corrupt the replay for all."""
        ss = _series()
        batch = next(iter(ReplayFeed(ss, hours_per_tick=3)))
        with pytest.raises(ValueError, match="read-only"):
            batch.values[0, 0] = -1.0

    def test_source_matrix_unchanged_by_consumer_attempts(self):
        ss = _series()
        original = ss.matrix.copy()
        for batch in ReplayFeed(ss, hours_per_tick=4):
            try:
                batch.values[:] = 0.0
            except ValueError:
                pass
        np.testing.assert_array_equal(ss.matrix, original)

    def test_batches_are_views_not_copies(self):
        """Read-only protection must not cost a copy per tick."""
        ss = _series()
        batch = next(iter(ReplayFeed(ss, hours_per_tick=3)))
        assert batch.values.base is not None
        assert np.shares_memory(batch.values, ss.matrix)


class TestTickRetry:
    def test_iteration_retries_through_transient_faults(self):
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    site="stream.tick", kind="error", rate=1.0, max_faults=3
                ),
            )
        )
        ss = _series()
        feed = ReplayFeed(ss, hours_per_tick=4, retry=_fast_policy())
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            batches = list(feed)
        assert len(batches) == feed.n_ticks
        assert sum(b.values.shape[1] for b in batches) == 25

    def test_retry_none_fails_fast(self):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(site="stream.tick", kind="error", rate=1.0),)
        )
        feed = ReplayFeed(_series(), hours_per_tick=4, retry=None)
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            with pytest.raises(faults.InjectedFault):
                list(feed)

    def test_persistent_fault_exhausts_retries(self):
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec(site="stream.tick", kind="error", rate=1.0),)
        )
        feed = ReplayFeed(_series(), hours_per_tick=4, retry=_fast_policy(3))
        with faults.injected(plan, metrics=obs.MetricsRegistry()):
            with pytest.raises(RetryExhausted):
                list(feed)


class TestChaosReplay:
    def test_replay_completes_under_seeded_fault_plan(self, small_city):
        """The acceptance scenario: >=10% transient faults on the stream
        and kernel sites, and a full replay still completes with zero
        unhandled exceptions and the same updates a clean run produces."""
        spec = GridSpec.covering(small_city.positions(), nx=16, ny=16)

        def replay(retry):
            feed = ReplayFeed(
                small_city.clean, hours_per_tick=2, retry=retry
            )
            return run_replay(
                feed,
                small_city.positions(),
                spec,
                window_hours=4,
                max_ticks=24,
                bandwidth_m=500.0,
                retry=retry,
            )

        with faults.disarmed():  # baseline must not see an env chaos plan
            clean = replay(None)
        plan = faults.FaultPlan.parse(
            "stream.tick=error:0.15,kernel.kde=error:0.1", seed=1234
        )
        with faults.injected(plan, metrics=obs.MetricsRegistry()) as injector:
            chaotic = replay(_fast_policy(6))
            n_injected = injector.n_injected
        assert n_injected > 0, "the plan must actually inject faults"
        assert len(chaotic) == len(clean)
        np.testing.assert_allclose(
            [u.energy for u in chaotic], [u.energy for u in clean]
        )
