"""Tests for the near-real-time replay (clock, feed, online monitor)."""

import numpy as np
import pytest

from repro.core.shift.grids import GridSpec
from repro.data.timeseries import HourWindow, SeriesSet
from repro.stream.clock import SimulatedClock
from repro.stream.feed import ReplayFeed
from repro.stream.online import OnlineShiftMonitor, run_replay


class TestClock:
    def test_ticks_advance(self):
        clock = SimulatedClock(tick_seconds=10.0)
        assert clock.now == 0.0
        clock.tick()
        clock.tick()
        assert clock.now == 20.0
        assert clock.ticks == 2

    def test_advance_partial(self):
        clock = SimulatedClock()
        clock.advance(2.5)
        assert clock.now == 2.5
        assert clock.ticks == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClock(tick_seconds=0)
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestFeed:
    def _series(self, n_customers=4, n_hours=25, start=5):
        matrix = np.arange(n_customers * n_hours, dtype=float).reshape(
            n_customers, n_hours
        )
        return SeriesSet(list(range(n_customers)), start, matrix)

    def test_batches_cover_everything_once(self):
        ss = self._series()
        feed = ReplayFeed(ss, hours_per_tick=4)
        batches = list(feed)
        assert len(batches) == feed.n_ticks == 7  # ceil(25 / 4)
        total = sum(b.values.shape[1] for b in batches)
        assert total == 25
        assert batches[0].start_hour == 5
        assert batches[-1].end_hour == 30
        # Last batch is the 1-hour remainder.
        assert batches[-1].n_hours == 1

    def test_batch_values_match_source(self):
        ss = self._series()
        batch = next(iter(ReplayFeed(ss, hours_per_tick=3)))
        np.testing.assert_array_equal(batch.values, ss.matrix[:, :3])

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayFeed(self._series(), hours_per_tick=0)


class TestMonitor:
    @pytest.fixture()
    def setup(self):
        rng = np.random.default_rng(8)
        positions = rng.uniform([12.5, 55.6], [12.7, 55.8], size=(30, 2))
        spec = GridSpec.covering(positions, nx=24, ny=24)
        return positions, spec

    def test_not_ready_before_two_windows(self, setup):
        positions, spec = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=3)
        for _ in range(5):
            monitor.feed_hour(np.ones(30))
        assert not monitor.ready
        with pytest.raises(RuntimeError, match="needs 6 hours"):
            monitor.current_field()
        monitor.feed_hour(np.ones(30))
        assert monitor.ready

    def test_rolling_field_matches_batch_recompute(self, setup, small_db):
        """The incremental path must agree with computing the two windows
        directly from the data (within float tolerance)."""
        positions, _ = setup
        ids = small_db.customer_ids
        positions = small_db.positions_of(ids)
        spec = GridSpec.covering(positions, nx=24, ny=24)
        w = 4
        monitor = OnlineShiftMonitor(
            positions, spec, window_hours=w, bandwidth_m=400.0
        )
        readings = small_db.readings_for(ids)
        hours_fed = 3 * w
        for col in range(hours_fed):
            monitor.feed_hour(readings.matrix[:, col])
        field = monitor.current_field()

        from repro.core.shift.flow import ShiftField
        from repro.core.shift.kde import kde_density

        def window_mean(a, b):
            sub = np.where(
                np.isfinite(readings.matrix[:, a:b]), readings.matrix[:, a:b], 0.0
            )
            return sub.mean(axis=1)

        t1 = window_mean(hours_fed - 2 * w, hours_fed - w)
        t2 = window_mean(hours_fed - w, hours_fed)
        want = ShiftField.between(
            kde_density(positions, t1, spec, bandwidth_m=400.0),
            kde_density(positions, t2, spec, bandwidth_m=400.0),
        )
        np.testing.assert_allclose(field.values, want.values, atol=1e-12)

    def test_nan_readings_treated_as_zero(self, setup):
        positions, spec = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=1)
        monitor.feed_hour(np.full(30, np.nan))
        monitor.feed_hour(np.ones(30))
        field = monitor.current_field()
        assert np.isfinite(field.values).all()

    def test_wrong_length_rejected(self, setup):
        positions, spec = setup
        monitor = OnlineShiftMonitor(positions, spec)
        with pytest.raises(ValueError, match="readings"):
            monitor.feed_hour(np.ones(7))

    def test_validation(self, setup):
        positions, spec = setup
        with pytest.raises(ValueError):
            OnlineShiftMonitor(positions, spec, window_hours=0)
        with pytest.raises(ValueError):
            OnlineShiftMonitor(positions[:, :1], spec)


class TestRunReplay:
    def test_end_to_end(self, small_city):
        feed = ReplayFeed(small_city.clean, hours_per_tick=2)
        spec = GridSpec.covering(small_city.positions(), nx=20, ny=20)
        clock = SimulatedClock(tick_seconds=10.0)
        updates = run_replay(
            feed,
            small_city.positions(),
            spec,
            window_hours=4,
            clock=clock,
            max_ticks=20,
            bandwidth_m=500.0,
        )
        # Monitor becomes ready after 8 hours = 4 ticks; ticks 3..19 emit.
        assert len(updates) == 17
        assert updates[0].tick == 3
        assert updates[-1].clock_seconds == 200.0
        assert all(np.isfinite(u.energy) for u in updates)
        # The demand pattern changes through the day, so energy must vary.
        energies = [u.energy for u in updates]
        assert max(energies) > 1.5 * min(energies)
