"""Tests for shift alerting and out-of-sample embedding projection."""

import numpy as np
import pytest

from repro.core.reduction.project import EmbeddingProjector
from repro.core.reduction.tsne import tsne
from repro.stream.alerts import ShiftAlertMonitor
from repro.stream.online import ShiftUpdate


def _update(tick: int, energy: float) -> ShiftUpdate:
    return ShiftUpdate(
        tick=tick,
        clock_seconds=tick * 10.0,
        hours_seen=tick,
        energy=energy,
        n_flows=1,
        main_flow=None,
    )


class TestShiftAlerts:
    def test_no_alerts_during_warmup(self, rng):
        monitor = ShiftAlertMonitor(warmup_ticks=10)
        for tick in range(9):
            assert monitor.observe(_update(tick, 1e6)) is None

    def test_spike_alerts_after_warmup(self, rng):
        monitor = ShiftAlertMonitor(threshold_sigma=3.0, warmup_ticks=12)
        baseline = 1.0 + 0.05 * rng.standard_normal(30)
        for tick, energy in enumerate(baseline):
            monitor.observe(_update(tick, float(energy)))
        alert = monitor.observe(_update(99, 3.0))
        assert alert is not None
        assert alert.zscore > 3.0
        assert "sigma" in alert.message

    def test_normal_ticks_do_not_alert(self, rng):
        monitor = ShiftAlertMonitor(threshold_sigma=4.0, warmup_ticks=12)
        updates = [
            _update(t, float(1.0 + 0.05 * rng.standard_normal()))
            for t in range(60)
        ]
        assert monitor.observe_all(updates) == []

    def test_sustained_event_keeps_alerting(self, rng):
        """Anomalies are excluded from the baseline, so a long event fires
        on every tick instead of normalising itself away."""
        monitor = ShiftAlertMonitor(threshold_sigma=3.0, warmup_ticks=12)
        for tick in range(20):
            monitor.observe(_update(tick, float(1.0 + 0.01 * rng.standard_normal())))
        alerts = monitor.observe_all([_update(100 + i, 5.0) for i in range(5)])
        assert len(alerts) == 5

    def test_running_moments(self, rng):
        monitor = ShiftAlertMonitor(warmup_ticks=2, threshold_sigma=50.0)
        data = rng.uniform(1.0, 2.0, 40)
        monitor.observe_all([_update(t, float(v)) for t, v in enumerate(data)])
        assert monitor.mean == pytest.approx(float(data.mean()), rel=1e-9)
        assert monitor.std == pytest.approx(float(data.std(ddof=1)), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiftAlertMonitor(threshold_sigma=0.0)
        with pytest.raises(ValueError):
            ShiftAlertMonitor(warmup_ticks=1)
        monitor = ShiftAlertMonitor()
        with pytest.raises(ValueError, match="finite"):
            monitor.observe(_update(0, float("nan")))


class TestEmbeddingProjector:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(3)
        centers = np.array([[6.0] + [0.0] * 9, [0.0] * 5 + [6.0] + [0.0] * 4])
        feats = np.vstack(
            [rng.normal(c, 0.4, size=(25, 10)) for c in centers]
        )
        labels = np.repeat([0, 1], 25)
        emb = tsne(feats, metric="euclidean", perplexity=12, n_iter=300, seed=0)
        return feats, emb.embedding, labels

    def test_duplicate_lands_on_training_point(self, fitted):
        feats, emb, _ = fitted
        projector = EmbeddingProjector(feats, emb, metric="euclidean")
        out = projector.project(feats[3])
        np.testing.assert_allclose(out[0], emb[3])

    def test_new_points_land_in_their_cluster(self, fitted):
        feats, emb, labels = fitted
        projector = EmbeddingProjector(feats, emb, metric="euclidean")
        rng = np.random.default_rng(9)
        new_a = rng.normal([6.0] + [0.0] * 9, 0.4, size=(5, 10))
        coords = projector.project(new_a)
        centroid_a = emb[labels == 0].mean(axis=0)
        centroid_b = emb[labels == 1].mean(axis=0)
        for point in coords:
            assert np.linalg.norm(point - centroid_a) < np.linalg.norm(
                point - centroid_b
            )

    def test_pearson_metric_projection(self, fitted):
        feats, emb, _ = fitted
        projector = EmbeddingProjector(feats, emb, metric="pearson")
        out = projector.project(feats[:2] * 3.0 + 1.0)  # same trends
        np.testing.assert_allclose(out, emb[:2], atol=1e-6)

    def test_validation(self, fitted):
        feats, emb, _ = fitted
        with pytest.raises(ValueError, match="row-aligned"):
            EmbeddingProjector(feats, emb[:-1])
        with pytest.raises(ValueError, match="k must"):
            EmbeddingProjector(feats, emb, k=0)
        projector = EmbeddingProjector(feats, emb)
        with pytest.raises(ValueError, match="width"):
            projector.project(np.ones(3))
