"""Regressions for the incremental monitor rewrite.

Three distinct bugs are pinned here:

- the per-tick Silverman recompute (``bandwidth_m=None`` used to resolve
  the bandwidth inside every ``current_field()`` call — it must be pinned
  once at construction and stay a stable float);
- silent coercion of non-finite readings to ``0.0`` (now surfaced via
  the ``stream_nonfinite_dropped_total`` counter and
  ``Batch.n_nonfinite``);
- the incremental/exact mode split (unclean hours must force the exact
  fallback, and the mode taken must be observable).
"""

import numpy as np
import pytest

from repro import obs
from repro.core.shift.grids import GridSpec
from repro.data.timeseries import SeriesSet
from repro.stream.feed import Batch, ReplayFeed
from repro.stream.online import OnlineShiftMonitor


@pytest.fixture()
def setup():
    rng = np.random.default_rng(18)
    positions = rng.uniform([12.5, 55.6], [12.7, 55.8], size=(20, 2))
    spec = GridSpec.covering(positions, nx=12, ny=12)
    return positions, spec, rng


@pytest.fixture()
def fresh_registry():
    registry = obs.MetricsRegistry()
    previous = obs.get_registry()
    obs.configure(registry=registry)
    try:
        yield registry
    finally:
        obs.configure(registry=previous)


class TestBandwidthPinnedOnce:
    def test_bandwidth_is_concrete_float_without_explicit_value(self, setup):
        positions, spec, _ = setup
        monitor = OnlineShiftMonitor(positions, spec)
        assert isinstance(monitor.bandwidth_m, float)
        assert monitor.bandwidth_m > 0

    def test_bandwidth_stable_across_ticks(self, setup):
        """The regression: with ``bandwidth_m=None`` the monitor used to
        re-run Silverman's rule inside every ``current_field()``.  The
        pinned value must not move, tick over tick, however the demand
        values evolve."""
        positions, spec, rng = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=3)
        pinned = monitor.bandwidth_m
        seen = set()
        for _ in range(12):
            monitor.feed_hour(rng.gamma(2.0, 10.0, 20))
            if monitor.ready:
                monitor.current_field()
            seen.add(monitor.bandwidth_m)
        assert seen == {pinned}

    def test_pinned_equals_per_call_silverman(self, setup):
        """Pinning is exact, not an approximation: Silverman's rule
        depends only on positions, which never change mid-stream."""
        positions, spec, rng = setup
        auto = OnlineShiftMonitor(positions, spec, window_hours=2)
        explicit = OnlineShiftMonitor(
            positions, spec, window_hours=2, bandwidth_m=auto.bandwidth_m
        )
        for _ in range(4):
            col = rng.gamma(2.0, 10.0, 20)
            auto.feed_hour(col)
            explicit.feed_hour(col)
        np.testing.assert_array_equal(
            auto.current_field().values, explicit.current_field().values
        )


class TestNonFiniteAccounting:
    def test_counter_increments_per_dropped_reading(
        self, setup, fresh_registry
    ):
        positions, spec, _ = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=2)
        col = np.ones(20)
        col[3] = np.nan
        col[7] = np.inf
        monitor.feed_hour(col)
        counter = fresh_registry.counter("stream_nonfinite_dropped_total")
        assert counter.value == 2
        monitor.feed_hour(np.ones(20))
        assert counter.value == 2  # clean hours add nothing

    def test_batch_reports_nonfinite_count(self):
        values = np.ones((4, 3))
        values[1, 2] = np.nan
        values[3, 0] = -np.inf
        batch = Batch(tick=0, start_hour=0, values=values)
        assert batch.n_nonfinite == 2

    def test_replay_feed_batches_carry_the_count(self):
        matrix = np.ones((5, 8))
        matrix[2, 5] = np.nan
        series = SeriesSet(list(range(5)), 0, matrix)
        counts = [b.n_nonfinite for b in ReplayFeed(series, hours_per_tick=4)]
        assert counts == [0, 1]


class TestModeObservability:
    def test_incremental_mode_counted(self, setup, fresh_registry):
        positions, spec, rng = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=2)
        for _ in range(4):
            monitor.feed_hour(rng.gamma(2.0, 10.0, 20))
        monitor.current_field()
        assert fresh_registry.counter(
            "stream_field_total", mode="incremental"
        ).value == 1

    def test_negative_readings_force_exact_mode(self, setup, fresh_registry):
        positions, spec, rng = setup
        monitor = OnlineShiftMonitor(positions, spec, window_hours=2)
        for _ in range(3):
            monitor.feed_hour(rng.gamma(2.0, 10.0, 20))
        negative = rng.gamma(2.0, 10.0, 20)
        negative[0] = -4.0
        monitor.feed_hour(negative)
        got = monitor.current_field()
        assert fresh_registry.counter(
            "stream_field_total", mode="exact"
        ).value == 1
        np.testing.assert_array_equal(
            got.values, monitor.current_field_exact().values
        )
