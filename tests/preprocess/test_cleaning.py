"""Tests for anomaly detection/removal."""

import numpy as np
import pytest

from repro.data.timeseries import SeriesSet
from repro.preprocess.cleaning import (
    detect_negatives,
    detect_spikes,
    detect_stuck,
    remove_anomalies,
)


def _series_set(matrix):
    matrix = np.asarray(matrix, dtype=np.float64)
    return SeriesSet(list(range(matrix.shape[0])), 0, matrix)


class TestSpikes:
    def test_detects_obvious_spike(self, rng):
        row = rng.normal(1.0, 0.1, size=200)
        row[50] = 50.0
        mask = detect_spikes(row[None, :])
        assert mask[0, 50]
        assert mask.sum() == 1

    def test_ignores_normal_variation(self, rng):
        row = rng.normal(1.0, 0.1, size=500)
        assert detect_spikes(row[None, :]).sum() == 0

    def test_constant_row_fallback(self):
        row = np.full(100, 2.0)
        row[10] = 40.0
        mask = detect_spikes(row[None, :])
        assert mask[0, 10]

    def test_nan_cells_never_flagged(self):
        row = np.array([1.0, np.nan, 1.0, 100.0])
        mask = detect_spikes(row[None, :])
        assert not mask[0, 1]

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            detect_spikes(np.zeros((1, 5)), spike_sigma=0)

    def test_empty_matrix(self):
        assert detect_spikes(np.zeros((0, 0))).shape == (0, 0)


class TestNegatives:
    def test_flags_negatives_only(self):
        mask = detect_negatives(np.array([[1.0, -0.1, np.nan, 0.0]]))
        assert mask.tolist() == [[False, True, False, False]]


class TestStuck:
    def test_flags_long_run_keeps_first(self):
        row = np.array([1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0])
        mask = detect_stuck(row[None, :], min_run=6)
        # Six identical 2.0s: first kept, remaining five flagged.
        assert mask[0].tolist() == [
            False, False, True, True, True, True, True, False,
        ]

    def test_short_run_not_flagged(self):
        row = np.array([1.0, 2.0, 2.0, 2.0, 3.0, 4.0])
        assert detect_stuck(row[None, :], min_run=6).sum() == 0

    def test_zero_runs_not_flagged(self):
        row = np.zeros(50)
        assert detect_stuck(row[None, :]).sum() == 0

    def test_run_at_end_of_series(self):
        row = np.concatenate([np.arange(1, 5, dtype=float), np.full(10, 7.0)])
        mask = detect_stuck(row[None, :], min_run=6)
        assert mask[0, -9:].all()
        assert not mask[0, 4]  # first of the run survives

    def test_nan_breaks_runs(self):
        row = np.array([2.0, 2.0, 2.0, np.nan, 2.0, 2.0, 2.0])
        assert detect_stuck(row[None, :], min_run=6).sum() == 0

    def test_rejects_min_run_below_two(self):
        with pytest.raises(ValueError):
            detect_stuck(np.zeros((1, 5)), min_run=1)

    def test_matrix_shorter_than_run(self):
        assert detect_stuck(np.ones((2, 3)), min_run=6).sum() == 0


class TestRemoveAnomalies:
    def test_report_counts_match_nans_added(self, rng):
        base = rng.normal(1.0, 0.1, size=(5, 300)).clip(0.01)
        base[0, 10] = 99.0  # spike
        base[1, 20] = -5.0  # negative
        base[2, 30:40] = 0.7  # stuck run
        ss = _series_set(base)
        cleaned, report = remove_anomalies(ss)
        added_nans = int(np.isnan(cleaned.matrix).sum() - np.isnan(ss.matrix).sum())
        assert report.total == added_nans
        assert report.n_spikes >= 1
        assert report.n_negatives == 1
        assert report.n_stuck == 9

    def test_clean_data_untouched(self, rng):
        base = rng.normal(1.0, 0.2, size=(3, 400)).clip(0.01)
        cleaned, report = remove_anomalies(_series_set(base))
        assert report.total == 0
        np.testing.assert_array_equal(cleaned.matrix, base)

    def test_input_not_mutated(self, rng):
        base = rng.normal(1.0, 0.1, size=(2, 100)).clip(0.01)
        base[0, 5] = 80.0
        ss = _series_set(base)
        remove_anomalies(ss)
        assert ss.matrix[0, 5] == 80.0

    def test_generator_spikes_get_caught(self, small_city):
        _, report = remove_anomalies(small_city.raw)
        assert report.n_spikes > 0
        assert report.n_stuck > 0
