"""Tests for feature extraction and the data-quality report."""

import numpy as np
import pytest

from repro.data.timeseries import SeriesSet
from repro.preprocess.features import FeatureKind, extract_features
from repro.preprocess.quality import assess_quality


def _set(matrix, start_hour=0):
    matrix = np.asarray(matrix, dtype=np.float64)
    return SeriesSet(list(range(matrix.shape[0])), start_hour, matrix)


class TestFeatures:
    def test_mean_day_shape_and_values(self):
        # Value = hour-of-day for 3 days -> mean-day profile is identity.
        matrix = np.tile(np.arange(24, dtype=float), 3)[None, :]
        feats = extract_features(_set(matrix), FeatureKind.MEAN_DAY)
        assert feats.shape == (1, 24)
        np.testing.assert_allclose(feats[0], np.arange(24))

    def test_mean_day_respects_phase(self):
        matrix = np.tile(np.arange(24, dtype=float), 2)[None, :]
        feats = extract_features(_set(matrix, start_hour=6), FeatureKind.MEAN_DAY)
        # Column 6 of the profile corresponds to value 0 readings.
        assert feats[0, 6] == pytest.approx(0.0)

    def test_mean_week_shape(self, small_city):
        feats = extract_features(small_city.clean, FeatureKind.MEAN_WEEK)
        assert feats.shape == (small_city.clean.n_customers, 168)
        assert np.isfinite(feats).all()

    def test_monthly_total_shape(self, year_city):
        feats = extract_features(year_city.clean, FeatureKind.MONTHLY_TOTAL)
        assert feats.shape == (year_city.clean.n_customers, 12)

    def test_summary_is_8dim_finite(self, small_city):
        feats = extract_features(small_city.clean, FeatureKind.SUMMARY)
        assert feats.shape == (small_city.clean.n_customers, 8)
        assert np.isfinite(feats).all()

    def test_full_passthrough_copy(self):
        matrix = np.ones((2, 24))
        ss = _set(matrix)
        feats = extract_features(ss, FeatureKind.FULL)
        feats[0, 0] = 9.0
        assert ss.matrix[0, 0] == 1.0

    def test_nan_tolerant(self):
        matrix = np.tile(np.arange(24, dtype=float), 3)[None, :]
        matrix[0, 5] = np.nan
        feats = extract_features(_set(matrix), FeatureKind.MEAN_DAY)
        assert np.isfinite(feats).all()
        # Hour 5 mean now comes from the 2 remaining days.
        assert feats[0, 5] == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_features(_set(np.ones((1, 0))), FeatureKind.MEAN_DAY)

    def test_bimodal_has_bimodal_months(self, year_city):
        """The year fixture must show the paper's winter+summer humps for
        bimodal customers (sanity that MONTHLY_TOTAL is the right lens)."""
        labels = year_city.archetype_labels()
        feats = extract_features(year_city.clean, FeatureKind.MONTHLY_TOTAL)
        rows = feats[labels == "bimodal"]
        profile = rows.mean(axis=0)
        # Winter peak: January well above the May trough.
        assert profile[0] > 1.5 * profile[4]
        # Summer peak: July a local maximum above both shoulders.
        assert profile[6] > 1.1 * profile[4]
        assert profile[6] > 1.1 * profile[8]


class TestQuality:
    def test_clean_report(self, small_city):
        report = assess_quality(small_city.clean)
        assert report.missing_fraction == 0.0
        assert report.is_clean is False or report.n_suspected_spikes == 0
        assert report.n_negative_readings == 0

    def test_raw_report_counts(self, small_city):
        report = assess_quality(small_city.raw)
        assert 0.0 < report.missing_fraction < 0.5
        assert report.longest_gap_hours >= 2
        assert report.n_suspected_spikes > 0
        assert not report.is_clean

    def test_longest_gap_exact(self):
        matrix = np.ones((2, 20))
        matrix[0, 3:9] = np.nan
        matrix[1, 0:4] = np.nan
        report = assess_quality(_set(matrix))
        assert report.longest_gap_hours == 6

    def test_empty_matrix(self):
        report = assess_quality(_set(np.ones((2, 0))))
        assert report.missing_fraction == 0.0
        assert np.isnan(report.mean_value)

    def test_all_missing(self):
        report = assess_quality(_set(np.full((2, 5), np.nan)))
        assert report.missing_fraction == 1.0
        assert np.isnan(report.max_value)

    def test_record_is_json_friendly(self, small_city):
        record = assess_quality(small_city.raw).to_record()
        assert set(record) >= {
            "missing_fraction",
            "longest_gap_hours",
            "n_suspected_spikes",
        }
