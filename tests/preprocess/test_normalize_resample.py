"""Tests for normalisation and temporal resampling."""

import numpy as np
import pytest

from repro.data.timeseries import Resolution, SeriesSet
from repro.preprocess.normalize import SCHEMES, normalize, normalize_matrix
from repro.preprocess.resample import AGGREGATES, resample


def _set(matrix, start_hour=0):
    matrix = np.asarray(matrix, dtype=np.float64)
    return SeriesSet(list(range(matrix.shape[0])), start_hour, matrix)


class TestNormalize:
    def test_zscore_moments(self, rng):
        matrix = rng.normal(5.0, 2.0, size=(6, 100))
        out = normalize_matrix(matrix, "zscore")
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-12)

    def test_minmax_range(self, rng):
        out = normalize_matrix(rng.normal(size=(4, 50)), "minmax")
        np.testing.assert_allclose(out.min(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=1), 1.0, atol=1e-12)

    def test_sum_normalisation(self, rng):
        out = normalize_matrix(rng.uniform(1, 2, size=(3, 40)), "sum")
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_constant_rows_become_zero(self):
        matrix = np.full((2, 10), 3.0)
        assert (normalize_matrix(matrix, "zscore") == 0).all()
        assert (normalize_matrix(matrix, "minmax") == 0).all()

    def test_none_is_identity_copy(self, rng):
        matrix = rng.normal(size=(2, 5))
        out = normalize_matrix(matrix, "none")
        np.testing.assert_array_equal(out, matrix)
        assert out is not matrix

    def test_nan_preserved_in_place(self):
        matrix = np.array([[1.0, np.nan, 3.0]])
        out = normalize_matrix(matrix, "zscore")
        assert np.isnan(out[0, 1])
        assert np.isfinite(out[0, [0, 2]]).all()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            normalize_matrix(np.ones((1, 2)), "weird")

    def test_all_schemes_listed_work(self, rng):
        matrix = rng.uniform(1, 2, size=(2, 8))
        for scheme in SCHEMES:
            normalize_matrix(matrix, scheme)

    def test_series_set_wrapper(self, rng):
        ss = _set(rng.normal(size=(2, 10)))
        out = normalize(ss, "zscore")
        assert out.start_hour == ss.start_hour
        assert out.customer_ids.tolist() == ss.customer_ids.tolist()


class TestResample:
    def test_daily_sum(self):
        matrix = np.ones((2, 48))
        out = resample(_set(matrix), Resolution.DAILY, "sum")
        assert out.matrix.shape == (2, 2)
        np.testing.assert_allclose(out.matrix, 24.0)

    def test_sum_preserved_exactly(self, rng):
        matrix = rng.uniform(0, 3, size=(3, 24 * 10))
        ss = _set(matrix)
        for resolution in (
            Resolution.FOUR_HOURLY,
            Resolution.DAILY,
            Resolution.WEEKLY,
        ):
            out = resample(ss, resolution, "sum")
            np.testing.assert_allclose(
                out.matrix.sum(axis=1), matrix.sum(axis=1)
            )

    def test_mean_aggregate(self):
        matrix = np.arange(24, dtype=float)[None, :]
        out = resample(_set(matrix), Resolution.FOUR_HOURLY, "mean")
        np.testing.assert_allclose(out.matrix[0, 0], np.arange(4).mean())

    def test_max_aggregate(self):
        matrix = np.arange(24, dtype=float)[None, :]
        out = resample(_set(matrix), Resolution.DAILY, "max")
        assert out.matrix[0, 0] == 23.0

    def test_nan_only_bucket_is_nan(self):
        matrix = np.ones((1, 48))
        matrix[0, :24] = np.nan
        out = resample(_set(matrix), Resolution.DAILY, "sum")
        assert np.isnan(out.matrix[0, 0])
        assert out.matrix[0, 1] == 24.0

    def test_partial_nan_bucket_sums_observed(self):
        matrix = np.ones((1, 24))
        matrix[0, :12] = np.nan
        out = resample(_set(matrix), Resolution.DAILY, "sum")
        assert out.matrix[0, 0] == 12.0

    def test_buckets_align_to_epoch_not_series_start(self):
        # Starting mid-day: the first daily bucket is the partial day.
        matrix = np.ones((1, 36))
        out = resample(_set(matrix, start_hour=12), Resolution.DAILY, "sum")
        assert out.n_buckets == 2
        assert out.matrix[0].tolist() == [12.0, 24.0]

    def test_window_pairs_are_consecutive(self):
        out = resample(_set(np.ones((1, 72))), Resolution.DAILY)
        pairs = out.window_pairs()
        assert len(pairs) == 2
        t1, t2 = pairs[0]
        assert t1.end_hour == t2.start_hour

    def test_window_out_of_range(self):
        out = resample(_set(np.ones((1, 24))), Resolution.DAILY)
        with pytest.raises(IndexError):
            out.window(5)

    def test_monthly_calendar_boundaries(self):
        # 60 days from Jan 1 2018: Jan (31 d), Feb (28 d), 1 day of March.
        matrix = np.ones((1, 60 * 24))
        out = resample(_set(matrix), Resolution.MONTHLY, "sum")
        assert out.n_buckets == 3
        assert out.matrix[0].tolist() == [31 * 24, 28 * 24, 24]

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="aggregate"):
            resample(_set(np.ones((1, 24))), Resolution.DAILY, "median")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            resample(_set(np.ones((1, 0))), Resolution.DAILY)

    def test_all_aggregates_listed_work(self):
        ss = _set(np.ones((1, 48)))
        for aggregate in AGGREGATES:
            resample(ss, Resolution.DAILY, aggregate)
