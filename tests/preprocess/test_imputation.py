"""Tests for missing-value correction."""

import numpy as np
import pytest

from repro.data.timeseries import SeriesSet
from repro.preprocess.imputation import STRATEGIES, impute


def _set(matrix, start_hour=0):
    matrix = np.asarray(matrix, dtype=np.float64)
    return SeriesSet(list(range(matrix.shape[0])), start_hour, matrix)


class TestImputeContract:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_no_nan_out(self, strategy, rng):
        matrix = rng.normal(1.0, 0.3, size=(4, 200))
        matrix[rng.random(matrix.shape) < 0.2] = np.nan
        filled = impute(_set(matrix), strategy=strategy)
        assert not np.isnan(filled.matrix).any()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_observed_cells_unchanged(self, strategy, rng):
        matrix = rng.normal(1.0, 0.3, size=(3, 120))
        holes = rng.random(matrix.shape) < 0.15
        matrix[holes] = np.nan
        filled = impute(_set(matrix), strategy=strategy)
        np.testing.assert_array_equal(filled.matrix[~holes], matrix[~holes])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            impute(_set(np.ones((1, 3))), strategy="magic")

    def test_bad_max_gap_rejected(self):
        with pytest.raises(ValueError, match="max_gap"):
            impute(_set(np.ones((1, 3))), max_gap=0)

    def test_all_missing_customer_becomes_zero(self):
        filled = impute(_set(np.full((1, 48), np.nan)))
        assert (filled.matrix == 0.0).all()

    def test_input_not_mutated(self):
        ss = _set(np.array([[1.0, np.nan, 3.0]]))
        impute(ss)
        assert np.isnan(ss.matrix[0, 1])


class TestInterpolate:
    def test_linear_midpoint(self):
        filled = impute(_set(np.array([[0.0, np.nan, 2.0]])), strategy="interpolate")
        assert filled.matrix[0, 1] == pytest.approx(1.0)

    def test_edges_extend(self):
        filled = impute(
            _set(np.array([[np.nan, 5.0, np.nan]])), strategy="interpolate"
        )
        assert filled.matrix[0].tolist() == [5.0, 5.0, 5.0]


class TestDiurnal:
    def test_fills_with_hour_of_day_mean(self):
        # Two full days; hour 3 of day 2 missing; hour-3 mean is from day 1.
        values = np.arange(48, dtype=float)
        values[27] = np.nan  # hour-of-day 3 on day 2
        filled = impute(_set(values[None, :]), strategy="diurnal")
        assert filled.matrix[0, 27] == pytest.approx(3.0)

    def test_respects_start_hour_phase(self):
        # start_hour=12 means column 0 is 12:00.
        values = np.tile(np.arange(24, dtype=float), 2)
        values[24] = np.nan  # also 12:00
        filled = impute(_set(values[None, :], start_hour=12), strategy="diurnal")
        assert filled.matrix[0, 24] == pytest.approx(0.0)


class TestHybrid:
    def test_short_gap_interpolates_long_gap_uses_profile(self):
        """A short gap inside a ramp interpolates; a 20 h gap uses the
        customer's diurnal profile, not a straight line."""
        days = 6
        base = np.tile(
            10.0 + 5.0 * np.sin(2 * np.pi * np.arange(24) / 24), days
        )
        values = base.copy()
        values[30:32] = np.nan  # short gap -> interpolation
        values[60:80] = np.nan  # long gap -> diurnal profile
        filled = impute(_set(values[None, :]), strategy="hybrid", max_gap=6)
        # Short gap: close to the linear bridge of its neighbours.
        bridge = np.interp([30, 31], [29, 32], [base[29], base[32]])
        np.testing.assert_allclose(filled.matrix[0, 30:32], bridge, rtol=1e-6)
        # Long gap: should track the sinusoid (profile), which a straight
        # line cannot do — check correlation with the truth is high.
        truth = base[60:80]
        got = filled.matrix[0, 60:80]
        corr = np.corrcoef(truth, got)[0, 1]
        assert corr > 0.95

    def test_city_scale(self, small_city):
        filled = impute(small_city.raw, strategy="hybrid")
        assert filled.missing_fraction() == 0.0
        # Imputed totals should stay within a few percent of the truth.
        truth_total = small_city.clean.matrix.sum()
        assert filled.matrix.sum() == pytest.approx(truth_total, rel=0.10)
