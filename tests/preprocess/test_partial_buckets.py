"""Regression: partial trailing buckets at coarse-resolution boundaries.

An observation window that does not end exactly on a weekly (or monthly,
...) boundary used to produce a silently short final bucket whose "sum"
covered a fraction of the nominal span — skewing every sweep that
compared it against full buckets.  ``resample`` now flags, raises on, or
trims such buckets; these tests pin the behaviour at the hourly→weekly
boundary the bug was observed at.
"""

import numpy as np
import pytest

from repro.data.timeseries import Resolution, SeriesSet
from repro.preprocess.resample import bucket_partials, resample


def _series(n_hours, start=0, n_customers=3, seed=1):
    rng = np.random.default_rng(seed)
    matrix = rng.gamma(2.0, 1.0, size=(n_customers, n_hours))
    return SeriesSet(list(range(n_customers)), start, matrix)


class TestFlagMode:
    def test_trailing_partial_week_is_flagged(self):
        # 10 days: one complete week + a 3-day tail bucket.
        series = _series(10 * 24)
        out = resample(series, Resolution.WEEKLY)
        assert out.n_buckets == 2
        assert list(out.partial_buckets) == [1]
        assert not out.is_partial(0)
        assert out.is_partial(1)

    def test_leading_partial_week_is_flagged(self):
        # Start 2 days into a week: short leading bucket, full second week
        # (hours 48..336 — the second bucket covers exactly 168..336).
        series = _series(12 * 24, start=2 * 24)
        out = resample(series, Resolution.WEEKLY)
        assert out.is_partial(0)
        assert not out.is_partial(1)

    def test_exact_boundary_has_no_partials(self):
        series = _series(14 * 24)
        out = resample(series, Resolution.WEEKLY)
        assert out.n_buckets == 2
        assert len(out.partial_buckets) == 0

    def test_hourly_never_partial(self):
        # Hourly buckets *are* the native grid; no bucket can be short.
        series = _series(30)
        out = resample(series, Resolution.HOURLY)
        assert len(out.partial_buckets) == 0


class TestRaiseMode:
    def test_partial_tail_raises_with_span_details(self):
        series = _series(10 * 24)
        with pytest.raises(ValueError, match="covers 72h of 168h"):
            resample(series, Resolution.WEEKLY, on_partial="raise")

    def test_complete_coverage_passes(self):
        series = _series(7 * 24)
        out = resample(series, Resolution.WEEKLY, on_partial="raise")
        assert out.n_buckets == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="on_partial"):
            resample(_series(24), Resolution.DAILY, on_partial="explode")


class TestTrimMode:
    def test_trim_drops_short_edges_only(self):
        series = _series(10 * 24)
        flagged = resample(series, Resolution.WEEKLY)
        trimmed = resample(series, Resolution.WEEKLY, on_partial="trim")
        assert trimmed.n_buckets == 1
        assert len(trimmed.partial_buckets) == 0
        np.testing.assert_allclose(
            trimmed.matrix[:, 0], flagged.matrix[:, 0]
        )

    def test_trimmed_edges_stay_consistent(self):
        # Hours 72..528: partial head (72..168), two full weeks, partial
        # tail (504..528).
        series = _series(19 * 24, start=3 * 24)
        trimmed = resample(series, Resolution.WEEKLY, on_partial="trim")
        assert trimmed.n_buckets == 2
        widths = np.diff(trimmed.bucket_edges)
        assert (widths == 168).all()


class TestBucketPartialsPrimitive:
    """The shared primitive the rollup layer builds its tables from."""

    def test_partial_mask_marks_short_span(self):
        series = _series(10 * 24)
        partials = bucket_partials(series, Resolution.WEEKLY)
        np.testing.assert_array_equal(
            partials.partial_mask(), [False, True]
        )

    def test_sums_and_counts_are_nan_aware(self):
        series = _series(48)
        series.matrix[1, 5] = np.nan
        partials = bucket_partials(series, Resolution.DAILY)
        assert partials.counts[1, 0] == 23
        assert partials.counts[0, 0] == 24
        np.testing.assert_allclose(
            partials.sums[0, 0], series.matrix[0, :24].sum()
        )
