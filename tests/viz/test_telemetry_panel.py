"""Tests for the self-monitoring telemetry SVG panel."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.telemetry import render_sparkline, render_telemetry_panel


def _window(t, count, p50=None, p99=None, mean=None, vmax=None):
    return {
        "t": t, "count": count, "rate": count / 10.0,
        "mean": mean, "max": vmax, "p50": p50, "p99": p99,
    }


def _synthetic_telemetry():
    overall_windows = [
        _window(0.0, 3, p50=0.01, p99=0.05, mean=0.02, vmax=0.05),
        _window(10.0, 0),
        _window(20.0, 5, p50=0.02, p99=0.2, mean=0.05, vmax=0.2),
    ]
    return {
        "uptime_seconds": 123.4,
        "version": "0.3.0",
        "ready": True,
        "window_seconds": 10.0,
        "requests": {
            "overall": {
                "name": "http_request", "labels": {},
                "window_seconds": 10.0, "windows": overall_windows,
            },
            "by_route": [
                {
                    "name": "http_request",
                    "labels": {"route": route},
                    "window_seconds": 10.0,
                    "windows": overall_windows,
                }
                for route in ("/api/health", "/api/density", "<unmatched>")
            ],
        },
        "errors": [],
        "cache": {"embed": {"hit": 3, "miss": 1, "ratio": 0.75}},
        "ops": [
            {"op": "embed", "count": 4, "mean_seconds": 1.2,
             "p50": 1.0, "p99": 2.0},
            {"op": "kde", "count": 10, "mean_seconds": 0.02,
             "p50": 0.01, "p99": 0.05},
        ],
        "slow_ops": [
            {"name": "pipeline.embed", "duration_ms": 1234.5,
             "request_id": "abcd1234abcd1234", "tags": {"method": "tsne"}},
            {"name": "http.request", "duration_ms": 87.0,
             "request_id": None},
        ],
    }


class TestRenderSparkline:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="size"):
            render_sparkline([1.0, 2.0], 0, 0, 0, 10)

    def test_renders_line_and_fill(self):
        element = render_sparkline([0.0, 1.0, 0.5], 0, 0, 100, 20)
        rendered = element.render()
        ET.fromstring(rendered)
        assert rendered.count("<path") == 2  # area fill + line

    def test_none_values_break_the_line_into_runs(self):
        element = render_sparkline(
            [1.0, 2.0, None, 3.0, 4.0], 0, 0, 100, 20, fill=False
        )
        assert element.render().count("<path") == 2  # two runs

    def test_all_none_renders_empty_group(self):
        element = render_sparkline([None, None], 0, 0, 100, 20)
        assert "<path" not in element.render()


class TestRenderTelemetryPanel:
    def test_synthetic_telemetry_renders_well_formed_svg(self):
        doc = render_telemetry_panel(_synthetic_telemetry())
        rendered = doc.render()
        root = ET.fromstring(rendered)
        assert root.tag.endswith("svg")
        text = rendered
        assert "VAP telemetry" in text
        assert "v0.3.0" in text
        assert "ready" in text
        # the slow-op rows carry request IDs
        assert "abcd1234" in text
        # route heatmap labels appear (possibly truncated)
        assert "/api/health" in text

    def test_empty_telemetry_renders_empty_panels(self):
        doc = render_telemetry_panel({})
        rendered = doc.render()
        ET.fromstring(rendered)
        for note in (
            "no data yet",
            "no cached ops yet",
            "no pipeline ops yet",
            "no per-route traffic yet",
            "no slow ops recorded",
        ):
            assert note in rendered
        assert "not ready" in rendered

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            render_telemetry_panel(_synthetic_telemetry(), width=0)

    def test_custom_size_is_respected(self):
        doc = render_telemetry_panel(_synthetic_telemetry(), 400, 300)
        root = ET.fromstring(doc.render())
        assert root.get("width") == "400"
        assert root.get("height") == "300"
