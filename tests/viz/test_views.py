"""Tests for the rendered views (scatter, time series, map layers,
dashboard)."""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.shift.flow import FlowArrow
from repro.core.shift.grids import DensityGrid, GridSpec
from repro.data.timeseries import HourWindow
from repro.db.spatial import BBox
from repro.viz.basemap import (
    MapProjection,
    base_document,
    render_marker_layer,
    render_zone_layer,
)
from repro.viz.dashboard import render_dashboard, render_map_view
from repro.viz.flowmap import render_flow_layer
from repro.viz.heatmap import render_heat_layer, render_shift_layer
from repro.viz.legend import categorical_legend, colorbar
from repro.viz.scatter import render_scatter
from repro.viz.timeseries_chart import render_timeseries


def _well_formed(element) -> ET.Element:
    return ET.fromstring(element.render())


def _tags(tree: ET.Element, name: str) -> list:
    """Find descendants by local tag name, namespaced or not."""
    return [e for e in tree.iter() if e.tag.split("}")[-1] == name]


class TestScatter:
    def test_renders_all_points(self, rng):
        emb = rng.normal(size=(50, 2))
        doc = render_scatter(emb)
        tree = _well_formed(doc)
        circles = _tags(tree, "circle")
        assert len(circles) == 50

    def test_labels_add_legend(self, rng):
        emb = rng.normal(size=(20, 2))
        labels = np.array(["a", "b"] * 10)
        rendered = render_scatter(emb, labels=labels).render()
        assert "legend" in rendered

    def test_highlight_marks_points(self, rng):
        emb = rng.normal(size=(10, 2))
        doc = render_scatter(emb, highlight=np.array([0, 1]))
        strokes = doc.render().count('stroke="#000000"')
        assert strokes == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_scatter(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            render_scatter(np.zeros((5, 2)), labels=np.array(["a"]))

    def test_empty_embedding_ok(self):
        _well_formed(render_scatter(np.empty((0, 2))))


class TestTimeseries:
    def test_renders_aggregate_path(self):
        hours = np.arange(48)
        doc = render_timeseries(hours, np.sin(hours / 5.0))
        tree = _well_formed(doc)
        paths = _tags(tree, "path")
        assert len(paths) >= 1

    def test_nan_gaps_split_paths(self):
        hours = np.arange(30)
        values = np.sin(hours / 3.0)
        values[10:15] = np.nan
        doc = render_timeseries(hours, values)
        tree = _well_formed(doc)
        paths = _tags(tree, "path")
        assert len(paths) == 2

    def test_members_capped(self, rng):
        hours = np.arange(24)
        members = rng.normal(size=(100, 24))
        doc = render_timeseries(hours, members.mean(axis=0), members, max_members=10)
        tree = _well_formed(doc)
        paths = _tags(tree, "path")
        assert len(paths) <= 12  # 10 members + aggregate (maybe split)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_timeseries(np.arange(5), np.arange(4))
        with pytest.raises(ValueError):
            render_timeseries(np.arange(5), np.arange(5.0), members=np.ones((2, 4)))

    def test_empty_series(self):
        _well_formed(render_timeseries(np.empty(0), np.empty(0)))


@pytest.fixture()
def projection():
    return MapProjection(BBox(12.5, 55.6, 12.7, 55.8), 400, 400)


class TestMapLayers:
    def test_projection_orientation(self, projection):
        x_west, y_south = projection.to_pixel(12.5, 55.6)
        x_east, y_north = projection.to_pixel(12.7, 55.8)
        assert x_west < x_east
        assert y_north < y_south  # north is up in pixels

    def test_zone_layer(self, projection, small_city):
        layer = render_zone_layer(small_city.layout, projection)
        tree = _well_formed(layer)
        texts = _tags(tree, "text")
        assert len(texts) == len(small_city.layout.zones)

    def test_marker_layer(self, projection, rng):
        pts = np.column_stack(
            [rng.uniform(12.5, 12.7, 30), rng.uniform(55.6, 55.8, 30)]
        )
        layer = render_marker_layer(pts, projection)
        tree = _well_formed(layer)
        assert len(_tags(tree, "circle")) == 30

    def test_heat_layer_thresholds(self, projection):
        spec = GridSpec(BBox(12.5, 55.6, 12.7, 55.8), nx=8, ny=8)
        values = np.zeros((8, 8))
        values[4, 4] = 1.0
        grid = DensityGrid(spec=spec, values=values)
        layer = render_heat_layer(grid, projection, threshold=0.5)
        tree = _well_formed(layer)
        rects = _tags(tree, "rect")
        assert len(rects) == 1

    def test_heat_layer_empty_grid(self, projection):
        spec = GridSpec(BBox(12.5, 55.6, 12.7, 55.8), nx=4, ny=4)
        grid = DensityGrid(spec=spec, values=np.zeros((4, 4)))
        layer = render_heat_layer(grid, projection)
        assert len(_well_formed(layer)) == 0

    def test_shift_layer_diverging(self, projection):
        from repro.core.shift.flow import ShiftField

        spec = GridSpec(BBox(12.5, 55.6, 12.7, 55.8), nx=4, ny=4)
        values = np.zeros((4, 4))
        values[0, 0] = 1.0
        values[3, 3] = -1.0
        layer = render_shift_layer(
            ShiftField(spec=spec, values=values), projection, threshold=0.5
        )
        rendered = layer.render()
        assert rendered.count("<rect") == 2

    def test_flow_layer_colors_by_magnitude(self, projection):
        arrows = [
            FlowArrow(12.55, 55.65, 0.05, 0.05, 1.0),
            FlowArrow(12.60, 55.70, 0.05, 0.0, 10.0),
        ]
        layer = render_flow_layer(arrows, projection)
        tree = _well_formed(layer)
        paths = _tags(tree, "path")
        assert len(paths) == 2
        fills = {p.get("fill") for p in paths}
        assert len(fills) == 2  # different colour depth

    def test_flow_layer_empty(self, projection):
        assert len(_well_formed(render_flow_layer([], projection))) == 0

    def test_opacity_validation(self, projection):
        with pytest.raises(ValueError):
            render_flow_layer([], projection, opacity=1.5)


class TestLegend:
    def test_categorical_legend(self):
        tree = _well_formed(categorical_legend(["a", "b", "c"], 0, 0))
        assert len(_tags(tree, "rect")) == 3
        with pytest.raises(ValueError):
            categorical_legend([], 0, 0)

    def test_colorbar(self):
        tree = _well_formed(colorbar("heat", 0.0, 5.0, 0, 0, title="demand"))
        rects = _tags(tree, "rect")
        assert len(rects) == 24
        with pytest.raises(ValueError):
            colorbar("heat", 0, 1, 0, 0, n_segments=1)


class TestDashboard:
    def test_full_page_well_formed(self, small_session, small_city):
        html_text = render_dashboard(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            labels=small_city.archetype_labels(),
            layout=small_city.layout,
        )
        svgs = re.findall(r"<svg.*?</svg>", html_text, re.S)
        assert len(svgs) == 3
        for svg in svgs:
            ET.fromstring(svg)
        assert html_text.startswith("<!DOCTYPE html>")

    def test_selection_drives_view_b(self, small_session):
        selection = np.arange(5)
        html_text = render_dashboard(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            selection=selection,
        )
        assert "5 customers" in html_text

    def test_map_view_standalone(self, small_session, small_city):
        doc = render_map_view(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            layout=small_city.layout,
        )
        _well_formed(doc)


class TestMapViewVariants:
    def test_shift_layer_variant(self, small_session, small_city):
        """render_map_view with show_heat=False draws the diverging shift
        layer and its colour bar instead of the density heat map."""
        doc = render_map_view(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            layout=small_city.layout,
            show_heat=False,
        )
        rendered = doc.render()
        assert "density shift" in rendered
        assert "demand density" not in rendered
        ET.fromstring(rendered)

    def test_markers_optional(self, small_session):
        with_markers = render_map_view(
            small_session, HourWindow(61, 63), HourWindow(67, 69)
        ).render()
        without = render_map_view(
            small_session,
            HourWindow(61, 63),
            HourWindow(67, 69),
            show_markers=False,
        ).render()
        assert with_markers.count("<circle") > without.count("<circle")
