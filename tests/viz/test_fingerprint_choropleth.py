"""Tests for the fingerprint heat map and zone choropleth."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.data.timeseries import TimeSeries
from repro.db.spatial import BBox
from repro.viz.basemap import MapProjection
from repro.viz.choropleth import render_choropleth, zone_demand
from repro.viz.fingerprint import render_fingerprint


def _tags(tree: ET.Element, name: str) -> list:
    return [e for e in tree.iter() if e.tag.split("}")[-1] == name]


class TestFingerprint:
    def test_renders_one_cell_per_hour(self):
        series = TimeSeries(0, np.arange(48.0))
        doc = render_fingerprint(series)
        tree = ET.fromstring(doc.render())
        rects = _tags(tree, "rect")
        # 48 cells + background + 24 colourbar segments.
        assert len([r for r in rects]) >= 48

    def test_midnight_alignment(self):
        """A series starting at 07:00 pads the first column's top 7 cells."""
        series = TimeSeries(7, np.ones(24))
        doc = render_fingerprint(series)
        rendered = doc.render()
        # 7 lead padding cells + 17 tail cells complete the 2-day grid.
        assert rendered.count('fill="#dddddd"') == 24

    def test_nan_cells_grey(self):
        values = np.ones(24)
        values[3] = np.nan
        doc = render_fingerprint(TimeSeries(0, values))
        assert 'fill="#dddddd"' in doc.render()

    def test_quantile_cap_saturates_spikes(self):
        values = np.ones(48)
        values[10] = 1000.0
        doc = render_fingerprint(TimeSeries(0, values), quantile_cap=0.9)
        rendered = doc.render()
        # Ordinary cells must not be painted at the bottom of the scale.
        from repro.viz.color import colormap

        assert rendered.count(f'fill="{colormap("heat", 1.0)}"') >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            render_fingerprint(TimeSeries(0, np.empty(0)))
        with pytest.raises(ValueError):
            render_fingerprint(TimeSeries(0, np.ones(24)), quantile_cap=0.0)

    def test_well_formed_on_city_data(self, small_city):
        cid = int(small_city.raw.customer_ids[0])
        series = small_city.raw.series(cid)
        ET.fromstring(render_fingerprint(series).render())


class TestChoropleth:
    @pytest.fixture()
    def projection(self, small_city):
        min_lon, min_lat, max_lon, max_lat = small_city.layout.bounding_box()
        return MapProjection(BBox(min_lon, min_lat, max_lon, max_lat), 400, 400)

    def test_zone_demand_aggregation(self, small_city):
        positions = small_city.positions()
        values = np.ones(positions.shape[0])
        per_zone = zone_demand(small_city.layout, positions, values)
        for value in per_zone.values():
            assert value == pytest.approx(1.0)

    def test_zone_demand_validation(self, small_city):
        with pytest.raises(ValueError):
            zone_demand(small_city.layout, np.ones((3, 2)), np.ones(2))

    def test_renders_all_zones(self, small_city, projection):
        per_zone = {z.name: float(i) for i, z in enumerate(small_city.layout.zones)}
        layer = render_choropleth(small_city.layout, per_zone, projection)
        tree = ET.fromstring(layer.render())
        assert len(_tags(tree, "path")) == len(small_city.layout.zones)

    def test_missing_zone_is_grey(self, small_city, projection):
        layer = render_choropleth(small_city.layout, {}, projection)
        assert layer.render().count('fill="#e0e0e0"') == len(
            small_city.layout.zones
        )

    def test_validation(self, small_city, projection):
        with pytest.raises(ValueError):
            render_choropleth(small_city.layout, {}, projection, opacity=2.0)
        with pytest.raises(ValueError, match="NaN"):
            render_choropleth(
                small_city.layout, {"City Core": float("nan")}, projection
            )
