"""Flamegraph SVG rendering: well-formedness, layout and tooltips."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.viz.flamegraph import render_flamegraph

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def _rects(root: ET.Element) -> list[ET.Element]:
    return [
        el for el in root.iter(f"{SVG_NS}rect")
        if el.get("class") != "background"
    ]


class TestRenderFlamegraph:
    COUNTS = {
        "main.run;pipeline.embed;kernels.tsne": 60,
        "main.run;pipeline.embed;kernels.kde": 30,
        "main.run;db.query": 10,
    }

    def test_output_is_well_formed_svg(self):
        root = _parse(render_flamegraph(self.COUNTS))
        assert root.tag == f"{SVG_NS}svg"

    def test_every_frame_becomes_a_rect_with_tooltip(self):
        svg = render_flamegraph(self.COUNTS)
        root = _parse(svg)
        titles = [t.text for t in root.iter(f"{SVG_NS}title")]
        for frame in ("main.run", "pipeline.embed", "kernels.tsne",
                      "kernels.kde", "db.query"):
            assert any(frame in (t or "") for t in titles), frame
        # Tooltips carry sample counts and percentages.
        run_tip = next(t for t in titles if t and t.startswith("main.run "))
        assert "100 samples" in run_tip
        assert "100.0%" in run_tip

    def test_frame_widths_proportional_to_counts(self):
        root = _parse(render_flamegraph(self.COUNTS))
        widths = {}
        for rect in root.iter(f"{SVG_NS}rect"):
            title = rect.find(f"{SVG_NS}title")
            if title is not None and title.text:
                widths[title.text.split(" (")[0]] = float(rect.get("width"))
        assert widths["pipeline.embed"] > widths["db.query"]
        ratio = widths["kernels.tsne"] / widths["kernels.kde"]
        assert abs(ratio - 2.0) < 0.05

    def test_flames_grow_upward(self):
        root = _parse(render_flamegraph(self.COUNTS))
        ys = {}
        for rect in root.iter(f"{SVG_NS}rect"):
            title = rect.find(f"{SVG_NS}title")
            if title is not None and title.text:
                ys[title.text.split(" (")[0]] = float(rect.get("y"))
        assert ys["kernels.tsne"] < ys["pipeline.embed"] < ys["main.run"]

    def test_empty_profile_renders_note(self):
        svg = render_flamegraph({})
        root = _parse(svg)
        texts = [t.text or "" for t in root.iter(f"{SVG_NS}text")]
        assert any("no samples" in t for t in texts)

    def test_title_and_width_parameters(self):
        svg = render_flamegraph(self.COUNTS, width=640, title="hot paths")
        root = _parse(svg)
        assert root.get("width") == "640"
        texts = [t.text or "" for t in root.iter(f"{SVG_NS}text")]
        assert any("hot paths" in t for t in texts)

    def test_deterministic_output(self):
        assert render_flamegraph(self.COUNTS) == render_flamegraph(self.COUNTS)

    def test_tiny_frames_elided_but_counted_in_parent(self):
        counts = {"main.run;big.f": 10_000, "main.run;tiny.g": 1}
        root = _parse(render_flamegraph(counts, width=300))
        titles = [t.text or "" for t in root.iter(f"{SVG_NS}title")]
        parent = next(t for t in titles if t.startswith("main.run "))
        assert "10001 samples" in parent
