"""Tests for the SVG tree, colormaps and scales."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.color import (
    CATEGORICAL,
    COLORMAPS,
    categorical,
    colormap,
    hex_to_rgb,
    rgb_to_hex,
    with_alpha,
)
from repro.viz.scales import LinearScale, format_hour, format_tick, nice_ticks
from repro.viz.svg import Element, SvgDocument, escape, path_data


class TestSvg:
    def test_document_is_well_formed_xml(self):
        doc = SvgDocument(100, 50)
        group = doc.add_new("g", class_="layer")
        group.add_new("circle", cx=5, cy=5, r=2.0)
        group.add_new("text", x=1, y=1).set_text("a < b & c")
        ET.fromstring(doc.render())  # raises on malformed output

    def test_attribute_name_mapping(self):
        el = Element("rect", stroke_width=2, class_="x")
        rendered = el.render()
        assert 'stroke-width="2"' in rendered
        assert 'class="x"' in rendered

    def test_escaping(self):
        assert escape('a"b<c>&') == "a&quot;b&lt;c&gt;&amp;"
        el = Element("text").set_text("<script>")
        assert "<script>" not in el.render()

    def test_self_closing_vs_nested(self):
        assert Element("rect").render() == "<rect/>"
        parent = Element("g")
        parent.add_new("rect")
        assert parent.render() == "<g><rect/></g>"

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            Element("bad tag")

    def test_document_size_validation(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 10)

    def test_render_document_has_xml_header(self):
        assert SvgDocument(10, 10).render_document().startswith("<?xml")

    def test_path_data(self):
        d = path_data([(0, 0), (1.5, 2.25)], close=True)
        assert d == "M0,0 L1.5,2.25 Z"
        with pytest.raises(ValueError):
            path_data([])

    def test_float_formatting_compact(self):
        el = Element("circle", cx=1.23456789)
        assert 'cx="1.235"' in el.render()


class TestColor:
    def test_hex_round_trip(self):
        assert rgb_to_hex(hex_to_rgb("#4477aa")) == "#4477aa"
        assert hex_to_rgb("#fff") == (255, 255, 255)

    def test_malformed_hex(self):
        with pytest.raises(ValueError):
            hex_to_rgb("#12345")
        with pytest.raises(ValueError):
            hex_to_rgb("#zzzzzz")

    @pytest.mark.parametrize("name", COLORMAPS)
    def test_colormaps_produce_valid_hex(self, name):
        for t in np.linspace(0, 1, 11):
            color = colormap(name, float(t))
            assert len(color) == 7 and color.startswith("#")
            hex_to_rgb(color)

    def test_colormap_endpoints(self):
        assert colormap("shift", 0.5) == "#f7f7f7"  # white at no-change
        assert colormap("heat", 0.0) != colormap("heat", 1.0)

    def test_colormap_clips(self):
        assert colormap("heat", -1.0) == colormap("heat", 0.0)
        assert colormap("heat", 2.0) == colormap("heat", 1.0)

    def test_unknown_colormap(self):
        with pytest.raises(ValueError):
            colormap("jet", 0.5)

    def test_categorical_wraps(self):
        assert categorical(0) == CATEGORICAL[0]
        assert categorical(len(CATEGORICAL)) == CATEGORICAL[0]
        with pytest.raises(ValueError):
            categorical(-1)

    def test_with_alpha(self):
        assert with_alpha("#000000", 0.5) == "rgba(0,0,0,0.500)"


class TestScales:
    def test_linear_forward_and_invert(self):
        scale = LinearScale(0.0, 10.0, 100.0, 200.0)
        assert scale(5.0) == 150.0
        assert scale.invert(150.0) == 5.0

    def test_flipped_range(self):
        scale = LinearScale(0.0, 1.0, 200.0, 100.0)  # SVG y axis
        assert scale(0.0) == 200.0
        assert scale(1.0) == 100.0

    def test_degenerate_domain_maps_to_mid(self):
        scale = LinearScale(5.0, 5.0, 0.0, 10.0)
        assert scale(5.0) == 5.0
        assert scale(99.0) == 5.0

    def test_vectorised(self):
        scale = LinearScale(0.0, 1.0, 0.0, 10.0)
        out = scale(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_allclose(out, [0.0, 5.0, 10.0])

    def test_nice_ticks_cover_and_step(self):
        ticks = nice_ticks(0.0, 100.0, 5)
        assert ticks[0] >= 0.0 and ticks[-1] <= 100.0
        steps = np.diff(ticks)
        np.testing.assert_allclose(steps, steps[0])
        mantissa = steps[0] / (10 ** np.floor(np.log10(steps[0])))
        assert round(mantissa, 6) in (1.0, 2.0, 5.0, 10.0)

    def test_nice_ticks_small_range(self):
        ticks = nice_ticks(0.001, 0.0017, 4)
        assert all(0.001 <= t <= 0.0017 for t in ticks)

    def test_nice_ticks_degenerate(self):
        assert nice_ticks(3.0, 3.0) == [3.0]

    def test_nice_ticks_validation(self):
        with pytest.raises(ValueError):
            nice_ticks(0, float("inf"))
        with pytest.raises(ValueError):
            nice_ticks(0, 1, n=1)

    def test_format_tick(self):
        assert format_tick(0) == "0"
        assert format_tick(5.0) == "5"
        assert format_tick(1e-6) == "1.0e-06"
        assert format_tick(0.25) == "0.25"

    def test_format_hour(self):
        assert format_hour(0) == "Jan 01 00:00"
        assert format_hour(25) == "Jan 02 01:00"
