"""Integration tests: request correlation, Prometheus exposition and the
/api/telemetry self-monitoring surface."""

import io
import json
import xml.etree.ElementTree as ET

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import (
    JsonLogger,
    MetricsRegistry,
    RingBufferSink,
    SlowOpLog,
    TimeWindowStore,
)
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.server import TestClient, VapApp

from ..obs.prom import base_name, parse_prometheus


@pytest.fixture(scope="module")
def telemetry_city():
    return generate_city(CityConfig(n_customers=30, n_days=7, seed=11))


@pytest.fixture()
def log_stream():
    """Route the process-default logger into a buffer for the test."""
    stream = io.StringIO()
    previous = obs.get_logger()
    obs.configure(logger=JsonLogger(stream=stream))
    yield stream
    obs.configure(logger=previous)


@pytest.fixture()
def app(telemetry_city):
    session = VapSession.from_city(telemetry_city, metrics=MetricsRegistry())
    return VapApp(
        session,
        layout=telemetry_city.layout,
        window_store=TimeWindowStore(),
        slow_log=SlowOpLog(),
    )


@pytest.fixture()
def client(app):
    return TestClient(app)


def _log_records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRequestCorrelation:
    def test_every_api_request_gets_a_request_id_header(self, client):
        response = client.get("/api/health")
        rid = response.headers["X-Request-ID"]
        assert len(rid) == 16 and int(rid, 16) >= 0

    def test_incoming_request_id_is_honoured_and_echoed(self, client, log_stream):
        response = client.get("/api/health", headers={"X-Request-ID": "caller-id-7"})
        assert response.headers["X-Request-ID"] == "caller-id-7"
        (record,) = _log_records(log_stream)
        assert record["request_id"] == "caller-id-7"

    def test_log_line_and_span_share_the_response_request_id(
        self, client, log_stream
    ):
        sink = RingBufferSink()
        previous = obs.get_tracer()
        obs.configure(sink=sink)
        try:
            response = client.get("/api/density?t_start=13&t_end=15")
        finally:
            obs.configure(tracer=previous)
        assert response.ok
        rid = response.headers["X-Request-ID"]

        (record,) = [
            r for r in _log_records(log_stream) if r["event"] == "http.request"
        ]
        assert record["request_id"] == rid
        assert record["route"] == "/api/density"
        assert record["status"] == 200
        assert record["duration_ms"] >= 0

        (root,) = [r for r in sink.records() if r.name == "http.request"]
        assert root.request_id == rid
        # children inherit the ID through the context variable
        assert all(c.request_id == rid for c in root.children)

    def test_slow_log_ties_requests_to_their_ids(self, app, client):
        response = client.get("/api/health", headers={"X-Request-ID": "slow-req"})
        assert response.ok
        records = app.slow_log.records()
        assert any(
            r["name"] == "http.request" and r["request_id"] == "slow-req"
            for r in records
        )


class TestPrometheusExposition:
    def test_prometheus_format_parses_and_has_content_type(self, client):
        client.get("/api/health")
        client.get("/api/quality")
        response = client.get("/api/metrics?format=prometheus")
        assert response.ok
        assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        types, samples = parse_prometheus(response.body.decode("utf-8"))
        names = {base_name(s.name) for s in samples}
        assert "http_requests_total" in names
        assert "http_request_seconds" in names
        for sample in samples:
            assert base_name(sample.name) in types

    def test_bucket_cumulativity_over_the_wire(self, client):
        for _ in range(3):
            client.get("/api/health")
        response = client.get("/api/metrics?format=prometheus")
        _, samples = parse_prometheus(response.body.decode("utf-8"))
        buckets = [
            s for s in samples
            if s.name == "http_request_seconds_bucket"
            and s.labels.get("route") == "/api/health"
        ]
        counts = [s.value for s in buckets]
        assert counts == sorted(counts)  # cumulative over increasing le
        assert buckets[-1].labels["le"] == "+Inf"
        (total,) = [
            s for s in samples
            if s.name == "http_request_seconds_count"
            and s.labels.get("route") == "/api/health"
        ]
        assert buckets[-1].value == total.value == 3.0

    def test_unknown_format_is_a_400(self, client):
        response = client.get("/api/metrics?format=yaml")
        assert response.status == 400
        assert "format" in response.json["error"]

    def test_adversarial_paths_collapse_to_unmatched(self, client):
        for i in range(20):
            assert client.get(f"/api/bogus/{i}/x%22y%5C").status == 404
        response = client.get("/api/metrics?format=prometheus")
        _, samples = parse_prometheus(response.body.decode("utf-8"))
        requests = [s for s in samples if s.name == "http_requests_total"]
        routes = {s.labels["route"] for s in requests}
        # 20 distinct hostile URLs produce exactly one route label
        assert "<unmatched>" in routes
        assert len(routes) <= 2  # <unmatched> + /api/metrics itself
        (unmatched,) = [
            s for s in requests if s.labels["route"] == "<unmatched>"
        ]
        assert unmatched.value == 20.0

    def test_span_sink_counts_surface_in_json_snapshot(self, client):
        previous = obs.get_tracer()
        obs.configure(sink=RingBufferSink(capacity=4))
        try:
            for _ in range(6):
                client.get("/api/health")
            snap = client.get("/api/metrics").json
        finally:
            obs.configure(tracer=previous)
        sink_stats = snap["span_sink"]
        assert sink_stats["exported"] == 6
        assert sink_stats["dropped"] == 2  # capacity 4 < 6 exported
        assert sink_stats["buffered"] == 4
        assert sink_stats["capacity"] == 4


class TestTelemetryEndpoint:
    def test_windowed_series_populate_after_a_workload(self, client):
        client.get("/api/health")
        client.get("/api/quality")
        client.get("/api/nowhere")  # one error
        payload = client.get("/api/telemetry").json
        overall = payload["requests"]["overall"]
        assert sum(w["count"] for w in overall["windows"]) == 3
        by_route = {s["labels"]["route"]: s for s in payload["requests"]["by_route"]}
        assert sum(w["count"] for w in by_route["/api/health"]["windows"]) == 1
        errors = payload["errors"]
        assert sum(
            w["count"] for s in errors for w in s["windows"]
        ) == 1
        assert payload["window_seconds"] > 0
        assert payload["ready"] is True
        assert payload["uptime_seconds"] >= 0

    def test_slow_ops_and_kernel_stats_present(self, client):
        assert client.get("/api/embedding?n_iter=40&perplexity=5").ok
        payload = client.get("/api/telemetry").json
        assert any(r["name"] == "http.request" for r in payload["slow_ops"])
        ops = {o["op"] for o in payload["ops"]}
        assert "embed" in ops
        cache = payload["cache"]
        assert cache["embed"]["miss"] == 1

    def test_top_parameter_bounds_slow_ops(self, client):
        for _ in range(8):
            client.get("/api/health")
        payload = client.get("/api/telemetry?top=3").json
        assert len(payload["slow_ops"]) <= 3

    def test_svg_panel_is_well_formed(self, client):
        client.get("/api/health")
        response = client.get("/api/telemetry?format=svg")
        assert response.ok
        assert response.headers["Content-Type"] == "image/svg+xml"
        root = ET.fromstring(response.body.decode("utf-8"))
        assert root.tag.endswith("svg")

    def test_unknown_format_is_a_400(self, client):
        response = client.get("/api/telemetry?format=png")
        assert response.status == 400


class TestHealthEndpoint:
    def test_health_reports_uptime_version_and_readiness(self, client):
        payload = client.get("/api/health").json
        assert payload["status"] == "ok"
        assert payload["ready"] is True
        assert payload["uptime_seconds"] >= 0
        from repro import __version__

        assert payload["version"] == __version__
        assert payload["n_customers"] == 30
