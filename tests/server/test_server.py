"""Tests for the JSON codec, router and the REST API contract."""

import math

import numpy as np
import pytest

from repro.server import TestClient, VapApp, json_codec
from repro.server.router import MethodNotAllowed, Router


class TestJsonCodec:
    def test_numpy_types(self):
        payload = {
            "i": np.int64(4),
            "f": np.float64(1.5),
            "b": np.bool_(True),
            "arr": np.array([1.0, 2.0]),
        }
        text = json_codec.dumps(payload)
        assert json_codec.loads(text) == {
            "i": 4,
            "f": 1.5,
            "b": True,
            "arr": [1.0, 2.0],
        }

    def test_nan_and_inf_become_null(self):
        text = json_codec.dumps({"x": float("nan"), "y": np.inf, "arr": np.array([np.nan])})
        assert json_codec.loads(text) == {"x": None, "y": None, "arr": [None]}
        assert "NaN" not in text  # strict JSON

    def test_enum_and_to_record(self):
        from repro.data.meter import ZoneKind
        from repro.data.timeseries import HourWindow

        text = json_codec.dumps({"zone": ZoneKind.PARK, "w": HourWindow(1, 2)})
        assert json_codec.loads(text) == {
            "zone": "park",
            "w": {"start_hour": 1, "end_hour": 2},
        }

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            json_codec.dumps({"x": object()})

    def test_nested_collections(self):
        text = json_codec.dumps([(1, 2), {3, 3}])
        assert json_codec.loads(text) == [[1, 2], [3]]


class TestRouter:
    def test_static_and_param_routes(self):
        router = Router()
        router.add("GET", "/a", lambda req: "a")
        router.add("GET", "/a/<int:x>", lambda req, x: x)
        router.add("GET", "/a/<name>/b", lambda req, name: name)
        handler, params = router.match("GET", "/a/42")
        assert handler(None, **params) == 42
        handler, params = router.match("GET", "/a/hello/b")
        assert handler(None, **params) == "hello"
        assert router.match("GET", "/nope") is None

    def test_method_not_allowed(self):
        router = Router()
        router.add("GET", "/x", lambda req: None)
        with pytest.raises(MethodNotAllowed):
            router.match("POST", "/x")

    def test_validation(self):
        router = Router()
        with pytest.raises(ValueError):
            router.add("PATCH", "/x", lambda req: None)
        with pytest.raises(ValueError):
            router.add("GET", "no-slash", lambda req: None)
        with pytest.raises(ValueError, match="duplicate"):
            router.add("GET", "/a/<x>/<x>", lambda req, x: None)

    def test_negative_int_param(self):
        router = Router()
        router.add("GET", "/h/<int:h>", lambda req, h: h)
        _, params = router.match("GET", "/h/-5")
        assert params["h"] == -5


@pytest.fixture(scope="module")
def client(small_session, small_city):
    return TestClient(VapApp(small_session, layout=small_city.layout))


class TestApi:
    def test_health(self, client, small_session):
        data = client.get("/api/health").json
        assert data["status"] == "ok"
        assert data["n_customers"] == len(small_session.db)

    def test_quality_includes_anomaly_report(self, client):
        data = client.get("/api/quality").json
        assert "missing_fraction" in data
        assert "anomalies_removed" in data

    def test_zones(self, client, small_city):
        data = client.get("/api/zones").json
        assert len(data["zones"]) == len(small_city.layout.zones)
        assert {"name", "kind", "center", "radius_deg"} <= set(data["zones"][0])

    def test_customers_zone_filter(self, client, small_session):
        data = client.get("/api/customers?zone=residential").json
        want = len(small_session.db.ids_in_zone("residential"))
        assert data["count"] == want

    def test_customers_bbox_filter(self, client, small_session):
        box = small_session.db.bounding_box()
        mid = box.center
        url = f"/api/customers?bbox={box.min_lon},{box.min_lat},{mid.lon},{mid.lat}"
        data = client.get(url).json
        assert 0 < data["count"] < len(small_session.db)

    def test_customers_bad_bbox(self, client):
        assert client.get("/api/customers?bbox=1,2,3").status == 400
        assert client.get("/api/customers?bbox=a,b,c,d").status == 400

    def test_customer_detail_and_404(self, client, small_session):
        cid = small_session.db.customer_ids[0]
        data = client.get(f"/api/customers/{cid}").json
        assert data["customer_id"] == cid
        assert client.get("/api/customers/99999").status == 404

    def test_readings_window(self, client, small_session):
        cid = small_session.db.customer_ids[0]
        data = client.get(f"/api/customers/{cid}/readings?start=0&end=24").json
        assert len(data["values"]) == 24
        assert data["start_hour"] == 0

    def test_readings_bad_window(self, client, small_session):
        cid = small_session.db.customer_ids[0]
        resp = client.get(f"/api/customers/{cid}/readings?start=10&end=2")
        assert resp.status == 400

    def test_embedding_and_selection_round_trip(self, client):
        emb = client.get("/api/embedding?n_iter=200").json
        assert len(emb["points"]) == len(emb["customer_ids"])
        x, y = emb["points"][0]
        sel = client.post(
            "/api/selection", json={"type": "knn", "x": x, "y": y, "k": 6}
        ).json
        assert sel["count"] == 6
        assert len(sel["customer_ids"]) == 6
        assert sel["pattern"]
        assert len(sel["profile"]) > 0

    def test_selection_rect_empty(self, client):
        sel = client.post(
            "/api/selection",
            json={"type": "rect", "x_min": 1e5, "y_min": 1e5, "x_max": 1e6, "y_max": 1e6},
        ).json
        assert sel["count"] == 0

    def test_selection_lasso(self, client):
        emb = client.get("/api/embedding").json
        xs = [p[0] for p in emb["points"]]
        ys = [p[1] for p in emb["points"]]
        lo_x, hi_x = min(xs) - 1, max(xs) + 1
        lo_y, hi_y = min(ys) - 1, max(ys) + 1
        sel = client.post(
            "/api/selection",
            json={
                "type": "lasso",
                "vertices": [
                    [lo_x, lo_y], [hi_x, lo_y], [hi_x, hi_y], [lo_x, hi_y],
                ],
            },
        ).json
        assert sel["count"] == len(emb["points"])

    def test_selection_errors(self, client):
        assert client.post("/api/selection", json={"type": "blob"}).status == 400
        assert client.post("/api/selection", json={"type": "knn"}).status == 400
        assert client.post("/api/selection", json=[1, 2]).status == 400

    def test_density_grid(self, client):
        data = client.get("/api/density?t_start=0&t_end=24").json
        assert data["nx"] > 0
        assert len(data["values"]) == data["ny"]

    def test_shift_flows(self, client):
        data = client.get(
            "/api/shift?t1_start=61&t1_end=63&t2_start=67&t2_end=69"
        ).json
        assert data["energy"] > 0
        for flow in data["flows"]:
            assert {"from", "to", "magnitude"} <= set(flow)

    def test_shift_missing_params(self, client):
        assert client.get("/api/shift?t1_start=0").status == 400

    def test_kmeans(self, client, small_session):
        data = client.get("/api/kmeans?k=4").json
        assert data["k"] == 4
        assert len(data["labels"]) == len(small_session.db)
        assert len(set(data["labels"])) == 4

    def test_unknown_endpoint_404(self, client):
        assert client.get("/api/wat").status == 404

    def test_method_not_allowed_405(self, client):
        assert client.post("/api/health", json={}).status == 405

    def test_model_validation_maps_to_400(self, client):
        # embed() raises ValueError for an unknown method.
        assert client.get("/api/embedding?method=umap").status == 400

    def test_responses_are_strict_json(self, client):
        body = client.get("/api/density?t_start=0&t_end=4").body.decode()
        assert "NaN" not in body and "Infinity" not in body


class TestForecastEndpoint:
    def test_forecast_methods(self, client, small_session):
        cid = small_session.db.customer_ids[0]
        for method in ("profile", "seasonal", "naive"):
            data = client.get(
                f"/api/customers/{cid}/forecast?horizon=12&method={method}"
            ).json
            assert len(data["values"]) == 12
            assert data["start_hour"] == small_session.series.end_hour
            assert all(v is None or v >= 0 for v in data["values"])

    def test_forecast_errors(self, client, small_session):
        cid = small_session.db.customer_ids[0]
        assert client.get(f"/api/customers/{cid}/forecast?method=arima").status == 400
        assert client.get(f"/api/customers/{cid}/forecast?horizon=0").status == 400
        assert client.get("/api/customers/424242/forecast").status == 404


class TestProposalsEndpoint:
    def test_proposals_are_labelled(self, client, small_session):
        data = client.get("/api/proposals?min_points=4&min_size=5").json
        assert data["count"] >= 1
        first = data["proposals"][0]
        assert {"cluster_id", "size", "center", "indices", "pattern"} <= set(first)
        assert first["size"] == len(first["indices"])
        # Sizes are sorted descending.
        sizes = [p["size"] for p in data["proposals"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_bad_params(self, client):
        assert client.get("/api/proposals?min_points=0").status == 400
