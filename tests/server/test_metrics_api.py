"""Integration tests: /api/metrics reflects traffic; middleware is inert.

Each test gets a fresh registry (sessions are cheap at this scale), so
counter assertions are exact.
"""

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry, RingBufferSink
from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def metrics_city():
    return generate_city(CityConfig(n_customers=30, n_days=7, seed=11))


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def client(metrics_city, registry):
    session = VapSession.from_city(metrics_city, metrics=registry)
    return TestClient(VapApp(session, layout=metrics_city.layout))


def _counters(snapshot, name):
    return {
        (c["labels"].get("route"), c["labels"].get("status")): c["value"]
        for c in snapshot["counters"]
        if c["name"] == name
    }


class TestRequestCounting:
    def test_counts_per_route_and_status(self, client):
        client.get("/api/health")
        client.get("/api/health")
        client.get("/api/quality")
        snap = client.get("/api/metrics").json
        requests = _counters(snap, "http_requests_total")
        assert requests[("/api/health", "200")] == 2
        assert requests[("/api/quality", "200")] == 1

    def test_path_params_collapse_to_route_pattern(self, client):
        ids = client.get("/api/customers").json["customers"]
        for row in ids[:3]:
            assert client.get(f"/api/customers/{row['customer_id']}").ok
        snap = client.get("/api/metrics").json
        requests = _counters(snap, "http_requests_total")
        # Three distinct URLs, one label series.
        assert requests[("/api/customers/<int:customer_id>", "200")] == 3

    def test_metrics_endpoint_counts_itself_on_the_next_scrape(self, client):
        client.get("/api/metrics")
        snap = client.get("/api/metrics").json
        assert _counters(snap, "http_requests_total")[("/api/metrics", "200")] == 1

    def test_latency_histograms_per_route(self, client):
        client.get("/api/health")
        client.get("/api/health")
        snap = client.get("/api/metrics").json
        health = [
            h for h in snap["histograms"]
            if h["name"] == "http_request_seconds"
            and h["labels"]["route"] == "/api/health"
        ]
        assert len(health) == 1
        assert health[0]["count"] == 2
        assert health[0]["buckets"][-1]["le"] == "+Inf"
        assert sum(b["count"] for b in health[0]["buckets"][:-1]) == 2


class TestErrorCounting:
    def test_404_and_400_recorded(self, client):
        client.get("/api/nowhere")                 # 404, unmatched
        client.get("/api/customers/999999")        # 404, matched route
        client.get("/api/density")                 # 400, missing params
        snap = client.get("/api/metrics").json
        errors = _counters(snap, "http_errors_total")
        assert errors[("<unmatched>", "404")] == 1
        assert errors[("/api/customers/<int:customer_id>", "404")] == 1
        assert errors[("/api/density", "400")] == 1

    def test_405_recorded_with_route(self, client):
        response = client.post("/api/health", json={})
        assert response.status == 405
        snap = client.get("/api/metrics").json
        assert _counters(snap, "http_errors_total")[("/api/health", "405")] == 1


class TestMiddlewareTransparency:
    def test_error_bodies_preserved(self, client):
        missing = client.get("/api/nowhere")
        assert missing.status == 404
        assert missing.json == {"error": "no such endpoint: /api/nowhere"}

        bad = client.get("/api/density")
        assert bad.status == 400
        assert "missing required parameter" in bad.json["error"]

        wrong_method = client.post("/api/health", json={})
        assert wrong_method.status == 405
        assert wrong_method.json == {"error": "method not allowed"}

    def test_success_bodies_and_headers_preserved(self, client):
        response = client.get("/api/health")
        assert response.ok
        assert response.json["status"] == "ok"
        assert response.headers["Content-Type"] == "application/json"
        assert int(response.headers["Content-Length"]) == len(response.body)


class TestPipelineMetricsThroughApi:
    def test_embedding_cache_counters_exposed(self, client, registry):
        url = "/api/embedding?n_iter=40&perplexity=5"
        assert client.get(url).ok
        assert client.get(url).ok  # identical parameters: cache hit
        snap = client.get("/api/metrics").json
        cache = {
            (c["labels"]["op"], c["labels"]["result"]): c["value"]
            for c in snap["counters"]
            if c["name"] == "pipeline_cache_total"
        }
        assert cache[("embed", "miss")] == 1
        assert cache[("embed", "hit")] == 1

    def test_db_query_timing_exposed(self, client):
        assert client.get(
            "/api/density?t_start=13&t_end=15"
        ).ok
        snap = client.get("/api/metrics").json
        db_ops = {
            h["labels"]["op"]: h["count"]
            for h in snap["histograms"]
            if h["name"] == "db_query_seconds"
        }
        assert db_ops["demand"] >= 1


class TestSpansInSnapshot:
    def test_spans_included_when_ring_sink_active(self, client):
        previous = obs.get_tracer()
        obs.configure(sink=RingBufferSink())
        try:
            assert client.get("/api/density?t_start=13&t_end=15").ok
            snap = client.get("/api/metrics?spans=10").json
        finally:
            obs.configure(tracer=previous)
        assert "spans" in snap
        names = {s["name"] for s in snap["spans"]}
        assert "http.request" in names

    def test_spans_absent_with_null_sink(self, client):
        assert "spans" not in client.get("/api/metrics").json
