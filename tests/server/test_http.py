"""Real-HTTP integration: the WSGI app served by wsgiref in a thread.

Everything else drives the app in-process; this module confirms the same
contract holds over an actual TCP socket — status codes, JSON bodies and
concurrent-ish sequential requests.
"""

import http.client
import json
import threading
from wsgiref.simple_server import WSGIRequestHandler, make_server

import pytest

from repro.server import VapApp


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, *args):  # pragma: no cover - silence test output
        pass


@pytest.fixture(scope="module")
def http_server(small_session, small_city):
    app = VapApp(small_session, layout=small_city.layout)
    server = make_server("127.0.0.1", 0, app, handler_class=_QuietHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"127.0.0.1:{server.server_port}"
    server.shutdown()
    thread.join(timeout=5)


def _get(address: str, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(address, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post(address: str, path: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload)
    conn = http.client.HTTPConnection(address, timeout=10)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestOverHttp:
    def test_health(self, http_server, small_session):
        status, data = _get(http_server, "/api/health")
        assert status == 200
        assert data["n_customers"] == len(small_session.db)

    def test_selection_round_trip(self, http_server):
        status, emb = _get(http_server, "/api/embedding")
        assert status == 200
        x, y = emb["points"][0]
        status, sel = _post(
            http_server, "/api/selection", {"type": "knn", "x": x, "y": y, "k": 4}
        )
        assert status == 200
        assert sel["count"] == 4

    def test_sql_over_http(self, http_server):
        status, data = _post(
            http_server,
            "/api/sql",
            {"query": "SELECT count(*) AS n FROM customers"},
        )
        assert status == 200
        assert data["rows"][0]["n"] > 0

    def test_errors_over_http(self, http_server):
        status, data = _get(http_server, "/api/customers/123456789")
        assert status == 404
        assert "error" in data

    def test_sequential_requests_reuse_state(self, http_server):
        """Several requests against one server: caches keep working."""
        for _ in range(3):
            status, _ = _get(http_server, "/api/embedding")
            assert status == 200
