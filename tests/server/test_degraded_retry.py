"""Bugfix sweep regressions: degraded-serving provenance and honest
``Retry-After`` on breaker-open 503s.

- A breaker-open fallback response must say *which* cache key it was
  actually computed under (``degraded_served``), so clients can tell an
  exact stale hit from a cross-parameter last-good surface.
- A breaker-open 503's ``Retry-After`` must reflect the breaker's
  remaining open window rather than a constant.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry
from repro.resilience.breaker import OPEN, BreakerOpen, CircuitBreaker
from repro.server import TestClient, VapApp


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(n_customers=30, n_days=7, seed=29))


def _build(city, breakers=None):
    session = VapSession.from_city(
        city, metrics=MetricsRegistry(), breakers=breakers
    )
    return session, TestClient(VapApp(session, layout=city.layout))


def _trip(breaker: CircuitBreaker) -> None:
    for _ in range(breaker.min_calls):
        breaker.record_failure()
    assert breaker.state == OPEN


def _body(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


class TestDegradedServedKey:
    def test_cross_window_fallback_records_both_keys(self, city):
        session, client = _build(city)
        warm = client.get("/api/density?t_start=0&t_end=4")
        assert warm.ok
        _trip(session.breakers["density"])
        response = client.get("/api/density?t_start=4&t_end=8")
        assert response.status == 200
        payload = _body(response)
        assert payload["degraded"] is True
        served = payload["degraded_served"]
        assert served["reason"] == "breaker_open"
        assert served["exact"] is False
        assert served["served_key"] != served["requested_key"]
        # The keys are real cache keys: the served one names the warm
        # window, the requested one the window that was refused.
        assert "0, 4" in served["served_key"]
        assert "4, 8" in served["requested_key"]

    def test_exact_cache_hit_while_open_is_not_degraded(self, city):
        session, client = _build(city)
        warm = client.get("/api/density?t_start=0&t_end=4")
        _trip(session.breakers["density"])
        again = client.get("/api/density?t_start=0&t_end=4")
        assert again.ok
        assert "degraded" not in _body(again)
        assert _body(again)["values"] == _body(warm)["values"]

    def test_cross_parameter_embedding_fallback_is_flagged(self, city):
        session, client = _build(city)
        warm = client.get("/api/embedding?method=tsne&n_iter=30&seed=1")
        assert warm.ok
        _trip(session.breakers["embed"])
        response = client.get("/api/embedding?method=tsne&n_iter=30&seed=2")
        assert response.status == 200
        payload = _body(response)
        assert payload["degraded"] is True
        assert payload["degraded_served"]["exact"] is False
        assert payload["points"] == _body(warm)["points"]


class TestBreakerRetryAfter:
    def _clocked_build(self, city, open_seconds=120.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="pipeline.embed",
            open_seconds=open_seconds,
            clock=clock,
        )
        session, client = _build(city, breakers={"embed": breaker})
        return clock, breaker, client

    def test_retry_after_equals_remaining_open_window(self, city):
        clock, breaker, client = self._clocked_build(city)
        _trip(breaker)
        response = client.get("/api/embedding?method=tsne&n_iter=10")
        assert response.status == 503
        assert response.headers["Retry-After"] == "120"
        assert _body(response)["retry_after_seconds"] == 120

    def test_retry_after_shrinks_as_the_window_elapses(self, city):
        clock, breaker, client = self._clocked_build(city)
        _trip(breaker)
        clock.advance(50.0)
        response = client.get("/api/embedding?method=tsne&n_iter=10")
        assert response.status == 503
        assert response.headers["Retry-After"] == "70"

    def test_fractional_remaining_rounds_up_to_at_least_one(self, city):
        clock, breaker, client = self._clocked_build(city)
        _trip(breaker)
        clock.advance(119.7)
        response = client.get("/api/embedding?method=tsne&n_iter=10")
        assert response.status == 503
        assert response.headers["Retry-After"] == "1"

    def test_unknowing_breaker_falls_back_to_constant(self, city):
        _, client = _build(city)
        app = client.app
        assert (
            app._breaker_retry_after(BreakerOpen("pipeline.embed"))
            == app._backpressure.retry_after
        )

    def test_remaining_open_seconds_zero_when_closed(self):
        breaker = CircuitBreaker(name="x")
        assert breaker.remaining_open_seconds() == 0.0
