"""Fast-kernel query params on the REST API and telemetry kernel stats."""

import pytest

from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def client(small_session, small_city):
    return TestClient(VapApp(small_session, layout=small_city.layout))


class TestEmbeddingParams:
    def test_tsne_method_forced_bh(self, client):
        data = client.get(
            "/api/embedding?n_iter=30&tsne_method=bh&theta=0.6"
        ).json
        assert len(data["points"]) == len(data["customer_ids"])

    def test_unknown_tsne_method_is_400(self, client):
        response = client.get("/api/embedding?n_iter=30&tsne_method=fft")
        assert response.status == 400
        assert "method" in response.json["error"]

    def test_bad_theta_is_400(self, client):
        response = client.get("/api/embedding?n_iter=30&tsne_method=bh&theta=7")
        assert response.status == 400

    def test_engines_cached_separately(self, small_session):
        exact = small_session.embed(n_iter=30, tsne_method="exact")
        fast = small_session.embed(n_iter=30, tsne_method="bh")
        assert exact is not fast


class TestDensityParams:
    def test_kde_method_param(self, client):
        exact = client.get("/api/density?t_start=0&t_end=24&kde_method=exact")
        assert exact.ok
        binned = client.get(
            "/api/density?t_start=0&t_end=24&kde_method=binned"
            "&bandwidth_m=2500"
        )
        assert binned.ok
        assert len(binned.json["values"]) == binned.json["ny"]

    def test_unknown_kde_method_is_400(self, client):
        response = client.get("/api/density?t_start=0&t_end=24&kde_method=fft")
        assert response.status == 400
        assert "method" in response.json["error"]

    def test_shift_accepts_kde_method(self, client):
        response = client.get(
            "/api/shift?t1_start=24&t1_end=26&t2_start=30&t2_end=32"
            "&kde_method=exact"
        )
        assert response.ok
        assert "energy" in response.json


class TestTelemetryKernels:
    def test_kernel_runtimes_reported(self, client):
        client.get("/api/embedding?n_iter=30")
        client.get("/api/density?t_start=0&t_end=24")
        data = client.get("/api/telemetry").json
        kernels = {entry["kernel"] for entry in data["kernels"]}
        assert {"tsne", "kde"} <= kernels
        for entry in data["kernels"]:
            assert entry["count"] >= 1
            assert entry["mean_seconds"] >= 0.0
