"""End-to-end observability: /api/traces, /api/profile, SLO burn alerts.

Covers the acceptance criteria of the observability-v2 story:

- a sharded request produces ONE trace whose tree contains a child span
  per shard task, each carrying the HTTP request's id, retrievable via
  ``GET /api/traces/<id>``;
- ``GET /api/profile`` serves folded stacks, flamegraph SVG and JSON in
  both burst and continuous modes;
- a synthetic 50% error burst flips the fast burn-rate rule to firing,
  delivers an alert through a stream sink, and ``/api/telemetry`` shows
  the depleted error budget.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry, SlowOpLog, TimeWindowStore, TraceStore
from repro.obs.profiler import parse_folded
from repro.obs.slo import SloEngine
from repro.resilience.retry import RetryPolicy
from repro.server import TestClient, VapApp
from repro.stream.alerts import AlertDispatcher, MemorySink

N_SHARDS = 4


@pytest.fixture(scope="module")
def obs_city():
    return generate_city(CityConfig(n_customers=30, n_days=7, seed=31))


@pytest.fixture()
def trace_store():
    previous = obs.get_tracer()
    store = TraceStore()
    obs.configure(sink=obs.NullSink(), trace_store=store)
    yield store
    obs.configure(tracer=previous)


def make_app(city, **kwargs):
    session = VapSession.from_city(
        city, shards=N_SHARDS, metrics=MetricsRegistry()
    )
    kwargs.setdefault("window_store", TimeWindowStore())
    kwargs.setdefault("slow_log", SlowOpLog())
    return VapApp(session, layout=city.layout, **kwargs)


class TestTracesApi:
    def test_sharded_request_yields_one_stitched_trace(
        self, obs_city, trace_store
    ):
        client = TestClient(make_app(obs_city))
        response = client.get(
            "/api/density?t_start=8&t_end=12",
            headers={"X-Request-ID": "req-acceptance"},
        )
        assert response.ok
        listing = client.get("/api/traces?request_id=req-acceptance").json
        assert listing["count"] == 1
        summary = listing["traces"][0]
        assert summary["name"] == "http.request"
        assert summary["request_id"] == "req-acceptance"
        assert summary["n_spans"] >= 1 + N_SHARDS

        detail = client.get(f"/api/traces/{summary['trace_id']}").json
        tree = detail["trace"]
        assert tree["trace_id"] == summary["trace_id"]

        def walk(node):
            yield node
            for child in node.get("children", []):
                yield from walk(child)

        spans = list(walk(tree))
        shard_spans = [s for s in spans if s["name"] == "db.shard"]
        # The handler may scatter more than once; every scatter must
        # contribute one child span per shard task.
        assert shard_spans and len(shard_spans) % N_SHARDS == 0
        by_parent = {}
        for s in shard_spans:
            by_parent.setdefault(s["parent_id"], []).append(s)
        for group in by_parent.values():
            assert {s["tags"]["shard"] for s in group} == set(range(N_SHARDS))
        # Every shard task carries the originating HTTP request's id.
        assert all(
            s["request_id"] == "req-acceptance" for s in shard_spans
        )
        # And parents back into this trace, not a disconnected root.
        span_ids = {s["span_id"] for s in spans}
        assert all(s["parent_id"] in span_ids for s in shard_spans)

    def test_trace_listing_filters_by_tenant(self, obs_city, trace_store):
        client = TestClient(make_app(obs_city))
        assert client.get("/api/density?t_start=8&t_end=10").ok
        listing = client.get("/api/traces?tenant=default").json
        assert listing["count"] >= 1
        assert all(t["tenant"] == "default" for t in listing["traces"])
        assert client.get("/api/traces?tenant=nobody").json["count"] == 0

    def test_unknown_trace_404(self, obs_city, trace_store):
        client = TestClient(make_app(obs_city))
        response = client.get("/api/traces/deadbeef00000000")
        assert response.status == 404
        assert "unknown trace" in response.json["error"]

    def test_traces_404_when_tracing_disabled(self, obs_city):
        previous = obs.get_tracer()
        obs.configure(tracer=obs.Tracer())  # no store, no sink
        try:
            client = TestClient(make_app(obs_city))
            response = client.get("/api/traces")
            assert response.status == 404
            assert "tracing is not enabled" in response.json["error"]
        finally:
            obs.configure(tracer=previous)

    def test_trace_limit_param(self, obs_city, trace_store):
        client = TestClient(make_app(obs_city))
        for _ in range(3):
            assert client.get("/api/health").ok
        listing = client.get("/api/traces?limit=2").json
        assert listing["count"] == 2
        assert listing["stored"] >= 3


class TestProfileApi:
    def test_folded_output_parses(self, obs_city):
        client = TestClient(make_app(obs_city))
        response = client.get("/api/profile?seconds=0.2&hz=200")
        assert response.ok
        assert response.headers["Content-Type"].startswith("text/plain")
        parse_folded(response.body.decode("utf-8"))  # malformed would raise

    def test_svg_output_is_wellformed(self, obs_city):
        client = TestClient(make_app(obs_city))
        response = client.get("/api/profile?seconds=0.2&hz=200&format=svg")
        assert response.ok
        assert response.headers["Content-Type"] == "image/svg+xml"
        root = ET.fromstring(response.body.decode("utf-8"))
        assert root.tag.endswith("svg")

    def test_json_output_burst_mode(self, obs_city):
        client = TestClient(make_app(obs_city))
        payload = client.get(
            "/api/profile?seconds=0.2&hz=200&format=json"
        ).json
        assert payload["seconds"] == 0.2
        assert payload["continuous"] is False
        assert isinstance(payload["stacks"], dict)

    def test_continuous_profiler_reports_delta(self, obs_city):
        profiler = obs.StackProfiler(hz=200.0)
        profiler.start()
        try:
            client = TestClient(make_app(obs_city, profiler=profiler))
            payload = client.get(
                "/api/profile?seconds=0.2&format=json"
            ).json
            assert payload["continuous"] is True
        finally:
            profiler.stop()

    def test_parameter_validation(self, obs_city):
        client = TestClient(make_app(obs_city))
        assert client.get("/api/profile?seconds=0").status == 400
        assert client.get("/api/profile?seconds=120").status == 400
        assert client.get("/api/profile?hz=0").status == 400
        assert client.get("/api/profile?hz=5000").status == 400
        assert client.get("/api/profile?format=perf").status == 400


class TestSloBurnIntegration:
    def _burst_app(self, city):
        sink = MemorySink()
        dispatcher = AlertDispatcher(
            sinks=[sink],
            retry=RetryPolicy(
                base_delay=0.0, max_delay=0.0, sleeper=lambda s: None,
                metrics=MetricsRegistry(),
            ),
            metrics=MetricsRegistry(),
        )
        engine = SloEngine(
            dispatcher=dispatcher, registry=MetricsRegistry()
        )
        app = make_app(city, slo_engine=engine)

        def boom(request):
            raise OSError("synthetic backend outage")

        app.router.add("GET", "/api/boom", boom)
        return app, sink, engine

    def test_error_burst_fires_fast_rule_and_delivers_alert(self, obs_city):
        app, sink, engine = self._burst_app(obs_city)
        client = TestClient(app)
        # Synthetic 50% error rate: way past the 14.4x fast burn
        # threshold for a 99.9% availability objective.
        for _ in range(10):
            assert client.get("/api/health").ok
            assert client.get("/api/boom").status == 503
        results = {r["name"]: r for r in engine.evaluate()}
        availability = results["availability"]
        fast = next(
            r for r in availability["rules"] if r["rule"] == "fast"
        )
        assert fast["firing"]
        assert fast["short_burn_rate"] >= fast["threshold"]
        assert availability["firing"]
        assert availability["error_budget_remaining"] == 0.0

        # The alert went out through the stream sink — edge-triggered,
        # so one per rule even though evaluate() ran repeatedly.
        alerts = [
            a for a in sink.alerts()
            if a["type"] == "slo_burn_rate" and a["slo"] == "availability"
        ]
        rules_alerted = [a["rule"] for a in alerts]
        assert "fast" in rules_alerted
        assert len(rules_alerted) == len(set(rules_alerted))

        # /api/telemetry surfaces the depleted budget.
        telemetry = client.get("/api/telemetry").json
        slos = {s["name"]: s for s in telemetry["slo"]["slos"]}
        assert slos["availability"]["error_budget_remaining"] == 0.0
        assert slos["availability"]["firing"]

    def test_healthy_traffic_keeps_budget_full(self, obs_city):
        app, sink, engine = self._burst_app(obs_city)
        client = TestClient(app)
        for _ in range(10):
            assert client.get("/api/health").ok
        telemetry = client.get("/api/telemetry").json
        slos = {s["name"]: s for s in telemetry["slo"]["slos"]}
        assert slos["availability"]["error_budget_remaining"] == 1.0
        assert not slos["availability"]["firing"]
        assert sink.alerts() == []

    def test_profile_burst_does_not_burn_latency_budget(self, obs_city):
        # /api/profile?seconds=N is slow on purpose; the stock latency
        # SLO excludes observability routes so profiling the server
        # cannot page the server.
        client = TestClient(make_app(obs_city))
        assert client.get("/api/health").ok
        assert client.get("/api/profile?seconds=0.6&hz=50").ok
        assert client.get("/api/density?t_start=8&t_end=10").ok
        telemetry = client.get("/api/telemetry").json
        slos = {s["name"]: s for s in telemetry["slo"]["slos"]}
        assert slos["latency"]["error_budget_remaining"] == 1.0
        assert not slos["latency"]["firing"]

    def test_slo_block_always_present(self, obs_city):
        # Even without an injected engine the telemetry schema is stable.
        client = TestClient(make_app(obs_city))
        telemetry = client.get("/api/telemetry").json
        names = [s["name"] for s in telemetry["slo"]["slos"]]
        assert names == ["availability", "latency"]
