"""Tenant isolation at the API boundary.

Two tenants with different cities share one :class:`VapApp`.  Nothing may
leak between them: query results, cached kernel outputs (identical query
parameters are the classic cache-key collision), request accounting in
``/api/telemetry``, or quota state.  Routing itself is also pinned:
``X-Tenant`` header, ``tenant=`` parameter, their disagreement, unknown
tenants, and the default-tenant fallback.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.server import VapApp
from repro.server.client import TestClient
from repro.tenancy import TenantQuota, TenantRegistry

ACME_CUSTOMERS = 40
GLOBEX_CUSTOMERS = 30


@pytest.fixture(scope="module")
def cities():
    return {
        "acme": generate_city(
            CityConfig(n_customers=ACME_CUSTOMERS, n_days=7, seed=1)
        ),
        "globex": generate_city(
            CityConfig(n_customers=GLOBEX_CUSTOMERS, n_days=7, seed=2)
        ),
    }


@pytest.fixture()
def registry(cities):
    registry = TenantRegistry(default_tenant="acme")
    # One sharded, one flat: tenancy is independent of the data plane.
    # shards are explicit so a REPRO_SHARDS CI leg cannot reshape them.
    registry.create_from_city("acme", cities["acme"], shards=2)
    registry.create_from_city("globex", cities["globex"], shards=1)
    return registry


@pytest.fixture()
def client(registry):
    return TestClient(VapApp(tenants=registry))


class TestRouting:
    def test_header_selects_tenant(self, client):
        acme = client.get("/api/health", headers={"X-Tenant": "acme"})
        globex = client.get("/api/health", headers={"X-Tenant": "globex"})
        assert acme.status == globex.status == 200
        assert acme.json["tenant"] == "acme"
        assert globex.json["tenant"] == "globex"
        assert acme.json["n_customers"] == ACME_CUSTOMERS
        assert globex.json["n_customers"] == GLOBEX_CUSTOMERS

    def test_param_equals_header(self, client):
        via_param = client.get("/api/health?tenant=globex")
        via_header = client.get(
            "/api/health", headers={"X-Tenant": "globex"}
        )
        assert via_param.status == 200
        assert via_param.json["tenant"] == via_header.json["tenant"]
        assert via_param.json["n_customers"] == via_header.json["n_customers"]

    def test_agreeing_header_and_param_ok(self, client):
        response = client.get(
            "/api/health?tenant=acme", headers={"X-Tenant": "acme"}
        )
        assert response.status == 200
        assert response.json["tenant"] == "acme"

    def test_disagreeing_header_and_param_is_400(self, client):
        response = client.get(
            "/api/health?tenant=globex", headers={"X-Tenant": "acme"}
        )
        assert response.status == 400
        assert "disagree" in response.json["error"]

    def test_unknown_tenant_is_404(self, client):
        for response in (
            client.get("/api/health", headers={"X-Tenant": "nobody"}),
            client.get("/api/health?tenant=nobody"),
        ):
            assert response.status == 404
            assert "unknown tenant" in response.json["error"]

    def test_no_tenant_falls_back_to_default(self, client):
        response = client.get("/api/health")
        assert response.status == 200
        assert response.json["tenant"] == "acme"
        assert response.json["n_customers"] == ACME_CUSTOMERS

    def test_single_tenant_app_unchanged(self, cities):
        # The pre-tenancy constructor shape still works: one session,
        # no registry, requests need no tenant routing at all.
        app = VapApp(VapSession.from_city(cities["globex"], shards=1))
        response = TestClient(app).get("/api/health")
        assert response.status == 200
        assert response.json["n_customers"] == GLOBEX_CUSTOMERS


class TestIsolation:
    def test_queries_hit_the_right_database(self, client, registry):
        for tenant in ("acme", "globex"):
            want = sorted(registry.session(tenant).db.customer_ids)
            got = client.get(
                "/api/customers", headers={"X-Tenant": tenant}
            )
            assert got.status == 200
            assert sorted(
                row["customer_id"] for row in got.json["customers"]
            ) == want

    def test_identical_params_never_collide_on_cache(self, client):
        """Same URL, different tenants: the single-flight caches are
        per-tenant objects, so a warm cache for one tenant must not be
        served to the other (nor poison repeat calls)."""
        url = "/api/embedding?method=mds_classical&seed=0"
        first_acme = client.get(url, headers={"X-Tenant": "acme"})
        first_globex = client.get(url, headers={"X-Tenant": "globex"})
        assert first_acme.status == first_globex.status == 200
        assert len(first_acme.json["points"]) == ACME_CUSTOMERS
        assert len(first_globex.json["points"]) == GLOBEX_CUSTOMERS
        assert (
            first_acme.json["customer_ids"]
            != first_globex.json["customer_ids"]
        )
        # Repeat calls (cache hits) return each tenant's own result.
        again_acme = client.get(url, headers={"X-Tenant": "acme"})
        again_globex = client.get(url, headers={"X-Tenant": "globex"})
        assert again_acme.json["points"] == first_acme.json["points"]
        assert again_globex.json["points"] == first_globex.json["points"]

    def test_telemetry_counts_per_tenant(self, client):
        before = client.get("/api/telemetry").json["tenants"]
        for _ in range(3):
            assert client.get(
                "/api/customers", headers={"X-Tenant": "acme"}
            ).status == 200
        after = client.get("/api/telemetry").json["tenants"]
        assert set(after) == {"acme", "globex"}
        assert after["acme"]["requests"] == before["acme"]["requests"] + 3
        assert after["globex"]["requests"] == before["globex"]["requests"]
        assert after["acme"]["n_shards"] == 2
        assert after["globex"]["n_shards"] == 1
        assert after["acme"]["n_customers"] == ACME_CUSTOMERS
        assert after["globex"]["n_customers"] == GLOBEX_CUSTOMERS


class TestQuota:
    def test_quota_exhaustion_is_429_per_tenant(self, cities):
        registry = TenantRegistry(default_tenant="acme")
        registry.create_from_city(
            "acme", cities["acme"], quota=TenantQuota(max_requests=3)
        )
        registry.create_from_city("globex", cities["globex"])
        client = TestClient(VapApp(tenants=registry))
        for _ in range(3):
            assert client.get(
                "/api/health?tenant=acme"  # health is never charged
            ).status == 200
            assert client.get(
                "/api/customers", headers={"X-Tenant": "acme"}
            ).status == 200
        blocked = client.get("/api/customers", headers={"X-Tenant": "acme"})
        assert blocked.status == 429
        assert "quota" in blocked.json["error"]
        assert blocked.json["tenant"] == "acme"
        assert "Retry-After" in blocked.headers
        # The other tenant is untouched, and the throttled tenant can
        # still be diagnosed through the uncharged observability paths.
        assert client.get(
            "/api/customers", headers={"X-Tenant": "globex"}
        ).status == 200
        assert client.get(
            "/api/health", headers={"X-Tenant": "acme"}
        ).status == 200
        telemetry = client.get("/api/telemetry")
        assert telemetry.status == 200
        assert telemetry.json["tenants"]["acme"]["requests"] == 3

    def test_reset_usage_reopens_the_gate(self, cities):
        registry = TenantRegistry(default_tenant="acme")
        registry.create_from_city(
            "acme", cities["acme"], quota=TenantQuota(max_requests=1)
        )
        client = TestClient(VapApp(tenants=registry))
        assert client.get("/api/customers").status == 200
        assert client.get("/api/customers").status == 429
        registry.reset_usage("acme")
        assert client.get("/api/customers").status == 200


class TestRegistryValidation:
    def test_duplicate_tenant_rejected(self, cities):
        registry = TenantRegistry()
        registry.create_from_city("acme", cities["acme"])
        with pytest.raises(ValueError, match="already registered"):
            registry.create_from_city("acme", cities["globex"])

    def test_bad_tenant_ids_rejected(self, cities):
        registry = TenantRegistry()
        session = VapSession.from_city(cities["globex"], shards=1)
        for bad in ("", "../x", "a b", "-lead", "x" * 65):
            with pytest.raises(ValueError, match="tenant id"):
                registry.add(bad, session)
