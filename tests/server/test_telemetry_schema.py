"""Blocking schema-snapshot check for the /api/telemetry JSON document.

``/api/telemetry`` is the repo's operational contract: dashboards, the
CI artifact exporter and the SVG panel all consume it.  This test
round-trips the payload's *structure* (key tree + value kinds, not
values) against a checked-in snapshot, so an accidental rename, removal
or type change of any block — including the new ``slo`` block — fails
CI loudly instead of silently breaking consumers.

To accept an intentional schema change, regenerate the snapshot::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest \
        tests/server/test_telemetry_schema.py

and commit the updated ``snapshots/telemetry_schema.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry, SlowOpLog, TimeWindowStore, TraceStore
from repro.server import TestClient, VapApp

SNAPSHOT_PATH = Path(__file__).parent / "snapshots" / "telemetry_schema.json"


def schema_of(value: object) -> object:
    """Structural schema: key tree and value kinds, order-normalised.

    Scalars collapse to ``"scalar"`` (``None`` included — nullable
    fields must not flap the schema); dicts map each key to its value's
    schema; lists merge every element's schema so the snapshot does not
    depend on how many routes/ops/slow-ops happened to be recorded.
    """
    if isinstance(value, dict):
        return {
            "type": "object",
            "keys": {str(k): schema_of(v) for k, v in sorted(value.items())},
        }
    if isinstance(value, (list, tuple)):
        merged: object | None = None
        for item in value:
            merged = _merge(merged, schema_of(item))
        return {"type": "array", "items": merged if merged is not None else "unknown"}
    return "scalar"


def _merge(a: object | None, b: object) -> object:
    if a is None or a == b:
        return b
    if (
        isinstance(a, dict)
        and isinstance(b, dict)
        and a.get("type") == b.get("type") == "object"
    ):
        keys = dict(a["keys"])
        for key, sub in b["keys"].items():
            keys[key] = _merge(keys.get(key), sub)
        return {"type": "object", "keys": keys}
    if (
        isinstance(a, dict)
        and isinstance(b, dict)
        and a.get("type") == b.get("type") == "array"
    ):
        items_a, items_b = a["items"], b["items"]
        if items_a == "unknown":
            return b
        if items_b == "unknown":
            return a
        return {"type": "array", "items": _merge(items_a, items_b)}
    return "mixed"


@pytest.fixture(scope="module")
def schema_city():
    return generate_city(CityConfig(n_customers=25, n_days=7, seed=41))


def _build_payload(city) -> dict:
    """A telemetry payload with every optional block populated."""
    previous = obs.get_tracer()
    obs.configure(sink=obs.RingBufferSink(), trace_store=TraceStore())
    try:
        session = VapSession.from_city(city, shards=2, metrics=MetricsRegistry())
        app = VapApp(
            session,
            layout=city.layout,
            window_store=TimeWindowStore(),
            slow_log=SlowOpLog(),
        )
        client = TestClient(app)
        # Exercise enough surface that the data-bearing lists are
        # non-empty: routed requests, an error, a kernel run, db queries.
        assert client.get("/api/health").ok
        assert client.get("/api/density?t_start=8&t_end=12").ok
        assert client.get("/api/embedding?n_iter=40&perplexity=5").ok
        assert client.post("/api/rollups/rebuild", {}).ok
        assert client.get("/api/no-such-endpoint").status == 404
        return client.get("/api/telemetry").json
    finally:
        obs.configure(tracer=previous)


def test_telemetry_schema_matches_snapshot(schema_city):
    schema = schema_of(_build_payload(schema_city))
    if os.environ.get("REPRO_UPDATE_SNAPSHOTS") == "1":
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(schema, indent=2, sort_keys=True) + "\n"
        )
    assert SNAPSHOT_PATH.exists(), (
        f"missing snapshot {SNAPSHOT_PATH}; run with "
        "REPRO_UPDATE_SNAPSHOTS=1 to create it"
    )
    expected = json.loads(SNAPSHOT_PATH.read_text())
    assert schema == expected, (
        "telemetry schema drifted from the checked-in snapshot; if the "
        "change is intentional, regenerate with REPRO_UPDATE_SNAPSHOTS=1 "
        "and commit the diff"
    )


def test_snapshot_includes_slo_block(schema_city):
    """The new slo block is part of the frozen contract."""
    expected = json.loads(SNAPSHOT_PATH.read_text())
    slo = expected["keys"]["slo"]
    assert slo["type"] == "object"
    slo_entry = slo["keys"]["slos"]["items"]
    for key in (
        "name", "kind", "objective", "error_budget_remaining",
        "firing", "rules",
    ):
        assert key in slo_entry["keys"], key
    rule_entry = slo_entry["keys"]["rules"]["items"]
    for key in (
        "rule", "short_seconds", "long_seconds", "threshold",
        "short_burn_rate", "long_burn_rate", "firing",
    ):
        assert key in rule_entry["keys"], key


class TestSchemaExtractor:
    def test_scalars_collapse(self):
        assert schema_of(1) == schema_of("x") == schema_of(None) == "scalar"

    def test_list_length_does_not_matter(self):
        assert schema_of([{"a": 1}]) == schema_of([{"a": 2.5}, {"a": 3}])

    def test_list_element_keys_merge(self):
        schema = schema_of([{"a": 1}, {"b": 2}])
        assert schema["items"]["keys"].keys() == {"a", "b"}

    def test_key_rename_changes_schema(self):
        assert schema_of({"old": 1}) != schema_of({"new": 1})

    def test_type_change_changes_schema(self):
        assert schema_of({"a": 1}) != schema_of({"a": [1]})
