"""Concurrent serving: single-flight caches, backpressure, deadlines.

Drives one :class:`VapApp` from many threads through the in-process
:class:`TestClient` (handlers run on the calling thread, so this
exercises exactly the code paths a threaded WSGI server runs), plus one
real-socket test of the pooled server.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry
from repro.server import TestClient, VapApp, make_threaded_server


@pytest.fixture(scope="module")
def conc_city():
    return generate_city(CityConfig(n_customers=25, n_days=7, seed=23))


@pytest.fixture()
def fresh_obs_registry():
    """Swap the process-wide registry (kernels record there), restore after."""
    registry = MetricsRegistry()
    previous_registry, previous_tracer = obs.get_registry(), obs.get_tracer()
    obs.configure(registry=registry)
    try:
        yield registry
    finally:
        obs.configure(registry=previous_registry, tracer=previous_tracer)


def _drive(client, urls, n_threads):
    """Issue the urls concurrently from a barrier start; returns responses."""
    barrier = threading.Barrier(n_threads)

    def worker(url):
        barrier.wait(timeout=10)
        return client.get(url)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return list(pool.map(worker, urls))


class TestSingleFlightServing:
    def test_concurrent_identical_embeddings_compute_once(
        self, conc_city, fresh_obs_registry
    ):
        session = VapSession.from_city(conc_city, metrics=fresh_obs_registry)
        client = TestClient(VapApp(session))
        n = 8
        url = "/api/embedding?n_iter=120&perplexity=5"
        responses = _drive(client, [url] * n, n)

        assert all(r.status == 200 for r in responses)
        bodies = {r.body for r in responses}
        assert len(bodies) == 1, "all threads must see the same embedding"
        # The expensive kernel ran exactly once for the 8 requests.
        kernel_runs = fresh_obs_registry.counter(
            "kernel_runs_total", kernel="tsne"
        )
        assert kernel_runs.value == 1
        # One leader; everyone else deduplicated (waited or hit).
        leaders = fresh_obs_registry.counter(
            "pipeline_singleflight_total", op="embed", result="leader"
        )
        waiters = fresh_obs_registry.counter(
            "pipeline_singleflight_total", op="embed", result="waiter"
        )
        hits = fresh_obs_registry.counter(
            "pipeline_cache_total", op="embed", result="hit"
        )
        assert leaders.value == 1
        assert waiters.value + hits.value == n - 1

    def test_concurrent_identical_density_compute_once(
        self, conc_city, fresh_obs_registry
    ):
        session = VapSession.from_city(conc_city, metrics=fresh_obs_registry)
        client = TestClient(VapApp(session))
        n = 6
        url = "/api/density?t_start=13&t_end=15"
        responses = _drive(client, [url] * n, n)
        assert all(r.status == 200 for r in responses)
        assert len({r.body for r in responses}) == 1
        kde_runs = fresh_obs_registry.counter("kernel_runs_total", kernel="kde")
        assert kde_runs.value == 1

    def test_metrics_consistent_under_parallel_requests(self, conc_city):
        registry = MetricsRegistry()
        session = VapSession.from_city(conc_city, metrics=registry)
        client = TestClient(VapApp(session))
        n_threads, per_thread = 8, 20
        barrier = threading.Barrier(n_threads)

        def worker(_):
            barrier.wait(timeout=10)
            return [client.get("/api/health").status for _ in range(per_thread)]

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = list(pool.map(worker, range(n_threads)))
        assert all(s == 200 for statuses in results for s in statuses)
        counted = registry.counter(
            "http_requests_total",
            method="GET",
            route="/api/health",
            status="200",
        )
        assert counted.value == n_threads * per_thread
        # Every in-flight slot was released.
        assert registry.gauge("http_inflight_requests").value == 0


class TestBackpressure:
    def test_excess_requests_get_503_with_retry_after(self, conc_city):
        registry = MetricsRegistry()
        session = VapSession.from_city(conc_city, metrics=registry)
        app = VapApp(session, max_inflight=1, retry_after_seconds=2.0)
        client = TestClient(app)
        started = threading.Event()
        release = threading.Event()

        def slow_handler(request):
            started.set()
            assert release.wait(timeout=10)
            return {"ok": True}

        app.router.add("GET", "/api/slow", slow_handler)

        blocker = ThreadPoolExecutor(max_workers=1)
        future = blocker.submit(client.get, "/api/slow")
        assert started.wait(timeout=10)
        # The single in-flight slot is held: the next request is shed.
        shed = client.get("/api/health")
        assert shed.status == 503
        assert shed.headers.get("Retry-After") == "2"
        assert "error" in shed.json
        release.set()
        assert future.result(timeout=10).status == 200
        blocker.shutdown()
        # Shed request is visible to observability.
        assert registry.counter("http_throttled_total").value == 1
        errors = registry.counter(
            "http_errors_total", route="/api/health", status="503"
        )
        assert errors.value == 1

    def test_no_cap_means_no_shedding(self, conc_city):
        session = VapSession.from_city(
            conc_city, metrics=MetricsRegistry()
        )
        client = TestClient(VapApp(session))
        responses = _drive(client, ["/api/health"] * 6, 6)
        assert all(r.status == 200 for r in responses)

    def test_deadline_maps_to_503(self, conc_city):
        session = VapSession.from_city(conc_city, metrics=MetricsRegistry())
        # A microscopic budget: already spent by the time embed checks it.
        app = VapApp(session, deadline_seconds=1e-9, retry_after_seconds=3.0)
        client = TestClient(app)
        response = client.get("/api/embedding?n_iter=50")
        assert response.status == 503
        assert response.headers.get("Retry-After") == "3"
        assert "deadline" in response.json["error"]
        # Cheap endpoints that never reach a kernel still answer.
        assert client.get("/api/health").status == 200


class TestPooledServer:
    def test_real_socket_concurrent_requests(self, conc_city):
        import json
        from urllib.request import urlopen

        session = VapSession.from_city(conc_city, metrics=MetricsRegistry())
        app = VapApp(session, max_inflight=8)
        server = make_threaded_server("127.0.0.1", 0, app, threads=4)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def fetch(_):
                with urlopen(
                    f"http://127.0.0.1:{port}/api/health", timeout=10
                ) as response:
                    return response.status, json.loads(response.read())

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(fetch, range(8)))
            assert all(status == 200 for status, _ in results)
            assert all(body["status"] == "ok" for _, body in results)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

    def test_thread_count_validation(self):
        with pytest.raises(ValueError, match="threads"):
            make_threaded_server("127.0.0.1", 0, lambda e, s: [], threads=0)

    def test_bind_failure_raises_oserror(self):
        """Regression: a failed bind (port in use) used to die with
        AttributeError in server_close because the worker pool was built
        only after binding; it must surface the real OSError."""
        first = make_threaded_server("127.0.0.1", 0, lambda e, s: [])
        try:
            port = first.server_address[1]
            with pytest.raises(OSError):
                make_threaded_server("127.0.0.1", port, lambda e, s: [])
        finally:
            first.server_close()


class TestTelemetryBackpressureSection:
    def test_payload_reports_limits(self, conc_city):
        session = VapSession.from_city(conc_city, metrics=MetricsRegistry())
        app = VapApp(session, max_inflight=5, deadline_seconds=30.0)
        client = TestClient(app)
        client.get("/api/health")
        payload = client.get("/api/telemetry").json
        backpressure = payload["backpressure"]
        assert backpressure["max_inflight"] == 5
        assert backpressure["deadline_seconds"] == 30.0
        assert backpressure["throttled_total"] == 0
        # The telemetry request itself holds a slot while snapshotting.
        assert backpressure["inflight"] == 1


class TestWaiterDeadline:
    def test_waiter_times_out_against_inflight_leader(self, conc_city):
        """A waiter whose deadline expires while the leader computes gets
        a DeadlineExceeded, not an indefinite block."""
        from repro.core.deadline import (
            Deadline,
            DeadlineExceeded,
            bind_deadline,
        )

        session = VapSession.from_city(conc_city, metrics=MetricsRegistry())
        entered = threading.Event()
        release = threading.Event()
        original = session._features.get_or_compute

        def stalling(key, compute, timeout=None):
            def slow_compute():
                entered.set()
                assert release.wait(timeout=10)
                return compute()

            return original(key, slow_compute, timeout=timeout)

        session._features.get_or_compute = stalling
        leader_pool = ThreadPoolExecutor(max_workers=1)
        future = leader_pool.submit(
            session.features  # leader stalls inside the feature computation
        )
        assert entered.wait(timeout=10)
        session._features.get_or_compute = original
        try:
            with bind_deadline(Deadline(0.05)):
                with pytest.raises(DeadlineExceeded):
                    session.features()
        finally:
            release.set()
            future.result(timeout=10)
            leader_pool.shutdown()
        # After the leader finishes, the value is served normally.
        assert session.features() is future.result()
