"""Tests for the ``python -m repro.server`` entry point."""

import pytest

from repro import obs
from repro.server import __main__ as server_main


@pytest.fixture(autouse=True)
def _restore_tracer():
    """main() installs a trace store on the global tracer; undo it."""
    previous = obs.get_tracer()
    yield
    obs.configure(tracer=previous)


class _FakeServer:
    """Stands in for the pooled server: records the app, never blocks."""

    instances: list["_FakeServer"] = []

    def __init__(self, host, port, app, threads=8):
        self.host = host
        self.port = port
        self.app = app
        self.threads = threads
        _FakeServer.instances.append(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def serve_forever(self):
        raise KeyboardInterrupt  # return immediately in tests


def test_main_builds_app_and_serves(monkeypatch, capsys):
    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(
            [
                "--port", "9999", "--customers", "15", "--days", "7",
                "--threads", "4", "--max-inflight", "6",
                "--deadline-seconds", "5",
            ]
        )
    assert len(_FakeServer.instances) == 1
    server = _FakeServer.instances[0]
    assert server.port == 9999
    assert server.threads == 4
    # The app is a live VapApp over the generated city, with the
    # backpressure limits from the CLI flags wired in.
    from repro.server.app import VapApp

    assert isinstance(server.app, VapApp)
    assert len(server.app.session.db) == 15
    assert server.app._backpressure.max_inflight == 6
    assert server.app._backpressure.deadline_seconds == 5.0
    assert "listening" in capsys.readouterr().out


def test_main_arms_fault_plan(monkeypatch, capsys):
    from repro.resilience import faults

    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    previous = faults.active_injector()
    try:
        with pytest.raises(KeyboardInterrupt):
            server_main.main(
                [
                    "--customers", "10", "--days", "7",
                    "--fault-plan", "storage.load.readings=error:0.2",
                    "--fault-seed", "11",
                ]
            )
        injector = faults.active_injector()
        assert injector is not None
        assert injector.plan.seed == 11
        (spec,) = injector.plan.specs
        assert spec.site == "storage.load.readings"
        assert spec.rate == pytest.approx(0.2)
        out = capsys.readouterr().out
        assert "fault plan armed (seed 11)" in out
    finally:
        faults.install(None)
        if previous is not None:
            # Restore the session-level env plan if one was armed.
            faults.install(previous.plan)


def test_main_inflight_cap_disabled_with_zero(monkeypatch):
    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(
            ["--customers", "10", "--days", "7", "--max-inflight", "0"]
        )
    app = _FakeServer.instances[0].app
    assert app._backpressure.max_inflight is None


def test_main_wires_tracing_and_profiler(monkeypatch, capsys):
    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(
            [
                "--customers", "10", "--days", "7",
                "--trace-capacity", "64", "--profile-hz", "50",
            ]
        )
    app = _FakeServer.instances[0].app
    store = obs.get_trace_store()
    assert store is not None and store.max_traces == 64
    assert app.profiler is not None
    assert app.profiler.hz == 50.0
    assert app.profiler.running
    app.profiler.stop()
    out = capsys.readouterr().out
    assert "/api/traces" in out
    assert "continuous @ 50 hz" in out


def test_main_trace_capacity_zero_disables_tracing(monkeypatch):
    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(
            ["--customers", "10", "--days", "7", "--trace-capacity", "0"]
        )
    assert obs.get_trace_store() is None


def test_main_builds_sharded_multi_tenant_app(monkeypatch, capsys):
    monkeypatch.setattr(server_main, "make_server", _FakeServer)
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(
            [
                "--customers", "12", "--days", "7",
                "--shards", "3",
                "--tenants", "acme, globex",
                "--tenant-quota", "50",
            ]
        )
    app = _FakeServer.instances[0].app
    assert app.tenants.names() == ["acme", "globex"]
    assert app.tenants.default_tenant == "acme"
    for name in ("acme", "globex"):
        db = app.tenants.session(name).db
        assert db.n_shards == 3
        assert len(db) == 12
        assert app.tenants.usage(name)["max_requests"] == 50
    # Tenants get distinct cities: isolation is visible in the data.
    acme_box = app.tenants.session("acme").db.bounding_box()
    globex_box = app.tenants.session("globex").db.bounding_box()
    assert acme_box != globex_box
    out = capsys.readouterr().out
    assert "3 hash shards" in out
    assert "acme, globex" in out
