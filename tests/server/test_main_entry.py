"""Tests for the ``python -m repro.server`` entry point."""

from wsgiref.simple_server import WSGIServer

import pytest

from repro.server import __main__ as server_main


class _FakeServer:
    """Stands in for wsgiref's server: records the app, never blocks."""

    instances: list["_FakeServer"] = []

    def __init__(self, host, port, app):
        self.host = host
        self.port = port
        self.app = app
        _FakeServer.instances.append(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def serve_forever(self):
        raise KeyboardInterrupt  # return immediately in tests


def test_main_builds_app_and_serves(monkeypatch, capsys):
    monkeypatch.setattr(
        server_main, "make_server", lambda host, port, app: _FakeServer(host, port, app)
    )
    _FakeServer.instances.clear()
    with pytest.raises(KeyboardInterrupt):
        server_main.main(["--port", "9999", "--customers", "15", "--days", "7"])
    assert len(_FakeServer.instances) == 1
    server = _FakeServer.instances[0]
    assert server.port == 9999
    # The app is a live VapApp over the generated city.
    from repro.server.app import VapApp

    assert isinstance(server.app, VapApp)
    assert len(server.app.session.db) == 15
    assert "listening" in capsys.readouterr().out
