"""Server-level resilience: degraded serving, 503 shedding, telemetry."""

import json

import pytest

from repro import obs
from repro.core.pipeline import BREAKER_OPS, VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.obs import MetricsRegistry, SlowOpLog, TimeWindowStore
from repro.resilience import faults
from repro.resilience.breaker import OPEN, CircuitBreaker
from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def chaos_city():
    return generate_city(CityConfig(n_customers=30, n_days=7, seed=23))


def _build(city, breakers=None):
    session = VapSession.from_city(
        city, metrics=MetricsRegistry(), breakers=breakers
    )
    app = VapApp(
        session,
        layout=city.layout,
        window_store=TimeWindowStore(),
        slow_log=SlowOpLog(),
    )
    return session, TestClient(app)


def _trip(breaker: CircuitBreaker) -> None:
    for _ in range(breaker.min_calls):
        breaker.record_failure()
    assert breaker.state == OPEN


def _body(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


class TestDegradedServing:
    def test_breaker_open_serves_last_good_not_500(self, chaos_city):
        """The acceptance scenario: a breaker-open cache miss answers 200
        with the last-good surface and a degraded marker — never a 500."""
        session, client = _build(chaos_city)
        warm = client.get("/api/density?t_start=0&t_end=4")
        assert warm.ok and "degraded" not in _body(warm)

        _trip(session.breakers["density"])
        # A different window misses the cache, so the kernel would run —
        # the open breaker refuses and the warm surface is served instead.
        response = client.get("/api/density?t_start=4&t_end=8")
        assert response.status == 200
        payload = _body(response)
        assert payload["degraded"] is True
        assert payload["values"] == _body(warm)["values"]

    def test_breaker_open_cache_hits_still_exact(self, chaos_city):
        session, client = _build(chaos_city)
        warm = client.get("/api/density?t_start=0&t_end=4")
        _trip(session.breakers["density"])
        again = client.get("/api/density?t_start=0&t_end=4")
        assert again.ok and "degraded" not in _body(again)

    def test_breaker_open_without_fallback_is_503_with_retry_after(
        self, chaos_city
    ):
        session, client = _build(chaos_city)
        _trip(session.breakers["embed"])
        response = client.get("/api/embedding?method=tsne&n_iter=10")
        assert response.status == 503
        assert "Retry-After" in response.headers
        payload = _body(response)
        assert payload["breaker"] == "pipeline.embed"

    def test_shift_marks_degraded_when_either_window_degrades(self, chaos_city):
        session, client = _build(chaos_city)
        warm = client.get("/api/shift?t1_start=0&t1_end=4&t2_start=4&t2_end=8")
        assert warm.ok
        _trip(session.breakers["density"])
        response = client.get(
            "/api/shift?t1_start=0&t1_end=4&t2_start=8&t2_end=12"
        )
        assert response.status == 200
        assert _body(response)["degraded"] is True

    def test_degradation_counted(self, chaos_city):
        session, client = _build(chaos_city)
        client.get("/api/density?t_start=0&t_end=4")
        _trip(session.breakers["density"])
        client.get("/api/density?t_start=4&t_end=8")
        counter = session.metrics.counter("pipeline_degraded_total", op="density")
        assert counter.value == 1


class TestTransientShedding:
    def test_unretried_transient_fault_is_503_not_500(self, chaos_city):
        """With breakers disabled and a hard kernel fault, the API sheds
        (503 + Retry-After) instead of crashing the worker with a 500."""
        _, client = _build(chaos_city, breakers={})
        plan = faults.FaultPlan.parse("kernel.kde=error:1.0")
        with faults.injected(plan, metrics=MetricsRegistry()):
            response = client.get("/api/density?t_start=0&t_end=4")
        assert response.status == 503
        assert "Retry-After" in response.headers
        assert "transient failure" in _body(response)["error"]


class TestResilienceTelemetry:
    def test_telemetry_reports_breakers_and_retries(self, chaos_city):
        session, client = _build(chaos_city)
        client.get("/api/density?t_start=0&t_end=4")
        _trip(session.breakers["density"])
        client.get("/api/density?t_start=4&t_end=8")
        # Record a retry so the site shows up.
        session.metrics.counter("retry_attempts_total", site="storage.load").inc()

        payload = _body(client.get("/api/telemetry"))
        block = payload["resilience"]
        assert set(block["breakers"]) == set(BREAKER_OPS)
        assert block["breakers"]["density"]["state"] == OPEN
        assert block["breakers"]["embed"]["state"] == "closed"
        assert block["retry_attempts_total"] == {"storage.load": 1}
        assert block["degraded_total"] == {"density": 1}

    def test_telemetry_reports_armed_fault_plan(self, chaos_city):
        session, client = _build(chaos_city)
        plan = faults.FaultPlan.parse("stream.tick=error:0.5", seed=77)
        with faults.injected(plan, metrics=session.metrics) as injector:
            for _ in range(20):
                try:
                    injector.check("stream.tick")
                except faults.InjectedFault:
                    pass
            block = _body(client.get("/api/telemetry"))["resilience"]
        assert block["fault_plan"]["seed"] == 77
        assert block["fault_plan"]["n_specs"] == 1
        assert block["fault_plan"]["n_injected"] > 0
        assert block["fault_plan"]["by_site"] == {
            "stream.tick:error": block["fault_plan"]["n_injected"]
        }
        assert block["faults_injected_total"]["stream.tick:error"] > 0

    def test_no_fault_plan_block_when_disarmed(self, chaos_city):
        _, client = _build(chaos_city)
        if faults.active_injector() is not None:
            pytest.skip("an env-armed chaos plan is active for this run")
        block = _body(client.get("/api/telemetry"))["resilience"]
        assert "fault_plan" not in block
