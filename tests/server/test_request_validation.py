"""Regression tests for request-path validation fixes.

Covers the correctness sweep: non-finite float parameters and malformed
``Content-Length`` headers must map to 400 responses instead of 500s
(or, worse, 200s full of NaNs).
"""

import pytest

from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def client(small_session, small_city):
    return TestClient(VapApp(small_session, layout=small_city.layout))


class TestNonFiniteFloatParams:
    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_density_rejects_non_finite_bandwidth(self, client, bad):
        response = client.get(f"/api/density?t_start=61&t_end=63&bandwidth_m={bad}")
        assert response.status == 400
        assert "finite" in response.json["error"]

    def test_density_rejects_non_positive_bandwidth(self, client):
        response = client.get("/api/density?t_start=61&t_end=63&bandwidth_m=-5")
        assert response.status == 400

    def test_density_accepts_finite_bandwidth(self, client):
        response = client.get(
            "/api/density?t_start=61&t_end=63&bandwidth_m=5000"
        )
        assert response.status == 200

    def test_embedding_rejects_nan_perplexity(self, client):
        response = client.get("/api/embedding?perplexity=nan")
        assert response.status == 400
        assert "finite" in response.json["error"]

    def test_shift_rejects_inf_bandwidth(self, client):
        response = client.get(
            "/api/shift?t1_start=61&t1_end=63&t2_start=67&t2_end=69"
            "&bandwidth_m=inf"
        )
        assert response.status == 400


class TestMalformedContentLength:
    def test_non_numeric_content_length_is_400(self, client):
        response = client.post(
            "/api/sql",
            json={"query": "SELECT customer_id FROM customers"},
            headers={"Content-Length": "banana"},
        )
        assert response.status == 400
        assert "Content-Length" in response.json["error"]

    def test_valid_content_length_still_works(self, client):
        response = client.post(
            "/api/sql",
            json={"query": "SELECT customer_id FROM customers LIMIT 1"},
        )
        assert response.status == 200
