"""The async job API: submit → poll → artifact over HTTP.

Covers the acceptance scenario end to end: a submitted embedding job
answers 202 with an id, polling shows monotonically non-decreasing
progress, and the finished artifact decodes to coordinates bit-identical
with the synchronous ``/api/embedding`` computation for the same
parameters and seed.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.data.generator.simulate import CityConfig, generate_city
from repro.jobs import ArtifactStore, JobService, load_npz
from repro.jobs.handlers import HANDLERS
from repro.obs import MetricsRegistry
from repro.server import TestClient, VapApp
from repro.tenancy import TenantRegistry

TERMINAL = ("succeeded", "failed", "cancelled")
EMBED_PARAMS = {"method": "tsne", "n_iter": 60, "seed": 5}


@pytest.fixture(scope="module")
def cities():
    return {
        "acme": generate_city(CityConfig(n_customers=36, n_days=7, seed=11)),
        "globex": generate_city(CityConfig(n_customers=24, n_days=7, seed=12)),
    }


@pytest.fixture()
def registry(cities):
    registry = TenantRegistry(default_tenant="acme")
    registry.create_from_city("acme", cities["acme"], shards=1)
    registry.create_from_city("globex", cities["globex"], shards=1)
    return registry


@pytest.fixture()
def app(registry, tmp_path):
    app = VapApp(tenants=registry, jobs_root=str(tmp_path / "jobs"))
    yield app
    app.jobs.shutdown()


@pytest.fixture()
def client(app):
    return TestClient(app)


def _body(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


def _wait_terminal(client, job_id, timeout=120.0) -> dict:
    deadline = time.monotonic() + timeout
    last_progress = -1.0
    while True:
        response = client.get(f"/api/jobs/{job_id}")
        assert response.status == 200
        record = _body(response)
        # The contract polling clients rely on: progress never regresses.
        assert record["progress"] >= last_progress
        last_progress = record["progress"]
        if record["state"] in TERMINAL:
            return record
        assert time.monotonic() < deadline, f"job stuck: {record}"
        time.sleep(0.02)


class TestSubmitPollArtifact:
    def test_submit_answers_202_with_id_and_location(self, client):
        response = client.post(
            "/api/jobs", json={"kind": "embed", "params": dict(EMBED_PARAMS)}
        )
        assert response.status == 202
        record = _body(response)
        assert record["state"] in ("queued", "running")
        assert record["kind"] == "embed"
        assert response.headers["Location"] == f"/api/jobs/{record['job_id']}"
        assert record["poll"] == f"/api/jobs/{record['job_id']}"

    def test_artifact_bit_identical_with_synchronous_embed(
        self, client, registry
    ):
        submitted = _body(
            client.post(
                "/api/jobs",
                json={"kind": "embed", "params": dict(EMBED_PARAMS)},
            )
        )
        done = _wait_terminal(client, submitted["job_id"])
        assert done["state"] == "succeeded", done["error"]
        assert done["progress"] == 1.0

        artifact = client.get(f"/api/jobs/{submitted['job_id']}/artifact")
        assert artifact.status == 200
        assert artifact.headers["ETag"] == f'"{done["artifact"]["digest"]}"'
        assert artifact.headers["X-Job-Id"] == submitted["job_id"]
        arrays = load_npz(artifact.body)
        sync = registry.session("acme").embed(method="tsne", n_iter=60, seed=5)
        np.testing.assert_array_equal(arrays["coords"], sync.coords)

    def test_artifact_404_until_finished(self, client):
        release = threading.Event()

        def run_block(job, session, ctx):
            release.wait(10.0)
            return b"x", "text/plain"

        HANDLERS["block"] = run_block
        try:
            submitted = _body(client.post("/api/jobs", json={"kind": "block"}))
            response = client.get(f"/api/jobs/{submitted['job_id']}/artifact")
            assert response.status == 404
            assert "no artifact" in _body(response)["error"]
        finally:
            release.set()
            HANDLERS.pop("block", None)
        _wait_terminal(client, submitted["job_id"], timeout=30)

    def test_cancel_via_delete(self, client):
        release = threading.Event()
        started = threading.Event()

        def run_block(job, session, ctx):
            started.set()
            while not release.wait(0.01):
                ctx.token.check("blocked")
            return b"x", "text/plain"

        HANDLERS["block"] = run_block
        try:
            submitted = _body(client.post("/api/jobs", json={"kind": "block"}))
            started.wait(5.0)
            response = client.delete(f"/api/jobs/{submitted['job_id']}")
            assert response.status == 200
            done = _wait_terminal(client, submitted["job_id"], timeout=30)
            assert done["state"] == "cancelled"
        finally:
            release.set()
            HANDLERS.pop("block", None)

    def test_failed_job_resumes_over_http(self, client):
        attempts = []

        def run_flaky(job, session, ctx):
            attempts.append(job.attempts)
            if len(attempts) == 1:
                raise OSError("synthetic first-attempt failure")
            return b"recovered", "text/plain"

        HANDLERS["flaky"] = run_flaky
        try:
            submitted = _body(client.post("/api/jobs", json={"kind": "flaky"}))
            done = _wait_terminal(client, submitted["job_id"], timeout=30)
            assert done["state"] == "failed"
            resumed = client.post(f"/api/jobs/{submitted['job_id']}/resume")
            assert resumed.status == 200
            done = _wait_terminal(client, submitted["job_id"], timeout=30)
            assert done["state"] == "succeeded"
            assert done["attempts"] == 2
        finally:
            HANDLERS.pop("flaky", None)


class TestValidation:
    def test_unknown_kind_is_400(self, client):
        response = client.post("/api/jobs", json={"kind": "mine-bitcoin"})
        assert response.status == 400
        assert "unknown job kind" in _body(response)["error"]

    def test_missing_kind_is_400(self, client):
        assert client.post("/api/jobs", json={}).status == 400

    def test_non_object_params_is_400(self, client):
        response = client.post(
            "/api/jobs", json={"kind": "export", "params": [1, 2]}
        )
        assert response.status == 400

    def test_unknown_job_is_404(self, client):
        assert client.get("/api/jobs/nope").status == 404
        assert client.delete("/api/jobs/nope").status == 404
        assert client.get("/api/jobs/nope/artifact").status == 404

    def test_resume_of_succeeded_job_is_400(self, client):
        submitted = _body(client.post("/api/jobs", json={"kind": "export"}))
        done = _wait_terminal(client, submitted["job_id"])
        assert done["state"] == "succeeded"
        response = client.post(f"/api/jobs/{submitted['job_id']}/resume")
        assert response.status == 400


class TestTenancyAndBounds:
    def test_jobs_invisible_across_tenants(self, client):
        submitted = _body(client.post("/api/jobs", json={"kind": "export"}))
        job_id = submitted["job_id"]
        for url in (
            f"/api/jobs/{job_id}",
            f"/api/jobs/{job_id}/artifact",
        ):
            response = client.get(url, headers={"X-Tenant": "globex"})
            assert response.status == 404
        listing = _body(
            client.get("/api/jobs", headers={"X-Tenant": "globex"})
        )
        assert listing["count"] == 0
        _wait_terminal(client, job_id)

    def test_queue_full_is_503_with_retry_after(self, registry, tmp_path):
        service = JobService(
            registry,
            ArtifactStore(tmp_path / "bounded"),
            workers=1,
            max_queue=1,
            metrics=MetricsRegistry(),
        )
        client = TestClient(VapApp(tenants=registry, jobs=service))
        release = threading.Event()
        started = threading.Event()

        def run_block(job, session, ctx):
            started.set()
            release.wait(10.0)
            return b"x", "text/plain"

        HANDLERS["block"] = run_block
        try:
            first = client.post("/api/jobs", json={"kind": "block"})
            assert first.status == 202
            started.wait(5.0)
            second = client.post("/api/jobs", json={"kind": "block"})
            assert second.status == 503
            assert "Retry-After" in second.headers
            assert "queue is full" in _body(second)["error"]
        finally:
            release.set()
            HANDLERS.pop("block", None)
            service.shutdown()

    def test_job_quota_is_429(self, cities, tmp_path):
        from repro.tenancy import TenantQuota

        registry = TenantRegistry(default_tenant="acme")
        registry.create_from_city(
            "acme",
            cities["acme"],
            shards=1,
            quota=TenantQuota(max_active_jobs=1),
        )
        service = JobService(
            registry,
            ArtifactStore(tmp_path / "quota"),
            workers=1,
            metrics=MetricsRegistry(),
        )
        client = TestClient(VapApp(tenants=registry, jobs=service))
        release = threading.Event()
        started = threading.Event()

        def run_block(job, session, ctx):
            started.set()
            release.wait(10.0)
            return b"x", "text/plain"

        HANDLERS["block"] = run_block
        try:
            assert client.post("/api/jobs", json={"kind": "block"}).status == 202
            started.wait(5.0)
            response = client.post("/api/jobs", json={"kind": "block"})
            assert response.status == 429
            assert "Retry-After" in response.headers
            assert "active-job quota" in _body(response)["error"]
        finally:
            release.set()
            HANDLERS.pop("block", None)
            service.shutdown()

    def test_telemetry_jobs_block(self, client):
        submitted = _body(client.post("/api/jobs", json={"kind": "export"}))
        _wait_terminal(client, submitted["job_id"])
        block = _body(client.get("/api/telemetry"))["jobs"]
        assert block["total_jobs"] == 1
        assert block["succeeded"] == 1
        assert set(block["by_kind"]) >= {"embed", "render", "export"}
