"""REST surface of the rollup layer: status, rebuild, and the sweeps.

Uses its own (module-scoped) session rather than the shared read-only
one, because building rollups and rebuilding them mutates session state.
"""

import pytest

from repro.core.pipeline import VapSession
from repro.data.generator.simulate import CityConfig, generate_city
from repro.server import TestClient, VapApp

RESOLUTION_NAMES = {
    "hourly", "four_hourly", "daily", "weekly", "monthly", "quarterly",
    "yearly",
}


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(n_customers=30, n_days=10, seed=33))


@pytest.fixture(scope="module")
def client(city):
    session = VapSession.from_city(city)
    return TestClient(VapApp(session, layout=city.layout))


class TestRollupStatus:
    def test_disabled_before_first_use(self, city):
        session = VapSession.from_city(city)
        fresh = TestClient(VapApp(session, layout=city.layout))
        body = fresh.get("/api/rollups").json
        assert body["enabled"] is False
        assert body["last_applied_hour"] is None
        assert body["tables"] == []

    def test_rebuild_populates_status(self, client):
        assert client.post("/api/rollups/rebuild", {}).ok
        body = client.get("/api/rollups").json
        assert body["enabled"] is True
        assert body["lag_hours"] == 0
        assert body["last_applied_hour"] == body["source_end_hour"]
        assert {t["resolution"] for t in body["tables"]} == RESOLUTION_NAMES

    def test_counters_survive_requeries(self, client):
        client.post("/api/rollups/rebuild", {})
        before = client.get("/api/rollups").json["rebuilds_total"]
        client.post("/api/rollups/rebuild", {})
        after = client.get("/api/rollups").json["rebuilds_total"]
        assert after == before + 1


class TestSweepEndpoints:
    def test_granularity_sweep_returns_all_resolutions(self, client):
        body = client.get("/api/sweep/granularity").json
        assert {r["resolution"] for r in body["results"]} == RESOLUTION_NAMES
        hourly = next(
            r for r in body["results"] if r["resolution"] == "hourly"
        )
        assert hourly["n_window_pairs"] > 0
        assert hourly["mean_energy"] is not None

    def test_granularity_rollup_vs_raw_agree(self, client):
        rollup = client.get("/api/sweep/granularity").json["results"]
        raw = client.get("/api/sweep/granularity?source=raw").json["results"]
        for a, b in zip(raw, rollup):
            assert a["resolution"] == b["resolution"]
            assert a["n_window_pairs"] == b["n_window_pairs"]
            if a["mean_energy"] is not None:
                assert b["mean_energy"] == pytest.approx(
                    a["mean_energy"], rel=1e-6
                )

    def test_quantile_sweep_shape(self, client):
        body = client.get(
            "/api/sweep/quantile?t1_start=0&t1_end=24&t2_start=24&t2_end=48"
        ).json
        assert len(body["results"]) == 7
        first = body["results"][0]
        assert first["quantile"] == pytest.approx(0.3)
        assert first["n_customers"] > 0

    def test_quantile_rollup_vs_raw_agree(self, client):
        query = "t1_start=0&t1_end=24&t2_start=24&t2_end=48"
        rollup = client.get(f"/api/sweep/quantile?{query}").json["results"]
        raw = client.get(
            f"/api/sweep/quantile?{query}&source=raw"
        ).json["results"]
        for a, b in zip(raw, rollup):
            assert a["n_customers"] == b["n_customers"]
            if a["energy"] is not None:
                assert b["energy"] == pytest.approx(a["energy"], rel=1e-6)

    def test_bad_window_rejected(self, client):
        resp = client.get("/api/sweep/quantile?t1_start=abc")
        assert resp.status == 400


class TestTelemetryRollupBlock:
    def test_block_present_and_populated_after_rebuild(self, client):
        client.post("/api/rollups/rebuild", {})
        block = client.get("/api/telemetry").json["rollup"]
        assert block["enabled"] is True
        assert block["rebuilds_total"] >= 1
        assert block["refold_every"] >= 1
