"""Pool knobs on the REST API: workers, landmarks, minibatch, telemetry."""

from __future__ import annotations

import pytest

from repro.server import TestClient, VapApp


@pytest.fixture(scope="module")
def client(small_session, small_city):
    return TestClient(VapApp(small_session, layout=small_city.layout))


class TestWorkersParam:
    def test_worker_count_never_changes_the_answer(self, client):
        serial = client.get(
            "/api/embedding?n_iter=40&tsne_method=bh&workers=1"
        ).json
        forked = client.get(
            "/api/embedding?n_iter=40&tsne_method=bh&workers=2"
        ).json
        # Different cache keys, so both computed — and bit-identical.
        assert forked["points"] == serial["points"]

    def test_zero_workers_is_400(self, client):
        response = client.get("/api/embedding?workers=0")
        assert response.status == 400
        assert "workers" in response.json["error"]

    def test_junk_workers_is_400(self, client):
        assert client.get("/api/embedding?workers=lots").status == 400


class TestLandmarkParams:
    def test_landmark_method_with_budget(self, client):
        data = client.get(
            "/api/embedding?n_iter=40&tsne_method=landmark&n_landmarks=16"
        ).json
        assert len(data["points"]) == len(data["customer_ids"])

    def test_invalid_landmark_budget_is_400(self, client):
        response = client.get(
            "/api/embedding?n_iter=40&tsne_method=landmark&n_landmarks=2"
        )
        assert response.status == 400
        assert "n_landmarks" in response.json["error"]

    def test_junk_landmark_budget_is_400(self, client):
        assert client.get("/api/embedding?n_landmarks=afew").status == 400


class TestKmeansAlgorithm:
    def test_minibatch_algorithm(self, client):
        data = client.get("/api/kmeans?k=3&algorithm=minibatch").json
        assert data["algorithm"] == "minibatch"
        assert len(data["labels"]) == len(data["customer_ids"])
        assert data["inertia"] > 0.0

    def test_default_is_lloyd(self, client):
        assert client.get("/api/kmeans?k=3").json["algorithm"] == "lloyd"

    def test_unknown_algorithm_is_400(self, client):
        response = client.get("/api/kmeans?k=3&algorithm=spectral")
        assert response.status == 400
        assert "algorithm" in response.json["error"]


class TestParallelTelemetry:
    def test_parallel_block_shape(self, client):
        # Force at least one pooled kernel run first.
        client.get("/api/embedding?n_iter=30&tsne_method=bh&workers=2")
        data = client.get("/api/telemetry").json
        parallel = data["parallel"]
        assert parallel["budget"] >= 1
        assert isinstance(parallel["pools"], dict)
        assert parallel["pools"], "pooled kernel runs must be reported"
        for stats in parallel["pools"].values():
            assert stats["runs"] >= 1
            assert stats["tasks"] >= stats["runs"]
            assert stats["fork_runs"] >= 0
        assert isinstance(parallel["fallbacks"], dict)
