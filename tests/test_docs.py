"""Documentation consistency guards.

DESIGN.md's experiment index and README's example list are contracts;
these tests fail when a referenced bench, example or document drifts away
from the actual tree.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


class TestDesignDoc:
    def test_exists_with_required_sections(self):
        text = (ROOT / "DESIGN.md").read_text()
        for heading in ("Substitutions", "System inventory", "Experiment index"):
            assert heading in text

    def test_referenced_benches_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        benches = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", text))
        assert benches, "the experiment index must reference bench files"
        for name in benches:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_file_is_indexed(self):
        text = (ROOT / "DESIGN.md").read_text()
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("test_bench_*.py")}
        indexed = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", text))
        assert on_disk == indexed


class TestReadme:
    def test_referenced_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        examples = set(re.findall(r"examples/(\w+\.py)", text))
        assert examples
        for name in examples:
            assert (ROOT / "examples" / name).exists(), name

    def test_quickstart_code_block_runs(self):
        """The README's inline snippet must stay executable."""
        text = (ROOT / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", text, re.S)
        assert match, "README must keep a python quickstart block"
        snippet = match.group(1)
        # Shrink the data set so the doc test stays fast.
        snippet = snippet.replace("n_customers=250, n_days=90", "n_customers=40, n_days=14")
        exec(compile(snippet, "<README quickstart>", "exec"), {})


class TestExperimentsDoc:
    def test_covers_every_out_table(self):
        """Every regenerated table has a narrative home in EXPERIMENTS.md."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        out_dir = ROOT / "benchmarks" / "out"
        if not out_dir.exists():
            return  # benches not run yet in this checkout
        for table in out_dir.glob("*.txt"):
            assert table.name in text, f"{table.name} missing from EXPERIMENTS.md"
