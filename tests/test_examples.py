"""Smoke tests: every shipped example must run and produce its artefacts.

Examples are a deliverable, not decoration — these tests execute each one
in a temporary working directory (so written files don't pollute the repo)
and assert on its stdout and outputs.  The examples use small-but-real
configurations, so this module is the slowest part of the suite.
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture()
def in_tmp_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, in_tmp_dir, capsys):
        out = _run("quickstart.py", capsys)
        assert "dashboard written" in out
        assert (in_tmp_dir / "vap_dashboard.html").exists()
        assert "pattern" in out

    def test_typical_patterns(self, in_tmp_dir, capsys):
        out = _run("typical_patterns.py", capsys)
        assert "early birds" in out
        assert "precision" in out
        assert "visual analysis" in out
        # The S1 comparisons must report all three reducers.
        for method in ("tsne", "mds", "mds_classical"):
            assert method in out

    def test_shift_patterns(self, in_tmp_dir, capsys):
        out = _run("shift_patterns.py", capsys)
        assert "hourly" in out and "yearly" in out
        assert "headline flow" in out
        assert (in_tmp_dir / "vap_shift_map.svg").exists()

    def test_rest_api_tour(self, in_tmp_dir, capsys):
        out = _run("rest_api_tour.py", capsys)
        assert "GET /api/health" in out
        assert "-> 404" in out and "-> 405" in out

    def test_forecasting(self, in_tmp_dir, capsys):
        out = _run("forecasting.py", capsys)
        assert "profile (patterns)" in out
        assert "cold-start" in out

    def test_anomaly_audit(self, in_tmp_dir, capsys):
        out = _run("anomaly_audit.py", capsys)
        assert "top suspicious candidates" in out
        assert (in_tmp_dir / "vap_fingerprint_suspicious.svg").exists()
        assert (in_tmp_dir / "vap_choropleth.svg").exists()

    def test_demand_response(self, in_tmp_dir, capsys):
        out = _run("demand_response.py", capsys)
        assert "system peak" in out
        assert "EV adoption" in out
        assert "target order" in out

    def test_sql_explorer(self, in_tmp_dir, capsys):
        out = _run("sql_explorer.py", capsys)
        assert "SELECT zone" in out
        assert "POST /api/sql" in out

    def test_every_example_is_covered(self):
        """Adding an example without a smoke test fails this meta-check."""
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart.py",
            "typical_patterns.py",
            "shift_patterns.py",
            "rest_api_tour.py",
            "forecasting.py",
            "anomaly_audit.py",
            "demand_response.py",
            "sql_explorer.py",
        }
        assert scripts == covered
